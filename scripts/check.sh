#!/usr/bin/env bash
# One-shot correctness gate: tier-1 tests + reprolint + ruff + mypy.
#
# ruff and mypy are optional dependencies (pyproject [project.optional-
# dependencies].lint); when they are not installed — e.g. in the minimal
# reproduction container — they are skipped with a notice so the
# deterministic checks still gate the build.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 pytest =="
# With pytest-cov available the same run also enforces the coverage
# floor ([tool.coverage.report] fail_under) and leaves coverage.xml for
# the CI artifact; without it the suite still gates correctness.
if python -c "import pytest_cov" >/dev/null 2>&1; then
    python -m pytest -x -q --cov=repro --cov-report=term \
        --cov-report=xml:coverage.xml
else
    python -m pytest -x -q
    echo "pytest-cov not installed; coverage floor skipped (pip install -e .[test])"
fi

echo "== reprolint v2 (rules + layering/taint/contract passes) =="
# Exit 1 = findings, exit 2 = parse failures; both are hard errors
# under `set -e`.  The committed baseline carries the audited
# suppressions (layering entries are impossible by construction).  The
# SARIF pass runs first so the code-scanning artifact exists even when
# the gating text run below fails the build.
python -m repro.tools lint src \
    --usage tests --usage benchmarks \
    --baseline reprolint-baseline.json \
    --format sarif --output reprolint.sarif || true
python -m repro.tools lint src \
    --usage tests --usage benchmarks \
    --baseline reprolint-baseline.json

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests
else
    echo "ruff not installed; skipping (pip install -e .[lint])"
fi

echo "== mypy (strict on core/ and sim/) =="
if command -v mypy >/dev/null 2>&1; then
    mypy
else
    echo "mypy not installed; skipping (pip install -e .[lint])"
fi

echo "== all checks passed =="
