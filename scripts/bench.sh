#!/usr/bin/env bash
# Run the benchmark harness and collect the machine-readable trajectory.
#
# Every figure suite prints its aligned table and records the same rows
# to BENCH_<suite>.json (see benchmarks/conftest.py); this script pins
# the output directory and forwards any extra pytest arguments, e.g.
#
#   scripts/bench.sh                                  # full harness
#   scripts/bench.sh benchmarks/test_bench_closeness_kernel.py
#   scripts/bench.sh benchmarks/test_bench_engine.py  # calendar vs heap
#   scripts/bench.sh benchmarks/test_bench_energy.py  # energy + pareto
#   REPRO_BENCH_OUT=out/bench scripts/bench.sh -k comptime
#
# Scenario knobs (REPRO_BENCH_SCALE, REPRO_BENCH_SUBS, REPRO_BENCH_SEED,
# REPRO_BENCH_KERNEL_SUBS, ...) are documented in benchmarks/conftest.py.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_BENCH_OUT="${REPRO_BENCH_OUT:-bench-results}"

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
    targets=(benchmarks)
fi

python -m pytest "${targets[@]}" -q -s
echo "== bench trajectory =="
ls -l "$REPRO_BENCH_OUT"/BENCH_*.json 2>/dev/null \
    || echo "no BENCH_*.json written (no recording suite ran)"
