"""Covering measured through the full experiment pipeline."""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.workloads.scenarios import cluster_homogeneous


class TestCoveringAtExperimentScale:
    @pytest.fixture(scope="class")
    def pair(self):
        """The same scenario/seed with and without covering."""
        results = {}
        for covering in (False, True):
            scenario = cluster_homogeneous(
                subscriptions_per_publisher=10,
                scale=0.1,
                measurement_time=20.0,
                enable_covering=covering,
            )
            runner = ExperimentRunner(scenario, seed=1)
            results[covering] = (runner.run("manual"), runner.network)
        return results

    def test_identical_deliveries(self, pair):
        """Covering is purely a routing-state optimization: every
        subscriber receives exactly the same messages."""
        plain, _net_plain = pair[False]
        covered, _net_covered = pair[True]
        assert covered.summary.delivery_count == plain.summary.delivery_count

    def test_smaller_routing_tables(self, pair):
        _plain, net_plain = pair[False]
        _covered, net_covered = pair[True]
        plain_entries = sum(b.srt_size for b in net_plain.brokers.values())
        covered_entries = sum(b.srt_size for b in net_covered.brokers.values())
        assert covered_entries < plain_entries

    def test_per_subscriber_counts_match(self, pair):
        _plain, net_plain = pair[False]
        _covered, net_covered = pair[True]
        for client_id, subscriber in net_plain.subscribers.items():
            twin = net_covered.subscribers[client_id]
            assert twin.delivered == subscriber.delivered, client_id
