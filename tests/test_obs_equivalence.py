"""Attached/detached bit-identity of the observability layer.

The obs contract extends the kernel and fault precedents: running with
a recorder attached (spans + counters + timeline sampling, which chunks
``network.run``) must leave every deterministic output — allocations,
metrics rows, sweep results — bit-identical to a detached run, under a
fault plan and under ``jobs=2`` alike.  The recorded snapshot itself
must also be deterministic once wall time is excluded.
"""

from __future__ import annotations

from repro import obs
from repro.experiments.parallel import CellSpec, execute_cells, run_spec
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweeps import homogeneous_scenarios, sweep_specs
from repro.sim.faults import FaultPlan

from test_parallel_equivalence import comparable, tiny_homo

FAULT_PLAN = FaultPlan(
    crash_fraction=0.25, crash_start=4.0, downtime=5.0,
    loss_rate=0.01, jitter=0.001, seed=5,
)


def observed(spec: CellSpec) -> CellSpec:
    return CellSpec(
        scenario=spec.scenario, approach=spec.approach, seed=spec.seed,
        cram_failure_budget=spec.cram_failure_budget,
        fault_plan=spec.fault_plan, observe=True,
    )


def deterministic_snapshot(result) -> dict:
    """The recorder snapshot with wall time dropped, reprs pinned."""
    assert result.obs is not None
    spans = [
        {key: repr(value) for key, value in span.items() if key != "wall_s"}
        for span in result.obs["spans"]
    ]
    counters = {name: repr(value) for name, value in result.obs["counters"].items()}
    samples = [repr(sample) for sample in result.obs["samples"]]
    return {"spans": spans, "counters": counters, "samples": samples}


class TestAttachedDetachedIdentity:
    def test_single_cell_attached_equals_detached(self):
        scenario = tiny_homo()[0]
        for approach in ("manual", "binpacking", "cram-ios"):
            spec = CellSpec(scenario=scenario, approach=approach, seed=11)
            detached = run_spec(spec)
            attached = run_spec(observed(spec))
            assert comparable(detached) == comparable(attached), approach
            assert detached.obs is None
            assert attached.obs is not None

    def test_attached_under_fault_plan(self):
        scenario = tiny_homo(4)[0]
        for approach in ("manual", "binpacking"):
            spec = CellSpec(
                scenario=scenario, approach=approach, seed=3,
                fault_plan=FAULT_PLAN,
            )
            detached = run_spec(spec)
            attached = run_spec(observed(spec))
            assert comparable(detached) == comparable(attached), approach
        # The plan actually fired, or this test is vacuous.
        assert attached.summary.broker_crashes > 0
        assert attached.obs["counters"]["faults.crashes"] > 0

    def test_attached_jobs2_equals_detached_serial(self):
        specs = sweep_specs(tiny_homo(), ("manual", "binpacking", "cram-ios"),
                            seed=11, fault_plan=FAULT_PLAN)
        detached = execute_cells(specs, jobs=1)
        attached = execute_cells([observed(spec) for spec in specs], jobs=2)
        for spec, base, obs_result in zip(specs, detached, attached):
            assert comparable(base) == comparable(obs_result), spec.label
            assert obs_result.obs is not None

    def test_snapshot_itself_is_deterministic(self):
        """Same cell, serial vs jobs=2: identical spans/counters/samples
        (wall time excluded), so exports merge reproducibly."""
        specs = [observed(spec) for spec in sweep_specs(
            tiny_homo(4), ("manual", "cram-ios"), seed=7,
        )]
        serial = execute_cells(specs, jobs=1)
        par = execute_cells(specs, jobs=2)
        for spec, a, b in zip(specs, serial, par):
            assert deterministic_snapshot(a) == deterministic_snapshot(b), spec.label

    def test_manual_recorder_attach_matches_unobserved(self):
        """The library path (obs.attached around a runner) is identical
        to the spec-driven path and to no observation at all."""
        scenario = tiny_homo(4)[0]
        baseline = ExperimentRunner(scenario, seed=9).run("binpacking")
        with obs.attached(obs.Recorder()) as recorder:
            result = ExperimentRunner(scenario, seed=9).run("binpacking")
        assert comparable(baseline) == comparable(result)
        snapshot = recorder.snapshot()
        assert snapshot["spans"] and snapshot["samples"]
        assert snapshot["counters"]["engine.events_processed"] > 0

    def test_detached_leaves_no_recorder_behind(self):
        scenario = tiny_homo(3)[0]
        run_spec(CellSpec(scenario=scenario, approach="manual", seed=1,
                          observe=True))
        assert obs.active() is None
