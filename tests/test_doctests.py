"""Execute the library's docstring examples."""

import doctest

import pytest

import repro.core.allocators
import repro.core.bitvector
import repro.core.profiles
import repro.pubsub.predicate
import repro.sim.engine
import repro.sim.faults

MODULES = (
    repro.core.allocators,
    repro.core.bitvector,
    repro.core.profiles,
    repro.pubsub.predicate,
    repro.sim.engine,
    repro.sim.faults,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
