"""Tests for the CRAM allocator (paper §IV-C)."""

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.closeness import make_metric
from repro.core.cram import CramAllocator

from conftest import make_directory, make_pool, make_spec, make_unit


@pytest.fixture
def directory():
    return make_directory([f"P{i}" for i in range(6)], rate=10.0, bandwidth=10.0)


def symbol_units(directory, per_symbol, symbols=4, bits=32):
    """per_symbol identical units for each of `symbols` publishers."""
    advs = list(directory)[:symbols]
    units = []
    for adv in advs:
        for _ in range(per_symbol):
            units.append(make_unit({adv: range(bits)}, directory))
    return units


class TestBasicBehaviour:
    def test_returns_binpacking_result_when_nothing_clusters(self, directory):
        """All-disjoint singleton profiles: no non-zero closeness pair."""
        units = [make_unit({list(directory)[i]: [i]}, directory) for i in range(4)]
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, make_pool(4, bandwidth=100.0), directory)
        baseline = BinPackingAllocator().allocate(
            units, make_pool(4, bandwidth=100.0), directory
        )
        assert result.success
        assert result.broker_count == baseline.broker_count
        assert cram.last_stats.merges == 0

    def test_fails_when_binpacking_fails(self, directory):
        units = symbol_units(directory, per_symbol=3, symbols=1)  # 15 kB/s
        result = CramAllocator().allocate(units, [make_spec("b", 4.0)], directory)
        assert not result.success

    def test_clusters_identical_subscriptions(self, directory):
        units = symbol_units(directory, per_symbol=4, symbols=2)
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, make_pool(8, bandwidth=100.0), directory)
        assert result.success
        assert cram.last_stats.merges > 0
        assert cram.last_stats.final_units < cram.last_stats.initial_units

    def test_allocation_preserves_every_subscription(self, directory):
        units = symbol_units(directory, per_symbol=5, symbols=3)
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, make_pool(8, bandwidth=100.0), directory)
        placement = result.subscription_placement()
        expected = {record.sub_id for unit in units for record in unit.members}
        assert set(placement) == expected

    def test_gif_grouping_reduces_pool(self, directory):
        units = symbol_units(directory, per_symbol=10, symbols=3)
        cram = CramAllocator(metric="ios")
        cram.allocate(units, make_pool(8, bandwidth=1000.0), directory)
        stats = cram.last_stats
        assert stats.initial_units == 30
        assert stats.initial_gifs == 3
        assert stats.gif_reduction == pytest.approx(0.9)

    def test_respects_capacity_while_clustering(self, directory):
        """Clusters never violate the feasibility test."""
        units = symbol_units(directory, per_symbol=6, symbols=2, bits=32)
        pool = make_pool(8, bandwidth=20.0)  # 4 units of 5 kB/s per broker
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, pool, directory)
        assert result.success
        for bin_ in result.bins:
            assert bin_.used_bandwidth <= bin_.spec.total_output_bandwidth + 1e-9

    def test_uses_fewer_or_equal_brokers_than_binpacking(self, directory):
        """Clustering concentrates input unions, never worsens packing."""
        advs = list(directory)
        units = []
        for adv in advs[:4]:
            units.append(make_unit({adv: range(48)}, directory))
            units.append(make_unit({adv: range(24)}, directory))
            units.append(make_unit({adv: range(12)}, directory))
        pool = make_pool(10, bandwidth=25.0)
        bp = BinPackingAllocator().allocate(units, pool, directory)
        cram_result = CramAllocator(metric="ios").allocate(units, pool, directory)
        assert cram_result.success
        assert cram_result.broker_count <= bp.broker_count


class TestMetricVariants:
    @pytest.mark.parametrize("metric", ["intersect", "ios", "iou", "xor"])
    def test_all_metrics_produce_valid_allocations(self, metric, directory):
        units = symbol_units(directory, per_symbol=4, symbols=3)
        cram = CramAllocator(metric=metric, failure_budget=50)
        result = cram.allocate(units, make_pool(8, bandwidth=60.0), directory)
        assert result.success
        placement = result.subscription_placement()
        assert len(placement) == len(units)

    def test_name_includes_metric(self):
        assert CramAllocator(metric="iou").name == "cram-iou"

    def test_accepts_metric_instance(self):
        cram = CramAllocator(metric=make_metric("intersect"))
        assert cram.name == "cram-intersect"

    def test_xor_clusters_disjoint_profiles(self, directory):
        """The Gryphon XOR flaw: disjoint subscriptions do get merged."""
        units = [
            make_unit({"P0": [1]}, directory),
            make_unit({"P1": [40]}, directory),
        ]
        cram = CramAllocator(metric="xor", failure_budget=10)
        cram.allocate(units, make_pool(4, bandwidth=100.0), directory)
        assert cram.last_stats.merges >= 1

    def test_prunable_metric_ignores_disjoint_pairs(self, directory):
        units = [
            make_unit({"P0": [1]}, directory),
            make_unit({"P1": [40]}, directory),
        ]
        cram = CramAllocator(metric="ios")
        cram.allocate(units, make_pool(4, bandwidth=100.0), directory)
        assert cram.last_stats.merges == 0


class TestSelfPairClustering:
    def test_equal_relationship_binary_search(self, directory):
        """A GIF pairs with itself and merges the largest allocatable run.

        8 identical units of 5 kB/s against 12 kB/s brokers: at most 2
        units (10 kB/s) fit per broker, so within-GIF clusters of 2 form.
        """
        units = symbol_units(directory, per_symbol=8, symbols=1)
        pool = make_pool(8, bandwidth=12.0)
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, pool, directory)
        assert result.success
        stats = cram.last_stats
        assert stats.merges >= 1
        sizes = sorted(
            unit.subscription_count for bin_ in result.bins for unit in bin_.units
        )
        assert max(sizes) == 2

    def test_self_pair_merges_everything_when_capacity_allows(self, directory):
        units = symbol_units(directory, per_symbol=6, symbols=1)
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, make_pool(4, bandwidth=1000.0), directory)
        assert result.success
        assert cram.last_stats.final_units == 1


class TestCoveringClustering:
    def test_superset_absorbs_covered_units(self, directory):
        """A covering GIF clusters with covered GIF units (binary search)."""
        units = [make_unit({"P0": range(32)}, directory)]  # superset
        units += [make_unit({"P0": range(16)}, directory) for _ in range(3)]
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, make_pool(4, bandwidth=1000.0), directory)
        assert result.success
        assert cram.last_stats.merges >= 1
        assert cram.last_stats.final_units < 4

    def test_blacklists_unallocatable_pairs(self, directory):
        """A pair whose merge never fits is tried once, then skipped."""
        units = [
            make_unit({"P0": range(32)}, directory),  # 5 kB/s each
            make_unit({"P0": range(16, 48)}, directory),
        ]
        # Two brokers of 5 kB/s: each unit fits alone; the 10 kB/s merge
        # fits nowhere.
        pool = [make_spec("b1", 5.0), make_spec("b2", 5.0)]
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, pool, directory)
        assert result.success
        assert result.broker_count == 2
        assert cram.last_stats.failures >= 1
        assert cram.last_stats.merges == 0


class TestAblationKnobs:
    def test_gif_grouping_disabled(self, directory):
        units = symbol_units(directory, per_symbol=5, symbols=2)
        cram = CramAllocator(metric="ios", enable_gif_grouping=False)
        result = cram.allocate(units, make_pool(8, bandwidth=100.0), directory)
        assert result.success
        assert cram.last_stats.initial_gifs == cram.last_stats.initial_units

    def test_pruning_disabled_still_correct(self, directory):
        units = symbol_units(directory, per_symbol=3, symbols=3)
        pool = make_pool(8, bandwidth=100.0)
        pruned = CramAllocator(metric="ios", enable_pruning=True)
        scan = CramAllocator(metric="ios", enable_pruning=False)
        result_pruned = pruned.allocate(units, pool, directory)
        result_scan = scan.allocate(units, pool, directory)
        assert result_pruned.broker_count == result_scan.broker_count

    def test_pruning_saves_evaluations(self, directory):
        """Search pruning needs fewer closeness computations (§IV-C.2)."""
        advs = list(directory)
        units = []
        for i, adv in enumerate(advs):
            for width in (32, 16, 8):
                units.append(make_unit({adv: range(width)}, directory))
        pool = make_pool(10, bandwidth=1000.0)
        pruned = CramAllocator(metric="ios", enable_pruning=True)
        scan = CramAllocator(metric="ios", enable_pruning=False)
        pruned.allocate(units, pool, directory)
        scan.allocate(units, pool, directory)
        assert (
            pruned.last_stats.initial_search_evaluations
            < scan.last_stats.initial_search_evaluations
        )

    def test_one_to_many_toggle(self, directory):
        units = []
        # Parent GIF intersecting another, with covered children (Fig. 3).
        units.append(make_unit({"P0": range(0, 36)}, directory))
        units.append(make_unit({"P0": range(28, 44)}, directory))
        units.append(make_unit({"P0": range(0, 4)}, directory))
        units.append(make_unit({"P0": range(8, 12)}, directory))
        pool = make_pool(6, bandwidth=1000.0)
        with_o3 = CramAllocator(metric="ios", enable_one_to_many=True)
        without_o3 = CramAllocator(metric="ios", enable_one_to_many=False)
        r1 = with_o3.allocate(units, pool, directory)
        r2 = without_o3.allocate(units, pool, directory)
        assert r1.success and r2.success

    def test_failure_budget_caps_wasted_attempts(self, directory):
        units = [make_unit({list(directory)[i % 6]: [i]}, directory) for i in range(8)]
        cram = CramAllocator(metric="xor", failure_budget=3)
        cram.allocate(units, [make_spec("b", 2.0), make_spec("c", 2.0)], directory)
        assert cram.last_stats.failures <= 3

    def test_max_iterations(self, directory):
        units = symbol_units(directory, per_symbol=6, symbols=2)
        cram = CramAllocator(metric="ios", max_iterations=1)
        cram.allocate(units, make_pool(8, bandwidth=1000.0), directory)
        assert cram.last_stats.iterations <= 1


class TestStats:
    def test_stats_are_reset_per_run(self, directory):
        units = symbol_units(directory, per_symbol=3, symbols=2)
        cram = CramAllocator(metric="ios")
        cram.allocate(units, make_pool(8, bandwidth=100.0), directory)
        first = cram.last_stats
        cram.allocate(units, make_pool(8, bandwidth=100.0), directory)
        assert cram.last_stats is not first

    def test_binpack_run_counter(self, directory):
        units = symbol_units(directory, per_symbol=3, symbols=1)
        cram = CramAllocator(metric="ios")
        cram.allocate(units, make_pool(4, bandwidth=100.0), directory)
        assert cram.last_stats.binpack_runs >= 1
