"""Tests for PubSubNetwork wiring and deployment execution."""

import pytest

from repro.core.deployment import BrokerTree, Deployment

from test_broker_routing import make_network, make_publisher, make_subscriber


class TestWiring:
    def test_duplicate_broker_rejected(self):
        network = make_network(2)
        with pytest.raises(ValueError):
            network.add_broker(network.brokers["b0"].spec)

    def test_self_link_rejected(self):
        network = make_network(2)
        with pytest.raises(ValueError):
            network.connect_brokers("b0", "b0")

    def test_links_listing(self):
        network = make_network(3)
        assert network.links == [("b0", "b1"), ("b1", "b2")]

    def test_disconnect_all(self):
        network = make_network(3)
        network.disconnect_all()
        assert network.links == []
        assert not network.brokers["b1"].neighbors

    def test_broker_pool(self):
        network = make_network(3)
        assert {spec.broker_id for spec in network.broker_pool()} == {"b0", "b1", "b2"}

    def test_active_brokers_default_all(self):
        network = make_network(3)
        assert sorted(network.active_brokers) == ["b0", "b1", "b2"]


class TestClientAttachment:
    def test_double_attach_rejected(self):
        network = make_network(2)
        publisher = make_publisher()
        network.attach_publisher(publisher, "b0")
        with pytest.raises(ValueError):
            network.attach_publisher(publisher, "b1")

    def test_detach_then_reattach(self):
        network = make_network(2)
        publisher = make_publisher()
        network.attach_publisher(publisher, "b0")
        network.detach_all_clients()
        assert publisher.broker_id is None
        network.attach_publisher(publisher, "b1")
        assert publisher.broker_id == "b1"

    def test_publisher_message_ids_survive_reattach(self):
        network = make_network(2)
        publisher = make_publisher(rate=10.0)
        network.attach_publisher(publisher, "b0")
        network.run(1.0)
        published_before = publisher.published
        assert published_before > 0
        network.detach_all_clients()
        network.attach_publisher(publisher, "b1")
        network.run(1.0)
        assert publisher.published > published_before
        assert publisher._next_message_id == publisher.published + 1


class TestApplyDeployment:
    def _deployment(self, subscriber_broker, publisher_broker):
        tree = BrokerTree("b0")
        tree.add_broker("b1", "b0")
        return Deployment(
            tree=tree,
            subscription_placement={"s1": subscriber_broker},
            publisher_placement={"adv-YHOO": publisher_broker},
            approach="test",
        )

    def test_clients_move_to_assigned_brokers(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        publisher = make_publisher()
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(publisher, "b2")
        network.run(0.5)
        network.apply_deployment(self._deployment("b1", "b0"))
        assert subscriber.broker_id == "b1"
        assert publisher.broker_id == "b0"
        network.run(1.0)
        assert subscriber.delivered > 0

    def test_active_brokers_follow_deployment(self):
        network = make_network(3)
        network.apply_deployment(self._deployment("b0", "b0"))
        assert sorted(network.active_brokers) == ["b0", "b1"]

    def test_links_rewired_to_tree(self):
        network = make_network(3)
        network.apply_deployment(self._deployment("b0", "b0"))
        assert network.links == [("b0", "b1")]

    def test_unplaced_subscriber_falls_back_to_root(self):
        network = make_network(3)
        subscriber = make_subscriber("s-unplanned")
        network.attach_subscriber(subscriber, "b2")
        network.apply_deployment(self._deployment("b1", "b0"))
        assert subscriber.broker_id == "b0"

    def test_unplaced_publisher_falls_back_to_root(self):
        network = make_network(3)
        publisher = make_publisher("MSFT")
        network.attach_publisher(publisher, "b2")
        network.apply_deployment(self._deployment("b1", "b0"))
        assert publisher.broker_id == "b0"

    def test_traffic_flows_after_two_redeployments(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        publisher = make_publisher()
        network.attach_subscriber(subscriber, "b0")
        network.attach_publisher(publisher, "b1")
        network.run(1.0)
        network.apply_deployment(self._deployment("b1", "b0"))
        network.run(1.0)
        first = subscriber.delivered
        network.apply_deployment(self._deployment("b0", "b1"))
        network.run(1.0)
        assert subscriber.delivered > first
