"""Tests for GRAPE publisher relocation."""

import pytest

from repro.core.deployment import BrokerTree
from repro.core.grape import GrapeRelocator
from repro.core.units import AllocationUnit

from conftest import make_directory, make_record


def chain_tree(length=4):
    """ROOT=b0 — b1 — b2 — ... a simple path."""
    tree = BrokerTree("b0")
    for index in range(1, length):
        tree.add_broker(f"b{index}", f"b{index - 1}")
    return tree


def star_tree(leaves=3):
    tree = BrokerTree("root")
    for index in range(leaves):
        tree.add_broker(f"leaf{index}", "root")
    return tree


def place_subscription(tree, broker_id, bits, directory, adv="A", sub_id=None):
    record = make_record({adv: bits}, sub_id=sub_id)
    unit = AllocationUnit.for_subscription(record, directory)
    tree.set_units(broker_id, list(tree.broker_units[broker_id]) + [unit])
    return unit


class TestParameters:
    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            GrapeRelocator(objective="latency")

    def test_rejects_bad_priority(self):
        with pytest.raises(ValueError):
            GrapeRelocator(priority=1.5)


class TestLoadObjective:
    def test_moves_publisher_next_to_single_subscriber(self, directory):
        tree = chain_tree(4)
        place_subscription(tree, "b3", range(64), directory)
        grape = GrapeRelocator(objective="load")
        decision = grape.place_one(tree, "A", directory["A"])
        assert decision.broker_id == "b3"

    def test_publisher_without_subscribers_goes_to_root(self, directory):
        tree = chain_tree(3)
        grape = GrapeRelocator(objective="load")
        decision = grape.place_one(tree, "A", directory["A"])
        assert decision.broker_id == tree.root
        assert decision.load_score == 0.0

    def test_weighted_median_of_two_subscribers(self, directory):
        """Heavier side of the chain attracts the publisher."""
        tree = chain_tree(5)
        place_subscription(tree, "b0", range(8), directory)     # light: 1.25 msg/s
        place_subscription(tree, "b4", range(64), directory)    # heavy: 10 msg/s
        grape = GrapeRelocator(objective="load")
        decision = grape.place_one(tree, "A", directory["A"])
        assert decision.broker_id == "b4"

    def test_star_center_when_interests_are_disjoint(self, directory):
        """Each leaf wants a different quarter of the stream: attaching
        at any leaf forces three quarters across the uplink, so the hub
        is strictly cheaper."""
        tree = star_tree(4)
        for index in range(4):
            place_subscription(
                tree, f"leaf{index}", range(index * 16, (index + 1) * 16), directory
            )
        grape = GrapeRelocator(objective="load")
        decision = grape.place_one(tree, "A", directory["A"])
        assert decision.broker_id == "root"

    def test_load_score_counts_edge_stream_rates(self, directory):
        """From b0, a full-rate subscriber at b2 costs 2 edges × 10 msg/s."""
        tree = chain_tree(3)
        place_subscription(tree, "b2", range(64), directory)
        grape = GrapeRelocator(objective="load")
        scores = grape._load_scores(tree, directory["A"], {})
        assert scores["b0"] == pytest.approx(20.0)
        assert scores["b1"] == pytest.approx(10.0)
        assert scores["b2"] == pytest.approx(0.0)


class TestDelayObjective:
    def test_minimizes_delivery_weighted_distance(self, directory):
        tree = chain_tree(5)
        # Two subscribers at b4, one at b0: the weighted median is b4.
        place_subscription(tree, "b4", range(64), directory)
        place_subscription(tree, "b4", range(64), directory)
        place_subscription(tree, "b0", range(64), directory)
        grape = GrapeRelocator(objective="delay")
        decision = grape.place_one(tree, "A", directory["A"])
        assert decision.broker_id == "b4"

    def test_delay_scores_exact_on_chain(self, directory):
        tree = chain_tree(3)
        place_subscription(tree, "b0", range(64), directory)  # weight 10
        place_subscription(tree, "b2", range(64), directory)  # weight 10
        grape = GrapeRelocator(objective="delay")
        needs = grape._broker_needs(tree, "A", directory["A"])
        scores = grape._delay_scores(tree, directory["A"], needs)
        assert scores["b0"] == pytest.approx(20.0)  # 0*10 + 2*10
        assert scores["b1"] == pytest.approx(20.0)  # 1*10 + 1*10
        assert scores["b2"] == pytest.approx(20.0)


class TestMixedPriority:
    def test_priority_interpolates_objectives(self, directory):
        tree = chain_tree(6)
        # Load-optimal and delay-optimal placements differ: many light
        # subscribers far away vs one heavy subscriber near the root.
        place_subscription(tree, "b5", range(64), directory)
        for _ in range(3):
            place_subscription(tree, "b0", range(4), directory)
        load_choice = GrapeRelocator("load", 1.0).place_one(tree, "A", directory["A"])
        delay_choice = GrapeRelocator("delay", 1.0).place_one(tree, "A", directory["A"])
        # With full priority the two extremes pick their own optima;
        # a mixed priority never picks something worse than both.
        mixed = GrapeRelocator("load", 0.5).place_one(tree, "A", directory["A"])
        assert mixed.broker_id in {load_choice.broker_id, delay_choice.broker_id,
                                   "b1", "b2", "b3", "b4"}


class TestPlaceAll:
    def test_places_every_publisher(self, directory):
        tree = star_tree(2)
        place_subscription(tree, "leaf0", range(64), directory, adv="A")
        place_subscription(tree, "leaf1", range(64), directory, adv="B")
        grape = GrapeRelocator(objective="load")
        placement = grape.place_publishers(tree, directory)
        assert placement == {"A": "leaf0", "B": "leaf1"}

    def test_single_broker_tree(self, directory):
        tree = BrokerTree("only")
        place_subscription(tree, "only", range(8), directory)
        placement = GrapeRelocator().place_publishers(tree, directory)
        assert placement["A"] == "only"

    def test_pseudo_units_are_ignored(self, directory):
        """Internal brokers' pseudo-units must not attract publishers."""
        tree = chain_tree(3)
        real = place_subscription(tree, "b2", range(64), directory)
        pseudo = AllocationUnit.for_child_broker("b2", [real], directory)
        tree.set_units("b0", [pseudo])
        decision = GrapeRelocator("load").place_one(tree, "A", directory["A"])
        assert decision.broker_id == "b2"
