"""Unit tests for the columnar store and the sharded Phase-2 plumbing.

Backend selection and env parsing, row lifecycle (free-list reuse,
bulk append, growth), vectorized sweeps against hand-computed values on
both backends, layout/packing projections, and the shard planner /
merge contracts (including the hard error for out-of-order runners).
"""

from __future__ import annotations

import pytest

from repro.core import columnar
from repro.core import cram as cram_mod
from repro.core.closeness import XOR_MAX
from repro.core.columnar import (
    ColumnarStore,
    columnar_enabled,
    numpy_available,
    resolve_backend,
)
from repro.core.cram import (
    CramAllocator,
    ShardedCramAllocator,
    ShardOutcome,
    install_shard_runner,
    merge_shard_outcomes,
    plan_shards,
    run_shards_serial,
)
from repro.core.closeness import make_metric
from repro.core.kernel import BitPlaneLayout, ClosenessKernel, pack_profile_bits
from repro.core.popcount import popcount
from repro.core.units import AllocationUnit, units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous

BACKENDS = ("python", "numpy") if numpy_available() else ("python",)

PATTERNS = [
    0,
    1,
    (1 << 64) - 1,
    0x0F0F_F0F0_AAAA_5555_1234_5678_9ABC_DEF0,
    (1 << 127) | 1,
    (1 << 100) - (1 << 37),
]


def filled(backend: str, total_bits: int = 128) -> ColumnarStore:
    store = ColumnarStore(total_bits, backend=backend)
    for bits in PATTERNS:
        store.add_row(bits & ((1 << total_bits) - 1))
    return store


class TestBackendSelection:
    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if numpy_available() else "python"
        assert resolve_backend(None) == expected
        assert resolve_backend("auto") == expected
        assert resolve_backend("") == expected

    def test_python_always_available(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend(" PYTHON ") == "python"

    def test_forcing_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(columnar, "_np", None)
        assert not numpy_available()
        with pytest.raises(RuntimeError, match="numpy"):
            resolve_backend("numpy")
        assert resolve_backend("auto") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown columnar backend"):
            resolve_backend("gpu")

    def test_env_backend_consulted(self, monkeypatch):
        monkeypatch.setenv(columnar.BACKEND_ENV_VAR, "python")
        assert ColumnarStore(64).backend == "python"

    def test_columnar_enabled_parsing(self, monkeypatch):
        monkeypatch.delenv(columnar.COLUMNAR_ENV_VAR, raising=False)
        assert columnar_enabled() is True
        assert columnar_enabled(False) is False
        for value in ("0", "off", "FALSE", " no "):
            monkeypatch.setenv(columnar.COLUMNAR_ENV_VAR, value)
            assert columnar_enabled() is False
            assert columnar_enabled(True) is True
        monkeypatch.setenv(columnar.COLUMNAR_ENV_VAR, "1")
        assert columnar_enabled() is True


@pytest.mark.parametrize("backend", BACKENDS)
class TestRowLifecycle:
    def test_round_trip_and_cardinality(self, backend):
        store = filled(backend)
        for row, bits in enumerate(PATTERNS):
            assert store.row_bits(row) == bits
            assert store.cardinality(row) == popcount(bits)
        assert len(store) == len(PATTERNS)
        assert store.high_water == len(PATTERNS)

    def test_free_list_is_lifo(self, backend):
        store = filled(backend)
        store.free_row(1)
        store.free_row(3)
        assert store.row_bits(3) == 0
        assert len(store) == len(PATTERNS) - 2
        assert store.add_row(0b101) == 3  # most recently freed first
        assert store.add_row(0b010) == 1
        assert store.add_row(0b111) == len(PATTERNS)  # list exhausted
        assert store.row_bits(3) == 0b101

    def test_add_rows_appends_past_growth(self, backend):
        store = ColumnarStore(128, backend=backend)
        patterns = [(index * 0x9E37_79B9 + 1) & ((1 << 128) - 1)
                    for index in range(200)]
        rows = store.add_rows(patterns)
        assert rows == list(range(200))
        assert store.add_rows([]) == []
        for row, bits in enumerate(patterns):
            assert store.row_bits(row) == bits
            assert store.cardinality(row) == popcount(bits)

    def test_zero_width_store(self, backend):
        store = ColumnarStore(0, backend=backend)
        row = store.add_row(0)
        assert store.row_bits(row) == 0
        assert store.cardinality(row) == 0
        store.add_rows([0, 0])
        assert store.intersections(row, [1, 2]) == [0, 0]
        assert store.closeness_rows("intersect", row, [1, 2]) == [0.0, 0.0]
        store.free_row(row)
        assert len(store) == 2


@pytest.mark.parametrize("backend", BACKENDS)
class TestVectorizedSweeps:
    def test_intersections_and_pair_counts(self, backend):
        store = filled(backend)
        candidates = list(range(len(PATTERNS)))
        mine = PATTERNS[3]
        inters = store.intersections(3, candidates)
        assert inters == [popcount(mine & bits) for bits in PATTERNS]
        inters2, unions = store.pair_counts(3, candidates)
        assert inters2 == inters
        assert unions == [popcount(mine | bits) for bits in PATTERNS]
        assert store.intersections(3, []) == []

    @pytest.mark.parametrize("metric", ("intersect", "xor", "ios", "iou"))
    def test_closeness_rows_match_formula(self, backend, metric):
        store = filled(backend)
        candidates = list(range(len(PATTERNS)))
        mine = PATTERNS[3]
        values = store.closeness_rows(metric, 3, candidates)
        for bits, value in zip(PATTERNS, values):
            intersect = popcount(mine & bits)
            union = popcount(mine | bits)
            if metric == "intersect":
                expected = float(intersect)
            elif metric == "xor":
                xor = union - intersect
                expected = XOR_MAX if xor == 0 else 1.0 / xor
            elif intersect == 0:
                expected = 0.0
            elif metric == "ios":
                expected = intersect * intersect / (
                    popcount(mine) + popcount(bits)
                )
            else:
                expected = intersect * intersect / union
            assert repr(value) == repr(expected)

    def test_backends_agree_bit_for_bit(self, backend):
        if backend == "python" and len(BACKENDS) == 2:
            pytest.skip("covered from the numpy parameterization")
        if len(BACKENDS) == 1:
            pytest.skip("single backend available")
        numpy_store = filled("numpy")
        python_store = filled("python")
        candidates = list(range(len(PATTERNS)))
        for metric in ("intersect", "xor", "ios", "iou"):
            assert (
                numpy_store.closeness_rows(metric, 2, candidates)
                == python_store.closeness_rows(metric, 2, candidates)
            )

    def test_unknown_metric_rejected(self, backend):
        store = filled(backend)
        with pytest.raises(KeyError):
            store.closeness_rows("cosine", 0, [1])
        assert store.closeness_rows("ios", 0, []) == []


@pytest.fixture(scope="module")
def gathered():
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=8, scale=0.1, profile_capacity=64
    )
    return offline_gather(scenario, seed=4)


class TestLayoutProjections:
    def test_from_directory_matches_scanned_layout(self, gathered):
        profiles = [record.profile for record in gathered.records]
        scanned = ClosenessKernel(gathered.directory, profiles).layout
        derived = BitPlaneLayout.from_directory(
            gathered.directory, profiles[0].capacity
        )
        assert derived.total_bits == scanned.total_bits
        assert set(derived.planes) == set(scanned.planes)
        for adv_id, plane in derived.planes.items():
            other = scanned.planes[adv_id]
            assert (plane.offset, plane.span, plane.window) == (
                other.offset, other.span, other.window
            )

    def test_pack_profile_bits_matches_kernel_pack(self, gathered):
        profiles = [record.profile for record in gathered.records]
        kernel = ClosenessKernel(gathered.directory, profiles)
        for profile in profiles:
            packed = kernel.pack(profile)
            if packed.pure:
                assert pack_profile_bits(profile, kernel.layout) == packed.bits

    def test_unpackable_profile_returns_none(self, gathered):
        profile = gathered.records[0].profile
        empty_layout = BitPlaneLayout.from_directory({}, 64)
        assert pack_profile_bits(profile, empty_layout) is None


class TestShardPlanning:
    def test_plan_requires_enough_units_and_groups(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        assert plan_shards(units, 1) is None
        assert plan_shards(units[:5], 4) is None
        # More shards than GIF groups: unplannable.
        signatures = {unit.profile.signature() for unit in units}
        assert plan_shards(units, len(signatures) + 1) is None

    def test_plan_keeps_gifs_whole_and_balances(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        buckets = plan_shards(units, 3)
        assert buckets is not None
        assert sorted(
            unit.unit_id for bucket in buckets for unit in bucket
        ) == sorted(unit.unit_id for unit in units)
        for signature in {unit.profile.signature() for unit in units}:
            owners = {
                index
                for index, bucket in enumerate(buckets)
                if any(u.profile.signature() == signature for u in bucket)
            }
            assert len(owners) == 1

    def test_non_singleton_units_fall_back(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        merged = AllocationUnit.merged(units[:2], gathered.directory)
        assert plan_shards([merged] + units[2:], 2) is None

    def test_merge_rejects_out_of_order_outcomes(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        buckets = plan_shards(units, 2)
        outcomes = [
            ShardOutcome(index=1, success=True),
            ShardOutcome(index=0, success=True),
        ]
        with pytest.raises(ValueError, match="submission order"):
            merge_shard_outcomes(outcomes, buckets, gathered.directory)

    def test_merge_returns_none_on_shard_failure(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        buckets = plan_shards(units, 2)
        outcomes = [
            ShardOutcome(index=0, success=True, groups=((0,),)),
            ShardOutcome(index=1, success=False),
        ]
        assert merge_shard_outcomes(outcomes, buckets, gathered.directory) is None


def failing_runner(tasks):
    return [ShardOutcome(index=task.index, success=False) for task in tasks]


class TestShardedAllocatorFallbacks:
    def test_failed_shards_fall_back_to_monolithic(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        sharded = ShardedCramAllocator(
            metric="ios", shards=2, runner=failing_runner
        )
        result = sharded.allocate(units, gathered.broker_pool, gathered.directory)
        reference = CramAllocator(metric="ios")
        expected = reference.allocate(
            units_from_records(gathered.records, gathered.directory),
            gathered.broker_pool,
            gathered.directory,
        )
        assert result.success == expected.success
        assert [
            tuple(r.sub_id for unit in bin_.units for r in unit.members)
            for bin_ in result.bins
        ] == [
            tuple(r.sub_id for unit in bin_.units for r in unit.members)
            for bin_ in expected.bins
        ]
        assert sharded.last_stats.shard_fallbacks == 1
        assert sharded.last_stats.shard_count == 0

    def test_unshardable_pool_runs_monolithic(self, gathered):
        units = units_from_records(gathered.records[:3], gathered.directory)
        sharded = ShardedCramAllocator(metric="ios", shards=4)
        result = sharded.allocate(units, gathered.broker_pool, gathered.directory)
        assert result.success
        assert sharded.last_stats.shard_count == 0
        assert sharded.last_stats.shard_fallbacks == 0

    def test_metric_object_normalized(self):
        sharded = ShardedCramAllocator(metric=make_metric("iou"))
        assert sharded.metric == "iou"
        assert sharded.name == "cram-iou-sharded"

    def test_install_shard_runner_restores_serial(self):
        sentinel_calls = []

        def sentinel(tasks):
            sentinel_calls.append(len(tasks))
            return run_shards_serial(tasks)

        previous = cram_mod._shard_runner
        try:
            install_shard_runner(sentinel)
            assert cram_mod._shard_runner is sentinel
            install_shard_runner(None)
            assert cram_mod._shard_runner is run_shards_serial
        finally:
            install_shard_runner(previous)
