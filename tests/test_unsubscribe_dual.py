"""Tests for unsubscription propagation and dual-role clients."""

import pytest

from repro.pubsub.client import DualClient
from repro.pubsub.message import Subscription
from repro.pubsub.predicate import parse_predicates
from repro.sim.rng import SeededRng
from repro.workloads.stocks import StockQuoteFeed, stock_advertisement

from test_broker_routing import make_network, make_publisher, make_subscriber


class TestUnsubscription:
    def test_deliveries_stop_after_unsubscribe(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(1.0)
        assert subscriber.delivered > 0
        subscriber.unsubscribe("s1")
        network.run(0.5)  # let the retraction propagate + in-flight land
        count = subscriber.delivered
        network.run(2.0)
        assert subscriber.delivered == count

    def test_srt_cleaned_along_whole_path(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        assert all(network.brokers[b].srt_size > 0 for b in ("b0", "b1", "b2"))
        subscriber.unsubscribe("s1")
        network.run(1.0)
        assert all(network.brokers[b].srt_size == 0 for b in ("b0", "b1", "b2"))

    def test_other_subscriptions_unaffected(self):
        network = make_network(2)
        keeper = make_subscriber("keep")
        leaver = make_subscriber("leave")
        network.attach_subscriber(keeper, "b1")
        network.attach_subscriber(leaver, "b1")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(1.0)
        leaver.unsubscribe("leave")
        network.run(0.5)
        before = keeper.delivered
        network.run(1.0)
        assert keeper.delivered > before

    def test_unknown_sub_raises(self):
        subscriber = make_subscriber("s1")
        with pytest.raises(KeyError):
            subscriber.unsubscribe("nope")

    def test_unsubscribe_while_detached_is_local_only(self):
        subscriber = make_subscriber("s1")
        subscriber.unsubscribe("s1")  # no network: just drops the sub
        assert subscriber.subscriptions == []

    def test_duplicate_unsubscription_message_ignored(self):
        network = make_network(2)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b1")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        subscriber.unsubscribe("s1")
        network.run(0.5)
        # Hand-deliver a second retraction; brokers must not blow up.
        from repro.pubsub.message import Unsubscription

        network.client_send("s1", "b1", Unsubscription("s1", "s1"), 0.1)
        network.run(0.5)


class TestDualClient:
    def _dual(self, symbol="YHOO", rng_seed=0):
        rng = SeededRng(rng_seed, "dual")
        subscription = Subscription(
            sub_id=f"dual-{symbol}",
            subscriber_id=f"dual-{symbol}",
            predicates=parse_predicates(
                [("class", "=", "STOCK"), ("symbol", "=", "MSFT")]
            ),
        )
        return DualClient(
            client_id=f"dual-{symbol}",
            advertisement=stock_advertisement(symbol),
            feed=StockQuoteFeed(symbol, rng),
            rate=10.0,
            subscriptions=[subscription],
        )

    def test_halves_attach_to_different_brokers(self):
        network = make_network(3)
        dual = self._dual()
        dual.attach(network, publisher_broker="b0", subscriber_broker="b2")
        assert dual.publisher.broker_id == "b0"
        assert dual.subscriber.broker_id == "b2"

    def test_publishes_and_receives(self):
        network = make_network(3)
        yhoo_dual = self._dual("YHOO")  # publishes YHOO, wants MSFT
        yhoo_dual.attach(network, "b0", "b2")
        msft_pub = make_publisher("MSFT", rate=10.0)
        network.attach_publisher(msft_pub, "b1")
        yhoo_listener = make_subscriber("listener", "YHOO")
        network.attach_subscriber(yhoo_listener, "b1")
        network.run(2.0)
        assert yhoo_dual.published > 0
        assert yhoo_dual.delivered > 0  # its subscriber half got MSFT quotes
        assert yhoo_listener.delivered > 0  # others got its YHOO quotes

    def test_register_without_attachment(self):
        network = make_network(2)
        dual = self._dual()
        dual.register(network)
        assert dual.publisher.client_id in network.publishers
        assert dual.subscriber.client_id in network.subscribers
        assert dual.publisher.broker_id is None

    def test_halves_have_distinct_client_ids(self):
        dual = self._dual()
        assert dual.publisher.client_id != dual.subscriber.client_id
        assert dual.client_id in dual.publisher.client_id
