"""Edge paths of the reprolint v2 machinery: CLI dispatch, graph mode,
cache robustness, baseline validation errors, autofix rewriting shapes,
and the less-travelled analyzer branches."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.__main__ import main as tools_main
from repro.tools.autofix import fix_paths, fix_source, fix_source_checked
from repro.tools.baseline import load_baseline
from repro.tools.cache import LintCache, tool_signature
from repro.tools.engine import LintError
from repro.tools.lint import main, run_lint
from repro.tools.project import ParseFailure, Project, resolve_passes, run_passes


def _write_tree(root, files):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


# ----------------------------------------------------------------------
# python -m repro.tools dispatch
# ----------------------------------------------------------------------


def test_tools_main_usage_and_unknown_command(capsys):
    assert tools_main([]) == 0
    assert "usage:" in capsys.readouterr().out
    assert tools_main(["--help"]) == 0
    capsys.readouterr()
    assert tools_main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_tools_main_dispatches_lint(capsys):
    assert tools_main(["lint", "--list-rules"]) == 0
    assert "unmanaged-random" in capsys.readouterr().out


def test_list_passes(capsys):
    assert main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    assert "layering" in out and "determinism-taint" in out


# ----------------------------------------------------------------------
# --graph and CLI option plumbing
# ----------------------------------------------------------------------


def test_graph_mode_reports_and_exits_clean(tmp_path, capsys):
    _write_tree(tmp_path, {
        "src/repro/core/a.py": "from __future__ import annotations\n",
    })
    assert main(["--graph", str(tmp_path / "src")]) == 0
    assert "import-time cycles: none" in capsys.readouterr().out


def test_graph_mode_parse_failure_exits_two(tmp_path, capsys):
    _write_tree(tmp_path, {"src/repro/core/bad.py": "def broken(:\n"})
    assert main(["--graph", str(tmp_path / "src")]) == 2
    assert "parse failure" in capsys.readouterr().err


def test_output_flag_writes_report_file(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("from __future__ import annotations\n\nx = 1\n")
    report = tmp_path / "report.sarif"
    assert main([str(target), "--format", "sarif",
                 "--output", str(report)]) == 0
    assert json.loads(report.read_text())["version"] == "2.1.0"
    capsys.readouterr()
    text_report = tmp_path / "report.txt"
    assert main([str(target), "--output", str(text_report)]) == 0
    assert "clean" in text_report.read_text()
    # Text mode still echoes the one-line summary to stdout.
    assert "clean" in capsys.readouterr().out


def test_passes_none_disables_project_passes(tmp_path, capsys):
    _write_tree(tmp_path, {
        "src/repro/core/up.py":
            "from __future__ import annotations\n"
            "from repro.experiments.runner import run_experiment\n"
            "entry = run_experiment\n",
    })
    assert main([str(tmp_path / "src"), "--passes", "none"]) == 0
    capsys.readouterr()
    assert main([str(tmp_path / "src"), "--passes", "layering"]) == 1
    capsys.readouterr()


def test_unknown_pass_and_rule_are_usage_errors(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("from __future__ import annotations\n")
    assert main([str(target), "--passes", "no-such-pass"]) == 2
    assert main([str(target), "--select", "no-such-rule"]) == 2
    capsys.readouterr()


def test_baseline_flag_error_surfaces_as_exit_two(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("from __future__ import annotations\n")
    missing = tmp_path / "nope.json"
    assert main([str(target), "--baseline", str(missing)]) == 2
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Layering: undeclared packages and the root facade
# ----------------------------------------------------------------------


def test_undeclared_package_is_flagged(tmp_path):
    _write_tree(tmp_path, {
        "src/repro/widgets/thing.py":
            "from __future__ import annotations\n"
            "from repro.core.units import EPSILON\n",
    })
    project, _ = Project.load([tmp_path / "src"])
    findings = run_passes(project, resolve_passes(["layering"]))
    assert any("not declared in the layering DAG" in f.message for f in findings)


def test_subpackage_may_not_import_root_facade(tmp_path):
    _write_tree(tmp_path, {
        "src/repro/__init__.py":
            "from __future__ import annotations\nVERSION = '1'\n",
        "src/repro/core/uses_root.py":
            "from __future__ import annotations\n"
            "import repro\n"
            "v = repro.VERSION\n",
    })
    project, _ = Project.load([tmp_path / "src"])
    findings = run_passes(project, resolve_passes(["layering"]))
    assert any("public facade" in f.message for f in findings)


def test_graph_report_lists_cycles(tmp_path, capsys):
    _write_tree(tmp_path, {
        "src/repro/core/ca.py":
            "from __future__ import annotations\n"
            "from repro.core.cb import b\na = b\n",
        "src/repro/core/cb.py":
            "from __future__ import annotations\n"
            "from repro.core.ca import a\nb = 1\n",
    })
    assert main(["--graph", str(tmp_path / "src"), "--passes", "none"]) == 0
    out = capsys.readouterr().out
    assert "import-time cycles:" in out
    assert "repro.core.ca" in out and "repro.core.cb" in out


def test_root_may_not_import_tools(tmp_path):
    _write_tree(tmp_path, {
        "src/repro/__init__.py":
            "from __future__ import annotations\n"
            "from repro.tools.engine import Finding\n",
        "src/repro/tools/engine.py":
            "from __future__ import annotations\nFinding = object\n",
    })
    project, _ = Project.load([tmp_path / "src"])
    findings = run_passes(project, resolve_passes(["layering"]))
    assert any("tools" in f.message for f in findings)


# ----------------------------------------------------------------------
# Contracts: builder shapes and binding scans
# ----------------------------------------------------------------------


def _contract_findings(tmp_path, body):
    _write_tree(tmp_path, {"src/repro/core/mod.py": body})
    project, failures = Project.load([tmp_path / "src"])
    assert failures == []
    return run_passes(project, resolve_passes(["api-contract"]))


def test_dotted_register_with_keyword_lambda(tmp_path):
    findings = _contract_findings(
        tmp_path,
        "from __future__ import annotations\n"
        "import repro.core.allocators\n"
        "repro.core.allocators.register('x', builder=lambda **_: None)\n",
    )
    assert any("lambda" in f.message for f in findings)


def test_unresolvable_builder_call_is_flagged(tmp_path):
    findings = _contract_findings(
        tmp_path,
        "from __future__ import annotations\n"
        "from repro.core import allocators\n"
        "from somewhere import factory\n"
        "allocators.register('x', factory())\n",
    )
    assert any("not" in f.message and "resolvable" in f.message
               for f in findings)


def test_opaque_builder_expression_is_flagged(tmp_path):
    findings = _contract_findings(
        tmp_path,
        "from __future__ import annotations\n"
        "from repro.core import allocators\n"
        "import somewhere\n"
        "allocators.register('x', somewhere.builders['x'])\n",
    )
    assert any("not statically resolvable" in f.message for f in findings)


def test_lambda_valued_name_builder_is_flagged(tmp_path):
    findings = _contract_findings(
        tmp_path,
        "from __future__ import annotations\n"
        "from repro.core import allocators\n"
        "make = lambda **_: None\n"
        "allocators.register('x', make)\n",
    )
    assert any("lambda-valued name" in f.message for f in findings)


def test_all_consistency_sees_loop_and_try_bindings(tmp_path):
    findings = _contract_findings(
        tmp_path,
        "from __future__ import annotations\n"
        "for item in (1, 2):\n"
        "    looped = item\n"
        "try:\n"
        "    import json as maybe_json\n"
        "except ImportError:\n"
        "    maybe_json = None\n"
        "with open('/dev/null') as handle:\n"
        "    pass\n"
        "count = 0\n"
        "count += 1\n"
        "__all__ = ['looped', 'maybe_json', 'count', 'handle']\n",
    )
    # All four names are bound somewhere at module level: no
    # not-bound findings (dead-export findings are fine — the fixture
    # has no other modules).
    assert not any("not bound" in f.message for f in findings)


# ----------------------------------------------------------------------
# Cache robustness
# ----------------------------------------------------------------------


def test_corrupt_cache_file_is_discarded(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{ not json")
    target = tmp_path / "m.py"
    target.write_text("from __future__ import annotations\n\nx = 1\n")
    run = run_lint([str(target)], cache_path=cache_file)
    assert run.findings == [] and run.cache_misses >= 1
    # And the rewritten cache is valid from then on.
    again = run_lint([str(target)], cache_path=cache_file)
    assert again.cache_misses == 0


def test_stale_tool_signature_invalidates_cache(tmp_path):
    cache_file = tmp_path / "cache.json"
    target = tmp_path / "m.py"
    target.write_text("from __future__ import annotations\n\nx = 1\n")
    run_lint([str(target)], cache_path=cache_file)
    payload = json.loads(cache_file.read_text())
    payload["tool"] = "not-the-real-one"
    cache_file.write_text(json.dumps(payload))
    rerun = run_lint([str(target)], cache_path=cache_file)
    assert rerun.cache_misses >= 1
    assert json.loads(cache_file.read_text())["tool"] == tool_signature()


def test_cache_wrong_shape_is_discarded(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text(json.dumps(["not", "a", "dict"]))
    cache = LintCache(cache_file)
    assert cache.get_file("x.py", "deadbeef", "sig") is None


# ----------------------------------------------------------------------
# Baseline loader errors
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "payload",
    [
        "{ not json",
        json.dumps({"version": 99, "entries": []}),
        json.dumps(["no-object"]),
        json.dumps({"version": 1, "entries": {"not": "a list"}}),
        json.dumps({"version": 1, "entries": ["not-an-object"]}),
    ],
)
def test_baseline_rejects_malformed_files(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(LintError):
        load_baseline(path)


def test_baseline_missing_file_raises(tmp_path):
    with pytest.raises(LintError, match="cannot read"):
        load_baseline(tmp_path / "absent.json")


# ----------------------------------------------------------------------
# Autofix rewriting shapes
# ----------------------------------------------------------------------


def test_fix_wraps_long_from_import():
    long_names = [f"name_{i:02d}" for i in range(8)]
    source = (
        "from __future__ import annotations\n"
        f"from pkg.subpkg.deeply.nested import {', '.join(long_names)}, unused_tail\n"
        + "\n"
        + "\n".join(f"x{i} = {name}" for i, name in enumerate(long_names))
        + "\n"
    )
    fixed, result = fix_source_checked(source)
    assert result.removed_imports == 1
    assert "unused_tail" not in fixed
    assert "(\n" in fixed  # rebuilt as a wrapped multi-line import


def test_fix_trims_plain_import_list():
    fixed, result = fix_source_checked(
        "from __future__ import annotations\n"
        "import json, sys\n\n"
        "print(json.dumps([]))\n"
    )
    assert result.removed_imports == 1
    assert "import json\n" in fixed and "sys" not in fixed


def test_fix_inserts_future_after_comment_header():
    fixed, _ = fix_source("#!/usr/bin/env python\n# a header comment\n\nx = 1\n")
    lines = fixed.splitlines()
    assert lines[0].startswith("#!")
    assert "from __future__ import annotations" in lines


def test_fix_paths_leaves_unchanged_files_alone(tmp_path):
    target = tmp_path / "ok.py"
    content = "from __future__ import annotations\n\nx = 1\n"
    target.write_text(content)
    before = target.stat().st_mtime_ns
    results = fix_paths([target])
    assert not results[0].changed
    assert target.stat().st_mtime_ns == before


# ----------------------------------------------------------------------
# Engine / project odds and ends
# ----------------------------------------------------------------------


def test_lint_missing_path_raises():
    with pytest.raises(LintError, match="no such file"):
        run_lint(["/definitely/not/here"])


def test_parse_failure_str_and_project_resolution(tmp_path):
    failure = ParseFailure("a.py", "boom")
    assert str(failure) == "a.py: boom"
    _write_tree(tmp_path, {
        "src/repro/core/a.py":
            "from __future__ import annotations\n"
            "from repro.core.b import thing\n",
        "src/repro/core/b.py":
            "from __future__ import annotations\n"
            "from external.place import thing\n",
    })
    project, _ = Project.load([tmp_path / "src"])
    # Chain ends outside the tree: resolution gives up, not crashes.
    assert project.resolve_name("repro.core.a", "thing") is None
    assert project.resolve_target("repro.nowhere.at.all") is None
