"""Unit + property tests for the observability primitives.

Property obligations (ISSUE 5): spans nest and never close out of
order, counter deltas are non-negative and sum across workers, JSONL
round-trips losslessly, and timeline samples are monotone in virtual
time.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs.export import (
    SCHEMA_VERSION,
    dumps_jsonl,
    loads_jsonl,
    merge_observations,
    merged_counters,
    validate_records,
)
from repro.obs.recorder import ObsError, Recorder
from repro.obs.timeline import TimelineSampler
from repro.pubsub.network import PubSubNetwork
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_nesting_depth_and_parents(self):
        recorder = Recorder()
        with recorder.span("outer") as outer:
            with recorder.span("mid") as mid:
                with recorder.span("inner") as inner:
                    pass
            with recorder.span("sibling") as sibling:
                pass
        assert outer.record.depth == 0 and outer.record.parent is None
        assert mid.record.depth == 1 and mid.record.parent == outer.record.index
        assert inner.record.depth == 2 and inner.record.parent == mid.record.index
        assert sibling.record.depth == 1 and sibling.record.parent == outer.record.index
        assert recorder.open_spans == 0

    def test_out_of_order_close_raises(self):
        recorder = Recorder()
        outer = recorder.span("outer")
        recorder.span("inner")
        with pytest.raises(ObsError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_span_closes_on_exception(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        assert recorder.open_spans == 0
        assert recorder.spans[0].t_end is not None

    def test_virtual_times_from_clock(self):
        clock = [1.5]
        recorder = Recorder(clock=lambda: clock[0])
        with recorder.span("phase"):
            clock[0] = 4.0
        record = recorder.spans[0]
        assert record.t_start == 1.5 and record.t_end == 4.0
        assert record.wall_s is not None and record.wall_s >= 0.0

    def test_snapshot_with_open_span_raises(self):
        recorder = Recorder()
        recorder.span("open")
        with pytest.raises(ObsError, match="open spans"):
            recorder.snapshot()

    def test_snapshot_excludes_wall_when_asked(self):
        recorder = Recorder()
        with recorder.span("phase", tag="x"):
            pass
        with_wall = recorder.snapshot()["spans"][0]
        without = recorder.snapshot(include_wall=False)["spans"][0]
        assert "wall_s" in with_wall and "wall_s" not in without
        assert without["attrs"] == {"tag": "x"}

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=30))
    def test_property_nesting_invariants(self, pops):
        """Random open/close interleavings: depth always equals the
        number of open ancestors, parents precede children, and spans
        never overlap partially (close order is LIFO)."""
        recorder = Recorder()
        stack = []
        for index, extra_pops in enumerate(pops):
            for _ in range(min(extra_pops, len(stack))):
                stack.pop().__exit__(None, None, None)
            span = recorder.span(f"s{index}")
            assert span.record.depth == len(stack)
            parent = stack[-1].record.index if stack else None
            assert span.record.parent == parent
            stack.append(span)
        while stack:
            stack.pop().__exit__(None, None, None)
        for record in recorder.spans:
            if record.parent is not None:
                assert record.parent < record.index
                parent = recorder.spans[record.parent]
                assert parent.depth == record.depth - 1
        assert recorder.open_spans == 0

    def test_module_level_span_noop_when_detached(self):
        assert obs.active() is None
        span = obs.span("anything", key="value")
        assert span is obs.NULL_SPAN
        with span:
            span.set(more=1)
        obs.add("counter.never", 3)  # no-op, must not raise

    def test_attach_detach_cycle(self):
        recorder = Recorder()
        obs.attach(recorder)
        try:
            with pytest.raises(ObsError, match="already attached"):
                obs.attach(Recorder())
            assert obs.active() is recorder
            obs.add("hits", 2)
        finally:
            assert obs.detach() is recorder
        assert obs.active() is None
        with pytest.raises(ObsError, match="no recorder"):
            obs.detach()
        assert recorder.counters == {"hits": 2}


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------

class TestCounters:
    def test_negative_delta_rejected(self):
        recorder = Recorder()
        with pytest.raises(ObsError, match="negative delta"):
            recorder.add("bad", -1)

    @given(st.lists(
        st.tuples(st.sampled_from(("a.x", "a.y", "b.z")),
                  st.integers(min_value=0, max_value=10_000)),
        max_size=50,
    ))
    def test_property_counters_accumulate_non_negative(self, deltas):
        recorder = Recorder()
        expected: dict = {}
        for name, delta in deltas:
            recorder.add(name, delta)
            expected[name] = expected.get(name, 0) + delta
        assert recorder.counters == expected
        assert all(value >= 0 for value in recorder.counters.values())

    @given(st.lists(
        st.dictionaries(st.sampled_from(("a.x", "a.y", "b.z")),
                        st.integers(min_value=0, max_value=10_000)),
        min_size=1, max_size=6,
    ))
    def test_property_worker_counters_sum_across_cells(self, worker_counters):
        """Merging N per-worker snapshots sums every counter linearly."""
        cells = []
        for index, counters in enumerate(worker_counters):
            recorder = Recorder()
            for name, value in counters.items():
                recorder.add(name, value)
            cells.append((f"w{index}", recorder.snapshot()))
        totals = merged_counters(merge_observations(cells))
        expected: dict = {}
        for counters in worker_counters:
            for name, value in counters.items():
                expected[name] = expected.get(name, 0) + value
        assert totals == dict(sorted(expected.items()))


# ----------------------------------------------------------------------
# Timeline samples
# ----------------------------------------------------------------------

class TestTimeline:
    def test_sample_regression_raises(self):
        recorder = Recorder()
        recorder.sample(2.0, queue_depth=1)
        recorder.sample(2.0, queue_depth=2)  # equal time is fine
        with pytest.raises(ObsError, match="behind"):
            recorder.sample(1.0, queue_depth=3)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=40))
    def test_property_samples_monotone_in_virtual_time(self, times):
        recorder = Recorder()
        for t in sorted(times):
            recorder.sample(t)
        recorded = [sample["t"] for sample in recorder.samples]
        assert recorded == sorted(times)
        assert all(b >= a for a, b in zip(recorded, recorded[1:]))

    def test_sampler_chunks_are_order_preserving(self):
        """A sampled engine executes the exact same callback sequence as
        an unsampled one (chunked run(until=...) tiles time)."""
        def build(sampled: bool):
            network = PubSubNetwork(sim=Simulator())
            order = []
            for index in range(10):
                network.sim.schedule_at(0.3 * index, lambda i=index: order.append(i))
                network.sim.schedule_at(0.3 * index, lambda i=index: order.append(-i))
            recorder = Recorder(clock=lambda: network.sim.now)
            if sampled:
                network.obs_sampler = TimelineSampler(network, recorder, interval=0.5)
            network.run(4.0)
            return order, recorder

        plain_order, _ = build(sampled=False)
        sampled_order, recorder = build(sampled=True)
        assert sampled_order == plain_order
        times = [sample["t"] for sample in recorder.samples]
        assert times[0] == 0.0
        assert times[-1] == 4.0
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_sampler_catches_up_after_external_advance(self):
        network = PubSubNetwork(sim=Simulator())
        recorder = Recorder(clock=lambda: network.sim.now)
        sampler = TimelineSampler(network, recorder, interval=1.0)
        network.sim.run(until=5.25)  # driven outside the sampler
        sampler.run(6.0)
        times = [sample["t"] for sample in recorder.samples]
        assert times == [0.0, 5.25, 6.0]

    def test_sampler_rejects_bad_interval(self):
        network = PubSubNetwork(sim=Simulator())
        recorder = Recorder()
        with pytest.raises(ValueError, match="positive"):
            TimelineSampler(network, recorder, interval=0.0)


# ----------------------------------------------------------------------
# JSONL export round-trip
# ----------------------------------------------------------------------

#: JSON-representable scalars whose repr survives a dump/load cycle.
_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)


class TestExportRoundTrip:
    @given(st.lists(
        st.dictionaries(
            st.sampled_from(("queue_depth", "in_flight", "rate", "note")),
            _scalars, max_size=4,
        ),
        max_size=15,
    ))
    def test_property_jsonl_round_trips_losslessly(self, payloads):
        recorder = Recorder()
        for t, fields in enumerate(payloads):
            recorder.sample(float(t), **fields)
        recorder.add("events", 3)
        with recorder.span("phase"):
            pass
        records = merge_observations([("cell", recorder.snapshot())])
        text = dumps_jsonl(records)
        assert loads_jsonl(text) == records
        # And a second encode of the decoded records is byte-identical.
        assert dumps_jsonl(loads_jsonl(text)) == text

    def test_merge_preserves_submission_order(self):
        first, second = Recorder(), Recorder()
        first.add("n", 1)
        second.add("n", 2)
        records = merge_observations(
            [("b-cell", second.snapshot()), ("a-cell", first.snapshot())]
        )
        assert records[0] == {
            "record": "header", "schema": SCHEMA_VERSION,
            "cells": ["b-cell", "a-cell"],
        }
        cells = [record["cell"] for record in records[1:]]
        assert cells == ["b-cell", "a-cell"]
        assert merged_counters(records) == {"n": 3}

    def test_json_float_repr_is_exact(self):
        value = 0.1 + 0.2  # classic non-representable sum
        assert json.loads(json.dumps(value)) == value

    def test_validate_accepts_real_export(self):
        recorder = Recorder()
        with recorder.span("phase"):
            recorder.add("k", 1)
        recorder.sample(0.0, queue_depth=0)
        records = merge_observations([("cell", recorder.snapshot())])
        assert validate_records(records) == []

    def test_validate_rejects_malformed_records(self):
        good = merge_observations([("cell", Recorder().snapshot())])
        assert validate_records([]) != []
        assert validate_records([{"record": "counter"}]) != []  # no header
        bad_schema = [{"record": "header", "schema": "bogus/9", "cells": []}]
        assert any("schema" in error for error in validate_records(bad_schema))
        negative = good + [
            {"record": "counter", "cell": "c", "name": "n", "value": -3},
        ]
        assert any("below" in error for error in validate_records(negative))
        backwards = good + [
            {"record": "sample", "cell": "c", "t": 5.0},
            {"record": "sample", "cell": "c", "t": 1.0},
        ]
        assert any("behind" in error for error in validate_records(backwards))
        inverted_span = good + [{
            "record": "span", "cell": "c", "name": "s", "index": 0,
            "depth": 0, "parent": None, "t_start": 2.0, "t_end": 1.0,
        }]
        assert any("ends" in error for error in validate_records(inverted_span))
        assert any(
            "unknown record kind" in error
            for error in validate_records(good + [{"record": "mystery"}])
        )
        assert any(
            "duplicate header" in error
            for error in validate_records(good + good)
        )
