"""Tests for the monitoring-domain experiment pipeline."""

import pytest

from repro.experiments.monitoring_runner import (
    MonitoringResult,
    MonitoringScenario,
    run_monitoring_experiment,
)


@pytest.fixture(scope="module")
def result():
    scenario = MonitoringScenario(
        brokers=10, hosts=8, subscriptions=60, measurement_time=20.0
    )
    return run_monitoring_experiment(scenario, seed=3)


class TestMonitoringPipeline:
    def test_consolidates(self, result):
        assert result.allocated_brokers < result.pool_size
        assert result.broker_reduction > 0.0

    def test_message_rate_drops(self, result):
        assert result.message_rate_reduction > 0.0

    def test_traffic_flows_after_reconfiguration(self, result):
        assert result.reconfigured.delivery_count > 0

    def test_gif_reduction_happens_without_stock_templates(self, result):
        """Identical dashboards/rollups collapse into GIFs here too."""
        assert result.gif_reduction > 0.0

    def test_as_row_shape(self, result):
        row = result.as_row()
        assert row["scenario"].startswith("monitoring-")
        assert 0 <= row["broker_reduction_pct"] <= 100

    def test_scenario_name_and_profiling_time(self):
        scenario = MonitoringScenario(hosts=4, subscriptions=10,
                                      profile_capacity=64, sample_rate=4.0)
        assert scenario.name == "monitoring-4hx10s"
        assert scenario.profiling_time() == pytest.approx(64 / 4.0 + 5.0)

    def test_deterministic_per_seed(self):
        scenario = MonitoringScenario(
            brokers=8, hosts=4, subscriptions=24, measurement_time=10.0
        )
        a = run_monitoring_experiment(scenario, seed=11)
        b = run_monitoring_experiment(scenario, seed=11)
        assert a.allocated_brokers == b.allocated_brokers
        assert a.reconfigured.total_broker_messages == (
            b.reconfigured.total_broker_messages
        )
