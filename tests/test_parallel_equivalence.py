"""Serial/parallel bit-identity of the sweep executor.

The determinism contract of :mod:`repro.experiments.parallel`: a sweep
executed with ``jobs=N`` returns exactly the serial sweep's results —
same rows, same metric floats (compared via ``repr``), same evaluation
counters — for any N, with or without a fault plan, and with custom
registry allocators resolved inside the spawned workers.

``computation_seconds`` is the one exception: it is a wall-clock
*measurement* of the allocator run, not a simulation output, so it is
excluded from the comparison.
"""

from __future__ import annotations

import pytest

from repro.core import allocators
from repro.core.binpacking import BinPackingAllocator
from repro.experiments import parallel
from repro.experiments.parallel import (
    CellSpec,
    execute_cells,
    resolve_jobs,
    usable_cpus,
)
from repro.experiments.sweeps import (
    heterogeneous_scenarios,
    homogeneous_scenarios,
    sweep,
    sweep_specs,
)
from repro.sim.faults import FaultPlan


def comparable(result) -> dict:
    """Everything the bit-identity contract covers, reprs for floats."""
    row = result.as_row()
    row.pop("computation_s")  # wall-clock measurement, not simulation output
    return {
        "row": {key: repr(value) for key, value in row.items()},
        "summary": repr(result.summary),
        "baseline": repr(result.baseline_summary),
        "pool_size": result.pool_size,
        "allocated_brokers": result.allocated_brokers,
        "extra": {key: repr(value) for key, value in result.extra.items()},
        "cram_stats": repr(result.cram_stats),
    }


def tiny_homo(subs: int = 5):
    return homogeneous_scenarios(
        subs_sweep=(subs,), scale=0.08, measurement_time=6.0
    )


class TestBitIdentity:
    def test_sweep_jobs4_equals_serial(self):
        scenarios = tiny_homo() + heterogeneous_scenarios(
            ns_sweep=(8,), scale=0.08, measurement_time=6.0
        )
        approaches = ("manual", "binpacking", "cram-ios")
        serial = sweep(scenarios, approaches, seed=11)
        par = sweep(scenarios, approaches, seed=11, jobs=4)
        assert set(serial) == set(par)
        for key in serial:
            assert comparable(serial[key]) == comparable(par[key]), key

    def test_sweep_with_fault_plan_equals_serial(self):
        plan = FaultPlan(
            crash_fraction=0.25, crash_start=4.0, downtime=5.0,
            loss_rate=0.01, jitter=0.001, seed=5,
        )
        scenarios = tiny_homo(4)
        approaches = ("manual", "binpacking")
        serial = sweep(scenarios, approaches, seed=3, fault_plan=plan)
        par = sweep(scenarios, approaches, seed=3, fault_plan=plan, jobs=2)
        for key in serial:
            assert comparable(serial[key]) == comparable(par[key]), key
        # The plan actually did something, or this test is vacuous.
        summary = serial[(scenarios[0].name, "manual")].summary
        assert summary.broker_crashes > 0

    def test_progress_labels_match_serial_order(self):
        scenarios = tiny_homo(3)
        serial_labels: list = []
        parallel_labels: list = []
        sweep(scenarios, ("manual", "binpacking"), seed=2,
              progress=serial_labels.append)
        sweep(scenarios, ("manual", "binpacking"), seed=2,
              progress=parallel_labels.append, jobs=2)
        assert serial_labels == parallel_labels


# A spawn-safe custom allocator builder: module-level, so pool workers
# unpickle it by reference (they import this module and replay the
# registration via allocators.custom_registrations()).
def custom_binpacking_builder(**_knobs):
    return BinPackingAllocator


@pytest.fixture
def custom_allocator():
    allocators.register("custom-binpacking", custom_binpacking_builder)
    try:
        yield "custom-binpacking"
    finally:
        allocators.unregister("custom-binpacking")


class TestCustomAllocatorInWorkers:
    def test_registry_allocator_resolves_in_workers(self, custom_allocator):
        scenarios = tiny_homo(4)
        serial = sweep(scenarios, (custom_allocator,), seed=7)
        par = sweep(scenarios, (custom_allocator,), seed=7, jobs=4)
        for key in serial:
            assert comparable(serial[key]) == comparable(par[key]), key
        result = par[(scenarios[0].name, custom_allocator)]
        assert result.allocated_brokers <= result.pool_size

    def test_unpicklable_builder_rejected_up_front(self):
        allocators.register("bad-lambda", lambda **_: BinPackingAllocator)
        try:
            specs = sweep_specs(tiny_homo(3), ("manual", "binpacking"), seed=1)
            with pytest.raises(ValueError, match="module-level"):
                execute_cells(specs, jobs=2)
        finally:
            allocators.unregister("bad-lambda")


class TestExecutorMechanics:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == usable_cpus()
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_single_cell_runs_in_process(self):
        specs = sweep_specs(tiny_homo(3), ("manual",), seed=1)
        assert len(specs) == 1
        [result] = execute_cells(specs, jobs=8)
        assert result.approach == "manual"

    def test_return_exceptions_keeps_going(self):
        scenarios = tiny_homo(3)
        specs = [
            CellSpec(scenario=scenarios[0], approach="manual", seed=1),
            CellSpec(scenario=scenarios[0], approach="no-such-approach", seed=1),
            CellSpec(scenario=scenarios[0], approach="binpacking", seed=1),
        ]
        results = execute_cells(specs, jobs=1, return_exceptions=True)
        assert results[0].approach == "manual"
        assert isinstance(results[1], ValueError)
        assert results[2].approach == "binpacking"

        parallel_results = execute_cells(specs, jobs=2, return_exceptions=True)
        assert parallel_results[0].approach == "manual"
        assert isinstance(parallel_results[1], ValueError)
        assert parallel_results[2].approach == "binpacking"

    def test_first_failure_raises_without_return_exceptions(self):
        scenarios = tiny_homo(3)
        specs = [CellSpec(scenario=scenarios[0], approach="no-such", seed=1)]
        with pytest.raises(ValueError):
            execute_cells(specs, jobs=1)

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        def broken_pool(*_args, **_kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        scenarios = tiny_homo(3)
        specs = sweep_specs(scenarios, ("manual", "binpacking"), seed=4)
        labels: list = []
        results = execute_cells(specs, jobs=4, progress=labels.append)
        assert [r.approach for r in results] == ["manual", "binpacking"]
        assert any("pool unavailable" in label for label in labels)
        serial = execute_cells(specs, jobs=1)
        for fallback, reference in zip(results, serial):
            assert comparable(fallback) == comparable(reference)
