"""Empty-fault-plan bit-identity (kernel-equivalence style).

Installing a :class:`~repro.sim.faults.FaultPlan` with no events and
zeroed degradation knobs must be a strict no-op: allocations, metrics,
and evaluation counters stay bit-identical to a run with no injector
at all.  This is the contract that lets every fault-tolerance code
path ship inside the hot transport loop without re-baselining the
paper's tables.

``as_row()`` is deliberately not compared wholesale: it includes
``computation_s``, a wall-clock measurement that differs between any
two runs.  Everything derived from the simulation itself must match
exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.sim.faults import FaultPlan
from repro.workloads.scenarios import cluster_homogeneous

SEED = 2011


def _scenario():
    return cluster_homogeneous(
        subscriptions_per_publisher=8, scale=0.1, measurement_time=10.0
    )


def _run(approach, fault_plan):
    runner = ExperimentRunner(_scenario(), seed=SEED, fault_plan=fault_plan)
    return runner.run(approach)


@pytest.mark.parametrize("approach", ["fbf", "binpacking", "cram-ios", "automatic"])
def test_empty_plan_is_bit_identical(approach):
    bare = _run(approach, None)
    instrumented = _run(approach, FaultPlan())
    assert instrumented.summary == bare.summary
    assert instrumented.baseline_summary == bare.baseline_summary
    assert instrumented.allocated_brokers == bare.allocated_brokers


def test_empty_plan_reports_no_faults():
    result = _run("cram-ios", FaultPlan())
    row = result.summary.fault_row()
    assert row["delivery_rate"] == 1.0
    assert row["broker_crashes"] == 0
    assert row["publications_lost"] == 0
    assert row["degraded_plans"] == 0
    assert row["rollbacks"] == 0


def test_from_spec_none_is_bit_identical_too():
    bare = _run("cram-ios", None)
    instrumented = _run("cram-ios", FaultPlan.from_spec("none"))
    assert instrumented.summary == bare.summary
