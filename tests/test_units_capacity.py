"""Tests for allocation units and the broker capacity model (paper §IV-A)."""

import math

import pytest

from repro.core.capacity import (
    AllocationResult,
    BrokerBin,
    BrokerSpec,
    MatchingDelayFunction,
    sorted_broker_pool,
)
from repro.core.units import AllocationUnit, units_from_records

from conftest import make_directory, make_record, make_spec, make_unit


class TestMatchingDelayFunction:
    def test_linear_model(self):
        fn = MatchingDelayFunction(base=0.001, per_subscription=0.0001)
        assert fn.delay(0) == pytest.approx(0.001)
        assert fn.delay(10) == pytest.approx(0.002)

    def test_max_matching_rate_is_inverse(self):
        fn = MatchingDelayFunction(base=0.002, per_subscription=0.0)
        assert fn.max_matching_rate(100) == pytest.approx(500.0)

    def test_zero_delay_gives_infinite_rate(self):
        fn = MatchingDelayFunction(base=0.0, per_subscription=0.0)
        assert fn.max_matching_rate(5) == math.inf


class TestBrokerSpec:
    def test_capacity_key_sorts_descending_bandwidth(self):
        pool = [make_spec("a", 10), make_spec("b", 30), make_spec("c", 20)]
        ordered = sorted_broker_pool(pool)
        assert [spec.broker_id for spec in ordered] == ["b", "c", "a"]

    def test_capacity_key_tie_breaks_on_id(self):
        pool = [make_spec("z", 10), make_spec("a", 10)]
        assert [s.broker_id for s in sorted_broker_pool(pool)] == ["a", "z"]


class TestAllocationUnit:
    def test_singleton_unit_estimates(self, directory):
        unit = make_unit({"A": range(32)}, directory)  # 32/64 of 10 msg/s
        assert unit.delivery_rate == pytest.approx(5.0)
        assert unit.delivery_bandwidth == pytest.approx(5.0)
        assert unit.subscription_count == 1
        assert unit.kind == "subscription"

    def test_merged_sums_bandwidth_unions_profile(self, directory):
        a = make_unit({"A": range(32)}, directory)
        b = make_unit({"A": range(32)}, directory)  # identical interests
        merged = AllocationUnit.merged([a, b], directory)
        # Delivery bandwidth doubles (two subscribers, two copies)...
        assert merged.delivery_bandwidth == pytest.approx(10.0)
        # ...but the profile is the union (same publications).
        assert merged.profile.cardinality == 32
        assert merged.subscription_count == 2
        assert len(merged.members) == 2

    def test_merge_single_unit_returns_it(self, directory):
        unit = make_unit({"A": [1]}, directory)
        assert AllocationUnit.merged([unit], directory) is unit

    def test_merge_zero_units_raises(self, directory):
        with pytest.raises(ValueError):
            AllocationUnit.merged([], directory)

    def test_merge_mixed_kinds_raises(self, directory):
        sub = make_unit({"A": [1]}, directory)
        broker = AllocationUnit.for_child_broker("B1", [sub], directory)
        with pytest.raises(ValueError, match="mixed kinds"):
            AllocationUnit.merged([sub, broker], directory)

    def test_child_broker_unit_uses_union_stream_bandwidth(self, directory):
        # Two identical subscriptions: deliveries need 2x, but the
        # stream feeding their broker carries each publication once.
        a = make_unit({"A": range(32)}, directory)
        b = make_unit({"A": range(32)}, directory)
        pseudo = AllocationUnit.for_child_broker("B1", [a, b], directory)
        assert pseudo.kind == "broker"
        assert pseudo.child_broker_ids == ("B1",)
        assert pseudo.delivery_bandwidth == pytest.approx(5.0)

    def test_merged_broker_units_concatenate_children(self, directory):
        a = make_unit({"A": [1]}, directory)
        b = make_unit({"A": [2]}, directory)
        pa = AllocationUnit.for_child_broker("B1", [a], directory)
        pb = AllocationUnit.for_child_broker("B2", [b], directory)
        merged = AllocationUnit.merged([pa, pb], directory)
        assert set(merged.child_broker_ids) == {"B1", "B2"}
        assert merged.kind == "broker"

    def test_units_from_records(self, directory):
        records = [make_record({"A": [1]}), make_record({"B": [2]})]
        units = units_from_records(records, directory)
        assert len(units) == 2
        assert units[0].member_ids == (records[0].sub_id,)


class TestBrokerBin:
    def test_bandwidth_constraint(self, directory):
        spec = make_spec("b", bandwidth=7.0)
        bin_ = BrokerBin(spec, directory)
        unit = make_unit({"A": range(32)}, directory)  # 5 kB/s
        assert bin_.can_accept(unit)
        bin_.add(unit)
        assert bin_.used_bandwidth == pytest.approx(5.0)
        # Second identical unit would need 10 kB/s total > 7.
        assert not bin_.can_accept(make_unit({"A": range(32)}, directory))

    def test_matching_rate_constraint(self, directory):
        # delay = 0.05 + 0.05*n → with one subscription, max rate = 10.
        spec = BrokerSpec(
            "b",
            total_output_bandwidth=1000.0,
            delay_function=MatchingDelayFunction(base=0.05, per_subscription=0.05),
        )
        bin_ = BrokerBin(spec, directory)
        light = make_unit({"A": range(32)}, directory)  # input 5 msg/s
        assert bin_.can_accept(light)
        bin_.add(light)
        # Adding another subscription drops max rate to 1/(0.15) ≈ 6.67,
        # and the union input would grow to 10 msg/s → reject.
        other = make_unit({"B": range(32)}, directory)
        assert not bin_.can_accept(other)

    def test_input_rate_uses_union_not_sum(self, directory):
        """Identical subscriptions add no input load — the clustering payoff."""
        spec = make_spec("b", bandwidth=1000.0)
        bin_ = BrokerBin(spec, directory)
        bin_.add(make_unit({"A": range(32)}, directory))
        first_rate = bin_.input_rate
        bin_.add(make_unit({"A": range(32)}, directory))
        assert bin_.input_rate == pytest.approx(first_rate)
        bin_.add(make_unit({"A": range(32, 64)}, directory))
        assert bin_.input_rate == pytest.approx(first_rate * 2)

    def test_utilization(self, directory):
        spec = make_spec("b", bandwidth=10.0)
        bin_ = BrokerBin(spec, directory)
        assert bin_.utilization == 0.0
        bin_.add(make_unit({"A": range(32)}, directory))  # 5 kB/s
        assert bin_.utilization == pytest.approx(0.5)

    def test_empty_profile_unit_always_fits(self, directory):
        spec = make_spec("b", bandwidth=0.001)
        bin_ = BrokerBin(spec, directory)
        assert bin_.can_accept(make_unit({}, directory))


class TestAllocationResult:
    def _bins(self, directory):
        spec_a, spec_b = make_spec("a"), make_spec("b")
        bin_a, bin_b = BrokerBin(spec_a, directory), BrokerBin(spec_b, directory)
        bin_a.add(make_unit({"A": [1]}, directory, sub_id="s-a"))
        return [bin_a, bin_b]

    def test_empty_bins_not_counted(self, directory):
        result = AllocationResult(self._bins(directory), success=True)
        assert result.broker_count == 1
        assert result.broker_ids == ["a"]

    def test_subscription_placement(self, directory):
        result = AllocationResult(self._bins(directory), success=True)
        assert result.subscription_placement() == {"s-a": "a"}

    def test_mean_utilization_over_used_bins(self, directory):
        result = AllocationResult(self._bins(directory), success=True)
        assert 0.0 < result.mean_utilization() <= 1.0

    def test_failure_keeps_failed_unit(self, directory):
        unit = make_unit({"A": [1]}, directory)
        result = AllocationResult([], success=False, failed_unit=unit)
        assert not result.success
        assert result.failed_unit is unit
