"""Tests for the stock-quote and subscription workload generators."""

import pytest

from repro.pubsub.matching import matches, overlaps
from repro.pubsub.message import Publication
from repro.pubsub.predicate import Operator
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import (
    PAPER_PUBLICATION_RATE,
    cluster_heterogeneous,
    cluster_homogeneous,
    scinet,
)
from repro.workloads.stocks import STOCK_SYMBOLS, StockQuoteFeed, stock_advertisement
from repro.workloads.subscriptions import (
    heterogeneous_counts,
    subscription_workload,
    subscriptions_for_symbol,
)


class TestStockFeed:
    def test_schema_matches_paper(self):
        feed = StockQuoteFeed("YHOO", SeededRng(0))
        bar = next(feed)
        assert set(bar) == {
            "class", "symbol", "open", "high", "low", "close", "volume",
            "date", "openClose%Diff", "highLow%Diff",
            "closeEqualsLow", "closeEqualsHigh",
        }
        assert bar["class"] == "STOCK"
        assert bar["symbol"] == "YHOO"

    def test_ohlc_invariants(self):
        feed = StockQuoteFeed("MSFT", SeededRng(1))
        for _ in range(200):
            bar = next(feed)
            assert bar["high"] >= max(bar["open"], bar["close"]) - 1e-9
            assert bar["low"] <= min(bar["open"], bar["close"]) + 1e-9
            assert bar["low"] > 0
            assert bar["volume"] >= 0

    def test_dates_advance_daily(self):
        feed = StockQuoteFeed("IBM", SeededRng(2))
        first = next(feed)["date"]
        second = next(feed)["date"]
        assert first == "2-Jan-96"
        assert second == "3-Jan-96"

    def test_deterministic_per_seed_and_symbol(self):
        a = [next(StockQuoteFeed("YHOO", SeededRng(3))) for _ in range(1)]
        b = [next(StockQuoteFeed("YHOO", SeededRng(3))) for _ in range(1)]
        assert a == b
        c = next(StockQuoteFeed("MSFT", SeededRng(3)))
        assert c != a[0]

    def test_open_continues_from_previous_close(self):
        feed = StockQuoteFeed("ORCL", SeededRng(4))
        first = next(feed)
        second = next(feed)
        assert second["open"] == first["close"]

    def test_publications_satisfy_advertisement(self):
        feed = StockQuoteFeed("YHOO", SeededRng(5))
        advertisement = stock_advertisement("YHOO")
        for _ in range(50):
            bar = next(feed)
            for predicate in advertisement.predicates:
                assert predicate.matches(bar[predicate.attribute])

    def test_symbol_universe_large_enough_for_scinet(self):
        assert len(STOCK_SYMBOLS) >= 100
        assert len(set(STOCK_SYMBOLS)) == len(STOCK_SYMBOLS)


class TestSubscriptionGenerator:
    def _publication(self, bar):
        return Publication(adv_id="adv-YHOO", message_id=1, attributes=bar,
                           publish_time=0.0, size_kb=0.5)

    def test_forty_percent_templates(self):
        subs = subscriptions_for_symbol("YHOO", 100, SeededRng(0))
        templates = [s for s in subs if len(s.predicates) == 2]
        assert len(templates) == 40

    def test_sixty_percent_carry_inequality(self):
        subs = subscriptions_for_symbol("YHOO", 100, SeededRng(0))
        extended = [s for s in subs if len(s.predicates) == 3]
        assert len(extended) == 60
        for subscription in extended:
            extra = subscription.predicates[2]
            assert extra.operator in (
                Operator.LT, Operator.LE, Operator.GT, Operator.GE,
            )

    def test_all_pin_class_and_symbol(self):
        for subscription in subscriptions_for_symbol("YHOO", 20, SeededRng(0)):
            attrs = [p.attribute for p in subscription.predicates[:2]]
            assert attrs == ["class", "symbol"]

    def test_unique_sub_ids(self):
        subs = subscriptions_for_symbol("YHOO", 50, SeededRng(0))
        assert len({s.sub_id for s in subs}) == 50

    def test_subscriptions_overlap_their_advertisement(self):
        advertisement = stock_advertisement("YHOO")
        for subscription in subscriptions_for_symbol(
            "YHOO", 30, SeededRng(1), price_hint=50.0
        ):
            assert overlaps(subscription, advertisement)

    def test_inequalities_actually_filter(self):
        """Thresholds drawn near the price: some quotes match, some don't."""
        rng = SeededRng(2)
        feed = StockQuoteFeed("YHOO", rng, initial_price=50.0)
        subs = subscriptions_for_symbol("YHOO", 100, rng, price_hint=50.0)
        bars = [next(feed) for _ in range(100)]
        fractions = []
        for subscription in subs:
            if len(subscription.predicates) == 2:
                continue
            hits = sum(
                1 for bar in bars if matches(subscription, self._publication(bar))
            )
            fractions.append(hits / len(bars))
        assert any(f < 1.0 for f in fractions)
        assert any(f > 0.0 for f in fractions)

    def test_threshold_buckets_bound_distinct_profiles(self):
        subs = subscriptions_for_symbol(
            "YHOO", 200, SeededRng(3), threshold_buckets=2
        )
        distinct = {
            (s.predicates[2].attribute, s.predicates[2].operator, s.predicates[2].value)
            for s in subs
            if len(s.predicates) == 3
        }
        # 5 attributes × 4 operators × 2 buckets at most.
        assert len(distinct) <= 40

    def test_workload_aligns_symbols_and_counts(self):
        workload = subscription_workload(["YHOO", "MSFT"], [10, 5], SeededRng(0))
        assert len(workload["YHOO"]) == 10
        assert len(workload["MSFT"]) == 5

    def test_workload_misaligned_raises(self):
        with pytest.raises(ValueError):
            subscription_workload(["YHOO"], [1, 2], SeededRng(0))


class TestHeterogeneousCounts:
    def test_paper_totals(self):
        """Ns=200 over 40 publishers: max 200, min 5, total 4,100."""
        counts = heterogeneous_counts(40, 200)
        assert counts[0] == 200
        assert counts[-1] == 5
        assert sum(counts) == 4100

    def test_monotone_decreasing(self):
        counts = heterogeneous_counts(10, 100)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_single_publisher(self):
        assert heterogeneous_counts(1, 50) == [50]

    def test_zero_publishers(self):
        assert heterogeneous_counts(0, 50) == []


class TestScenarios:
    def test_homogeneous_paper_shape(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=50)
        assert scenario.broker_count == 80
        assert scenario.publishers == 40
        assert scenario.total_subscriptions == 2000
        assert scenario.publication_rate == pytest.approx(PAPER_PUBLICATION_RATE)
        tiers = {spec.total_output_bandwidth for spec in scenario.broker_specs()}
        assert len(tiers) == 1

    def test_homogeneous_sweep_values(self):
        for per_publisher, total in ((50, 2000), (100, 4000), (150, 6000), (200, 8000)):
            scenario = cluster_homogeneous(subscriptions_per_publisher=per_publisher)
            assert scenario.total_subscriptions == total

    def test_heterogeneous_tiers(self):
        scenario = cluster_heterogeneous(ns=200)
        assert scenario.broker_count == 80
        bandwidths = [spec.total_output_bandwidth for spec in scenario.broker_specs()]
        assert bandwidths.count(max(bandwidths)) == 15
        assert bandwidths.count(max(bandwidths) / 2) == 25
        assert bandwidths.count(max(bandwidths) / 4) == 40
        assert scenario.total_subscriptions == 4100

    def test_scinet_sizes(self):
        small = scinet(brokers=400)
        large = scinet(brokers=1000)
        assert small.broker_count == 400 and small.publishers == 72
        assert large.broker_count == 1000 and large.publishers == 100
        assert small.subscription_counts[0] == 225

    def test_scale_shrinks_proportionally(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=50, scale=0.25)
        assert scenario.broker_count == 20
        assert scenario.publishers == 10

    def test_broker_ids_unique_and_stable(self):
        scenario = cluster_homogeneous(scale=0.1)
        ids = [spec.broker_id for spec in scenario.broker_specs()]
        assert len(set(ids)) == len(ids)
        assert ids == [spec.broker_id for spec in scenario.broker_specs()]

    def test_profiling_time_covers_bit_vector(self):
        scenario = cluster_homogeneous(scale=0.1)
        assert (
            scenario.derived_profiling_time()
            >= scenario.profile_capacity / scenario.publication_rate
        )

    def test_too_many_publishers_rejected(self):
        with pytest.raises(ValueError):
            scinet(brokers=1000, scale=1.5)
