"""Bit-identity for online reallocation.

The online subsystem joins three existing equivalence contracts:

* registered online approaches (``inc-trade``, ``fij-trade``) produce
  identical results under ``execute_cells`` serial vs ``jobs=4``;
* an attached obs recorder never changes the deterministic outputs;
* the mixed schedule (online steps between full CROC cycles) is a pure
  function of ``(scenario, seed, OnlineSpec)`` — two invocations agree
  bit for bit, with or without observability.
"""

from __future__ import annotations

import pickle

from repro.core.config import RunConfig
from repro.core.online import OnlineSpec
from repro.experiments.parallel import CellSpec, execute_cells
from repro.experiments.runner import ExperimentRunner
from repro.obs import recorder as obs
from repro.workloads.scenarios import cluster_homogeneous

from test_parallel_equivalence import comparable, tiny_homo

ONLINE = OnlineSpec(strategy="inc_trade", steps=2, gap=0.02)


def online_cells(observe: bool = False):
    scenario = tiny_homo()[0]
    return [
        CellSpec(
            scenario=scenario,
            approach=approach,
            seed=11,
            observe=observe,
            config=RunConfig(online=ONLINE),
        )
        for approach in ("inc-trade", "fij-trade")
    ]


def continuous_rows(seed: int = 17, observe: bool = False):
    """Run the mixed schedule end to end; return the report rows."""
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=10,
        scale=0.1,
        broker_bandwidth_kbps=25.0,
        profile_capacity=96,
    )
    runner = ExperimentRunner(
        scenario, seed=seed,
        config=RunConfig(online=OnlineSpec(strategy="fij_trade", steps=2)),
    )
    def go():
        return runner.run_continuous(
            "fij-trade", cycles=2,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=6.0,
        )
    if observe:
        with obs.attached(obs.Recorder()):
            reports = go()
    else:
        reports = go()
    return [
        {key: repr(value) for key, value in report.as_row().items()}
        for report in reports
    ]


class TestOneShotApproaches:
    def test_jobs4_equals_serial(self):
        cells = online_cells()
        serial = execute_cells(cells, jobs=1)
        pooled = execute_cells(cells, jobs=4)
        for spec, one, many in zip(cells, serial, pooled):
            assert comparable(one) == comparable(many), spec.approach

    def test_attached_equals_detached(self):
        for detached, attached in zip(
            execute_cells(online_cells(), jobs=1),
            execute_cells(online_cells(observe=True), jobs=1),
        ):
            assert comparable(detached) == comparable(attached)
            assert detached.obs is None
            assert attached.obs is not None

    def test_cell_config_survives_pickling(self):
        # The spawn pool ships each CellSpec to a fresh interpreter;
        # the online knobs must ride along unchanged.
        cell = online_cells()[0]
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.config.online == ONLINE
        assert clone.config == cell.config


class TestMixedSchedule:
    def test_two_runs_agree_bit_for_bit(self):
        assert continuous_rows(seed=17) == continuous_rows(seed=17)

    def test_obs_attached_equals_detached(self):
        assert continuous_rows(observe=False) == continuous_rows(observe=True)

    def test_reports_carry_online_columns(self):
        rows = continuous_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["online_steps"] == repr(2)
            assert "subscriptions_moved" in row
            assert "migration_gap_s" in row
            assert "drift" in row
