"""End-to-end routing oracle: correctness of content-based delivery.

The filter-based routing substrate must satisfy two properties on any
topology, for any client placement:

* **no false positives** — a subscriber only receives publications that
  match one of its subscriptions (the paper contrasts this guarantee
  with multicast-based systems, §II-A);
* **completeness** — every publication published after the control
  plane quiesced is delivered to every matching subscriber.

These tests build randomized overlays/workloads (seeded) and check both
properties delivery-by-delivery against a direct evaluation of the
subscription language — an oracle that shares no code with the routing
path beyond the predicate matcher itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.matching import matches
from repro.pubsub.message import Publication, Subscription
from repro.pubsub.network import PubSubNetwork
from repro.pubsub.predicate import parse_predicates
from repro.sim.rng import SeededRng
from repro.workloads.stocks import StockQuoteFeed, stock_advertisement

SYMBOLS = ("YHOO", "MSFT", "IBM")


def build_random_network(seed, brokers=5, subscribers=8):
    rng = SeededRng(seed, "oracle")
    network = PubSubNetwork(profile_capacity=64)
    ids = [f"b{i}" for i in range(brokers)]
    for broker_id in ids:
        network.add_broker(BrokerSpec(
            broker_id=broker_id,
            total_output_bandwidth=10000.0,
            delay_function=MatchingDelayFunction(base=1e-5, per_subscription=1e-8),
        ))
    for index in range(1, brokers):
        parent = ids[rng.randint(0, index - 1)]
        network.connect_brokers(parent, ids[index])

    subscriber_clients = []
    for index in range(subscribers):
        symbol = rng.choice(SYMBOLS)
        triples = [("class", "=", "STOCK"), ("symbol", "=", symbol)]
        if rng.random() < 0.5:
            attribute = rng.choice(("low", "close", "volume"))
            op = rng.choice(("<", ">", "<=", ">="))
            bound = (
                rng.uniform(5.0, 150.0)
                if attribute != "volume"
                else rng.uniform(1000.0, 20000.0)
            )
            triples.append((attribute, op, round(bound, 2)))
        sub_id = f"s{index}"
        subscription = Subscription(sub_id, sub_id, parse_predicates(triples))
        client = SubscriberClient(sub_id, [subscription], keep_history=True)
        subscriber_clients.append(client)
        network.attach_subscriber(client, rng.choice(ids))

    publishers = []
    for symbol in SYMBOLS:
        publisher = PublisherClient(
            client_id=f"pub-{symbol}",
            advertisement=stock_advertisement(symbol),
            feed=StockQuoteFeed(symbol, rng),
            rate=20.0,
            size_kb=0.2,
        )
        publishers.append(publisher)
        network.attach_publisher(publisher, rng.choice(ids))
    return network, subscriber_clients, publishers


class RecordingSubscriber(SubscriberClient):
    """Subscriber that keeps the full publication objects."""

    def __init__(self, client_id, subscriptions):
        super().__init__(client_id, subscriptions, keep_history=False)
        self.received = []

    def receive(self, publication, now):
        super().receive(publication, now)
        self.received.append(publication)


def build_oracle_network(seed):
    """Like build_random_network but with recording subscribers."""
    rng = SeededRng(seed, "oracle-rec")
    network = PubSubNetwork(profile_capacity=64)
    ids = [f"b{i}" for i in range(4)]
    for broker_id in ids:
        network.add_broker(BrokerSpec(
            broker_id=broker_id,
            total_output_bandwidth=10000.0,
            delay_function=MatchingDelayFunction(base=1e-5, per_subscription=1e-8),
        ))
    network.connect_brokers("b0", "b1")
    network.connect_brokers("b1", "b2")
    network.connect_brokers("b1", "b3")
    subscribers = []
    for index in range(6):
        symbol = rng.choice(SYMBOLS)
        triples = [("class", "=", "STOCK"), ("symbol", "=", symbol)]
        if index % 2:
            triples.append(("low", rng.choice(("<", ">")),
                            round(rng.uniform(10.0, 120.0), 2)))
        sub_id = f"s{index}"
        subscription = Subscription(sub_id, sub_id, parse_predicates(triples))
        client = RecordingSubscriber(sub_id, [subscription])
        subscribers.append(client)
        network.attach_subscriber(client, rng.choice(ids))
    publishers = []
    for symbol in SYMBOLS:
        publisher = PublisherClient(
            client_id=f"pub-{symbol}",
            advertisement=stock_advertisement(symbol),
            feed=StockQuoteFeed(symbol, rng),
            rate=20.0,
            size_kb=0.2,
        )
        publishers.append(publisher)
        network.attach_publisher(publisher, rng.choice(ids))
    return network, subscribers, publishers


@pytest.mark.parametrize("seed", range(6))
def test_no_false_positive_deliveries(seed):
    network, subscribers, _publishers = build_oracle_network(seed)
    network.run(5.0)
    for subscriber in subscribers:
        for publication in subscriber.received:
            assert any(
                matches(subscription, publication)
                for subscription in subscriber.subscriptions
            ), f"{subscriber.client_id} received a non-matching publication"


@pytest.mark.parametrize("seed", range(6))
def test_delivery_completeness_after_quiescence(seed):
    """Every publication sent after the control plane settled reaches
    every matching subscriber exactly once."""
    network, subscribers, publishers = build_oracle_network(seed)
    network.run(2.0)  # control plane settles; some traffic flows
    cutoff = {publisher.adv_id: publisher._next_message_id
              for publisher in publishers}
    network.run(5.0)
    # Give in-flight messages time to land.
    ceiling = {publisher.adv_id: publisher._next_message_id
               for publisher in publishers}
    network.run(2.0)

    # Reconstruct what was published from any full-symbol subscriber,
    # keyed by (adv, message_id).
    published = {}
    for subscriber in subscribers:
        for publication in subscriber.received:
            published[(publication.adv_id, publication.message_id)] = publication

    for subscriber in subscribers:
        got = {
            (publication.adv_id, publication.message_id)
            for publication in subscriber.received
        }
        # Exactly-once: no duplicates.
        assert len(got) == len(subscriber.received)
        for (adv_id, message_id), publication in published.items():
            if not (cutoff[adv_id] <= message_id < ceiling[adv_id]):
                continue
            should_receive = any(
                matches(subscription, publication)
                for subscription in subscriber.subscriptions
            )
            if should_receive:
                assert (adv_id, message_id) in got, (
                    f"{subscriber.client_id} missed {adv_id}#{message_id}"
                )


@pytest.mark.parametrize("seed", range(4))
def test_oracle_holds_on_random_topologies(seed):
    network, subscribers, _publishers = build_random_network(seed)
    network.run(4.0)
    total = sum(subscriber.delivered for subscriber in subscribers)
    assert total > 0


@pytest.mark.parametrize("seed", range(3))
def test_oracle_holds_after_reconfiguration(seed):
    """No false positives even after CROC rewires everything."""
    from repro.core.cram import CramAllocator
    from repro.core.croc import Croc

    network, subscribers, _publishers = build_oracle_network(seed)
    network.run(4.0)
    croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
    croc.reconfigure(network)
    for subscriber in subscribers:
        subscriber.received.clear()
    network.run(5.0)
    delivered = 0
    for subscriber in subscribers:
        for publication in subscriber.received:
            delivered += 1
            assert any(
                matches(subscription, publication)
                for subscription in subscriber.subscriptions
            )
    assert delivered > 0
