"""Property test: pairwise clustering's partner cache == brute rescan.

``pairwise_cluster`` keeps a cached best-partner table so each merge
costs O(C) closeness evaluations.  The cache maintenance (index
shifting, stale-row recompute, merged-row refresh with the lower-index
tie rule) claims to reproduce the brute-force O(C²) rescan *exactly* —
same pair picked at every step, so the same clusters at every K.  This
file checks that claim against a straightforward rescan oracle on
randomized seeded pools, with the fused kernel both on and off.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import pytest

from repro.core.closeness import METRIC_NAMES, make_metric
from repro.core.pairwise import pairwise_cluster
from repro.core.units import AllocationUnit
from repro.sim.rng import SeededRng

from conftest import make_directory, make_unit


def _brute_force_cluster(
    units: Sequence[AllocationUnit],
    cluster_count: int,
    directory,
    metric_name: str,
) -> List[AllocationUnit]:
    """Reference implementation: full O(C²) rescan before every merge.

    Scans rows in ascending index order with strict ``>`` (ties go to
    the earliest pair), merges into the lower index, pops the higher —
    the exact selection rule ``pairwise_cluster`` documents.
    """
    metric = make_metric(metric_name)
    clusters = list(units)
    while len(clusters) > cluster_count and len(clusters) > 1:
        best_i, best_j, best_value = -1, -1, -1.0
        for i, mine in enumerate(clusters):
            for j, theirs in enumerate(clusters):
                if j == i:
                    continue
                value = metric(mine.profile, theirs.profile)
                if value > best_value:
                    best_i, best_j, best_value = i, j, value
        merged = AllocationUnit.merged(
            [clusters[best_i], clusters[best_j]], directory
        )
        lo, hi = min(best_i, best_j), max(best_i, best_j)
        clusters[lo] = merged
        clusters.pop(hi)
    return clusters


def _signature(clusters: Sequence[AllocationUnit]) -> List[Tuple[str, ...]]:
    """Order-preserving member-id signature of a cluster list."""
    return [tuple(sorted(cluster.member_ids)) for cluster in clusters]


def _random_units(seed: int, count: int, directory) -> List[AllocationUnit]:
    rng = SeededRng(seed, "pairwise-cache")
    units = []
    advs = list(directory)
    for index in range(count):
        bits_by_adv = {}
        # 1–3 publishers per subscription, random bit windows: enough
        # overlap to create ties and zero-closeness pairs.
        for adv in rng.sample(advs, rng.randint(1, 3)):
            width = rng.randint(1, 12)
            start = rng.randint(0, 40)
            bits_by_adv[adv] = range(start, start + width)
        units.append(make_unit(bits_by_adv, directory, sub_id=f"pw{seed}-{index}"))
    return units


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
@pytest.mark.parametrize("seed", [11, 47, 2011])
@pytest.mark.parametrize("use_kernel", [False, True], ids=["naive", "kernel"])
def test_cached_search_matches_brute_force(metric_name, seed, use_kernel):
    directory = make_directory([f"P{i}" for i in range(5)])
    units = _random_units(seed, count=12, directory=directory)
    # Checking every K pins the entire merge sequence: a single
    # divergent pick would leave a different cluster list at some K.
    for cluster_count in range(len(units) - 1, 0, -2):
        expected = _brute_force_cluster(
            units, cluster_count, directory, metric_name
        )
        actual = pairwise_cluster(
            units, cluster_count, directory, metric_name, use_kernel=use_kernel
        )
        assert _signature(actual) == _signature(expected), (
            f"divergence at K={cluster_count}"
        )


def test_cache_saves_evaluations_vs_rescan():
    """The point of the cache: far fewer metric evaluations than O(C³)."""
    directory = make_directory([f"P{i}" for i in range(5)])
    units = _random_units(7, count=14, directory=directory)
    metric = make_metric("iou")
    pairwise_cluster(units, 2, directory, metric, use_kernel=False)
    cached_evals = metric.evaluations
    count = len(units)
    rescan_evals = sum(c * (c - 1) for c in range(count, 2, -1))
    assert cached_evals < rescan_evals / 2
