"""Tests for the FBF and BIN PACKING sorting allocators (paper §IV-A/B)."""

import pytest

from repro.core.binpacking import BinPackingAllocator, decreasing_bandwidth
from repro.core.fbf import FbfAllocator, first_fit
from repro.sim.rng import SeededRng

from conftest import make_directory, make_pool, make_spec, make_unit


@pytest.fixture
def wide_directory():
    return make_directory([f"P{i}" for i in range(8)], rate=10.0, bandwidth=10.0)


def distinct_units(directory, count, bits=32):
    """Units on distinct publishers so input unions never overlap."""
    advs = list(directory)
    return [
        make_unit({advs[i % len(advs)]: range(bits)}, directory)
        for i in range(count)
    ]


class TestFirstFit:
    def test_fills_most_resourceful_first(self, wide_directory):
        pool = [make_spec("small", 10.0), make_spec("big", 100.0)]
        units = distinct_units(wide_directory, 3)  # 5 kB/s each
        result = first_fit(units, pool, wide_directory)
        assert result.success
        assert result.broker_ids == ["big"]

    def test_overflow_to_next_broker(self, wide_directory):
        pool = [make_spec("b1", 11.0), make_spec("b2", 11.0)]
        units = distinct_units(wide_directory, 4)  # 20 kB/s total
        result = first_fit(units, pool, wide_directory)
        assert result.success
        assert result.broker_count == 2

    def test_failure_when_pool_exhausted(self, wide_directory):
        pool = [make_spec("b1", 9.0)]
        units = distinct_units(wide_directory, 3)
        result = first_fit(units, pool, wide_directory)
        assert not result.success
        assert result.failed_unit is not None

    def test_empty_units(self, wide_directory):
        result = first_fit([], make_pool(2), wide_directory)
        assert result.success
        assert result.broker_count == 0


class TestFbf:
    def test_deterministic_given_seed(self, wide_directory):
        pool = make_pool(4, bandwidth=30.0)
        units = distinct_units(wide_directory, 10)
        first = FbfAllocator(rng=SeededRng(7, "t")).allocate(units, pool, wide_directory)
        second = FbfAllocator(rng=SeededRng(7, "t")).allocate(units, pool, wide_directory)
        assert first.assignment().keys() == second.assignment().keys()
        assert first.subscription_placement() == second.subscription_placement()

    def test_different_seeds_can_differ(self, wide_directory):
        pool = make_pool(4, bandwidth=30.0)
        units = distinct_units(wide_directory, 12)
        placements = set()
        for seed in range(6):
            result = FbfAllocator(rng=SeededRng(seed, "t")).allocate(
                units, pool, wide_directory
            )
            placements.add(tuple(sorted(result.subscription_placement().items())))
        assert len(placements) > 1  # random draw order shows through

    def test_all_units_allocated(self, wide_directory):
        pool = make_pool(4, bandwidth=100.0)
        units = distinct_units(wide_directory, 16)
        result = FbfAllocator().allocate(units, pool, wide_directory)
        assert result.success
        assert result.total_subscriptions() == 16

    def test_has_name(self):
        assert FbfAllocator().name == "fbf"


class TestBinPacking:
    def test_orders_by_decreasing_bandwidth(self, wide_directory):
        small = make_unit({"P0": range(8)}, wide_directory)
        large = make_unit({"P1": range(56)}, wide_directory)
        medium = make_unit({"P2": range(32)}, wide_directory)
        ordered = decreasing_bandwidth([small, large, medium])
        assert ordered == [large, medium, small]

    def test_ties_break_deterministically(self, wide_directory):
        a = make_unit({"P0": range(8)}, wide_directory)
        b = make_unit({"P1": range(8)}, wide_directory)
        assert decreasing_bandwidth([b, a]) == decreasing_bandwidth([a, b])

    def test_beats_or_matches_random_order(self, wide_directory):
        """FFD's classic advantage: never worse than random first-fit.

        The paper observes BIN PACKING consistently allocates one less
        broker than FBF.
        """
        pool = make_pool(8, bandwidth=25.0)
        # Mixed sizes: 15, 10, 5 kB/s units.
        units = []
        advs = list(wide_directory)
        for i in range(4):
            units.append(make_unit({advs[i]: range(48)}, wide_directory))  # 7.5
        for i in range(4):
            units.append(make_unit({advs[4 + i % 4]: range(32)}, wide_directory))  # 5
        for i in range(6):
            units.append(make_unit({advs[i % 8]: range(16)}, wide_directory))  # 2.5
        bp = BinPackingAllocator().allocate(units, pool, wide_directory)
        assert bp.success
        worst_fbf = 0
        for seed in range(5):
            fbf = FbfAllocator(rng=SeededRng(seed, "x")).allocate(
                units, pool, wide_directory
            )
            assert fbf.success
            worst_fbf = max(worst_fbf, fbf.broker_count)
        assert bp.broker_count <= worst_fbf

    def test_failure_propagates(self, wide_directory):
        pool = [make_spec("only", 4.0)]
        units = distinct_units(wide_directory, 2)
        result = BinPackingAllocator().allocate(units, pool, wide_directory)
        assert not result.success

    def test_has_name(self):
        assert BinPackingAllocator().name == "binpacking"
