"""Unit and property tests for the bounded bit vector (paper §III-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import DEFAULT_CAPACITY, BitVector


class TestConstruction:
    def test_default_capacity_matches_paper(self):
        assert DEFAULT_CAPACITY == 1280
        assert BitVector().capacity == 1280

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BitVector(capacity=0)
        with pytest.raises(ValueError):
            BitVector(capacity=-5)

    def test_rejects_negative_first_id(self):
        with pytest.raises(ValueError):
            BitVector(capacity=8, first_id=-1)

    def test_from_ids(self):
        vector = BitVector.from_ids([3, 5, 7], capacity=10)
        assert vector.to_list() == [3, 5, 7]
        assert vector.cardinality == 3

    def test_from_ids_drops_ids_older_than_final_window(self):
        vector = BitVector.from_ids([0, 1, 100], capacity=10)
        # Window slid to end at 100; 0 and 1 fell out.
        assert vector.to_list() == [100]

    def test_copy_is_independent(self):
        vector = BitVector.from_ids([1, 2], capacity=8)
        clone = vector.copy()
        clone.set(3)
        assert vector.to_list() == [1, 2]
        assert clone.to_list() == [1, 2, 3]


class TestSetAndShift:
    def test_simple_set_and_test(self):
        vector = BitVector(capacity=8)
        assert vector.set(5)
        assert vector.test(5)
        assert not vector.test(4)

    def test_paper_shift_example(self):
        """Length 10, first bit 100, incoming ID 119 → shift 10, counter 110."""
        vector = BitVector(capacity=10, first_id=100)
        assert vector.set(119)
        assert vector.first_id == 110
        assert vector.test(119)

    def test_shift_preserves_recent_bits(self):
        vector = BitVector(capacity=10, first_id=0)
        for pub_id in (0, 5, 9):
            vector.set(pub_id)
        vector.set(12)  # window becomes [3, 12]
        assert vector.first_id == 3
        assert vector.to_list() == [5, 9, 12]

    def test_shift_beyond_capacity_clears_everything_old(self):
        vector = BitVector.from_ids(range(10), capacity=10)
        vector.set(1000)
        assert vector.to_list() == [1000]

    def test_stale_id_is_ignored(self):
        vector = BitVector(capacity=10, first_id=100)
        assert not vector.set(99)
        assert vector.cardinality == 0

    def test_set_is_idempotent(self):
        vector = BitVector(capacity=10)
        vector.set(4)
        vector.set(4)
        assert vector.cardinality == 1

    def test_synchronize_advances_window(self):
        vector = BitVector.from_ids([0, 1, 2], capacity=4)
        vector.synchronize(6)  # window should end at 6 → first = 3
        assert vector.first_id == 3
        assert vector.cardinality == 0

    def test_synchronize_never_moves_backwards(self):
        vector = BitVector(capacity=4, first_id=10)
        vector.synchronize(5)
        assert vector.first_id == 10

    def test_synchronize_keeps_bits_in_new_window(self):
        vector = BitVector.from_ids([4, 5, 6], capacity=8)
        vector.synchronize(9)  # window [2, 9] — all bits retained
        assert vector.to_list() == [4, 5, 6]


class TestQueries:
    def test_bool_and_density(self):
        vector = BitVector(capacity=10)
        assert not vector
        vector.set(0)
        assert vector
        assert vector.density() == pytest.approx(0.1)

    def test_len_is_capacity(self):
        assert len(BitVector(capacity=33)) == 33

    def test_test_outside_window(self):
        vector = BitVector(capacity=4, first_id=8)
        assert not vector.test(7)
        assert not vector.test(12)


class TestBinaryOperations:
    def test_union_same_window(self):
        a = BitVector.from_ids([1, 2], capacity=8)
        b = BitVector.from_ids([2, 3], capacity=8)
        assert a.union(b).to_list() == [1, 2, 3]

    def test_intersection_and_cardinalities(self):
        a = BitVector.from_ids([1, 2, 4], capacity=8)
        b = BitVector.from_ids([2, 4, 6], capacity=8)
        assert a.intersection(b).to_list() == [2, 4]
        assert a.intersection_cardinality(b) == 2
        assert a.union_cardinality(b) == 4
        assert a.xor_cardinality(b) == 2

    def test_symmetric_difference(self):
        a = BitVector.from_ids([1, 2], capacity=8)
        b = BitVector.from_ids([2, 3], capacity=8)
        assert a.symmetric_difference(b).to_list() == [1, 3]

    def test_misaligned_windows_compare_common_window_only(self):
        a = BitVector.from_ids([0, 5], capacity=6)  # window [0, 5]
        b = BitVector(capacity=6, first_id=4)
        b.set(5)
        # Common window starts at 4: a contributes {5}, b contributes {5}.
        assert a.intersection_cardinality(b) == 1
        assert a.union(b).to_list() == [5]

    def test_covers(self):
        big = BitVector.from_ids([1, 2, 3], capacity=8)
        small = BitVector.from_ids([2, 3], capacity=8)
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)

    def test_empty_covers_and_disjoint(self):
        empty = BitVector(capacity=8)
        other = BitVector.from_ids([1], capacity=8)
        assert other.covers(empty)
        assert empty.is_disjoint(other)

    def test_union_does_not_mutate_operands(self):
        a = BitVector.from_ids([1], capacity=8)
        b = BitVector.from_ids([2], capacity=8)
        a.union(b)
        assert a.to_list() == [1]
        assert b.to_list() == [2]


class TestIdentity:
    def test_equal_patterns_hash_equal(self):
        a = BitVector.from_ids([3, 4], capacity=16)
        b = BitVector.from_ids([3, 4], capacity=16)
        assert a == b
        assert hash(a) == hash(b)

    def test_same_bits_different_window_starts(self):
        a = BitVector.from_ids([10, 11], capacity=16)
        b = BitVector(capacity=16, first_id=8)
        b.set(10)
        b.set(11)
        assert a == b
        assert a.same_bits(b)

    def test_empty_vectors_equal(self):
        assert BitVector(capacity=4) == BitVector(capacity=9, first_id=100)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

ids = st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=40)


@given(ids=ids)
def test_prop_from_ids_recent_ids_always_recorded(ids):
    vector = BitVector.from_ids(ids, capacity=64)
    if ids:
        newest = max(ids)
        assert vector.test(newest)
        # Everything within the final window must be present.
        for pub_id in ids:
            if pub_id > newest - 64:
                assert vector.test(pub_id)


@given(a=ids, b=ids)
def test_prop_cardinality_identities(a, b):
    # Use a capacity wide enough that no sliding occurs, so the bit
    # vectors behave as plain sets.
    va = BitVector.from_ids(a, capacity=256)
    vb = BitVector.from_ids(b, capacity=256)
    sa, sb = set(a), set(b)
    assert va.intersection_cardinality(vb) == len(sa & sb)
    assert va.union_cardinality(vb) == len(sa | sb)
    assert va.xor_cardinality(vb) == len(sa ^ sb)
    assert va.covers(vb) == (sb <= sa)


@given(a=ids, b=ids)
def test_prop_union_commutes(a, b):
    va = BitVector.from_ids(a, capacity=256)
    vb = BitVector.from_ids(b, capacity=256)
    assert va.union(vb) == vb.union(va)


@given(a=ids)
def test_prop_union_idempotent(a):
    va = BitVector.from_ids(a, capacity=256)
    assert va.union(va) == va


@given(seq=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=60))
def test_prop_window_invariants_after_arbitrary_sets(seq):
    vector = BitVector(capacity=32)
    for pub_id in seq:
        vector.set(pub_id)
        assert vector.cardinality <= 32
        for set_id in vector.set_ids():
            assert vector.first_id <= set_id < vector.first_id + 32


@given(
    ids=st.lists(st.integers(min_value=0, max_value=300), min_size=0, max_size=30),
    last=st.integers(min_value=0, max_value=400),
)
def test_prop_synchronize_preserves_in_window_bits(ids, last):
    """Synchronizing to a publisher's last message keeps exactly the
    bits inside the final window and drops the rest."""
    vector = BitVector.from_ids(ids, capacity=32)
    before = set(vector.set_ids())
    vector.synchronize(last)
    after = set(vector.set_ids())
    window_start = max(vector.first_id, 0)
    assert after == {i for i in before if i >= window_start}
    if last >= 31:
        assert vector.first_id >= last - 32 + 1


@given(
    a=st.lists(st.integers(min_value=0, max_value=100), max_size=25),
    b=st.lists(st.integers(min_value=0, max_value=100), max_size=25),
)
def test_prop_union_covers_common_window_operands(a, b):
    """The union covers each operand restricted to the common window."""
    va = BitVector.from_ids(a, capacity=128)
    vb = BitVector.from_ids(b, capacity=128)
    union = va.union(vb)
    start = max(va.first_id, vb.first_id)
    for pub_id in set(a) | set(b):
        if pub_id >= start:
            assert union.test(pub_id)


@given(
    sets=st.lists(
        st.sets(st.integers(min_value=0, max_value=60), max_size=15),
        min_size=1,
        max_size=5,
    )
)
def test_prop_union_is_associative_over_lists(sets):
    vectors = [BitVector.from_ids(s, capacity=128) for s in sets]
    left = vectors[0]
    for vector in vectors[1:]:
        left = left.union(vector)
    right = vectors[-1]
    for vector in reversed(vectors[:-1]):
        right = vector.union(right)
    assert left == right
