"""CLI coverage for the het/scinet scenario families and figure export."""

import csv

import pytest

from repro.experiments.cli import main


class TestScenarioFamilies:
    def test_het_family_runs(self, capsys):
        code = main([
            "run", "--scenario", "het", "--subs", "10", "--scale", "0.1",
            "--approach", "binpacking", "--measurement-time", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "binpacking" in out

    def test_scinet_family_runs(self, capsys):
        code = main([
            "run", "--scenario", "scinet", "--scale", "0.02",
            "--approach", "manual", "--measurement-time", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Both SciNet sizes (400- and 1000-broker, scaled) appear.
        assert out.count("manual") >= 2

    def test_figure_csv_export(self, tmp_path, capsys):
        path = tmp_path / "figure.csv"
        code = main([
            "figure", "--figure", "hops", "--scenario", "homo",
            "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "cram-ios",
            "--measurement-time", "10",
            "--csv", str(path),
        ])
        assert code == 0
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert float(rows[0]["cram-ios"]) < float(rows[0]["manual"])


class TestErrorHandling:
    def test_infeasible_pool_exits_with_code_2(self, capsys):
        """An overloaded scenario fails loudly instead of tracebacking."""
        from repro.experiments.sweeps import homogeneous_scenarios

        scenarios = homogeneous_scenarios(subs_sweep=(10,), scale=0.1)
        scenario = scenarios[0]
        # Rebuild the same scenario with hopeless broker bandwidth and
        # drive cmd_run via main() arguments it can express: use a tiny
        # scale and an approach that needs allocation, with bandwidth
        # forced through a monkeypatched factory.
        from repro.experiments import cli

        def broken_scenarios(args):
            from repro.workloads.scenarios import cluster_homogeneous

            return [cluster_homogeneous(
                subscriptions_per_publisher=10, scale=0.1,
                broker_bandwidth_kbps=0.001, measurement_time=5.0,
            )]

        original = cli._build_scenarios
        cli._build_scenarios = broken_scenarios
        try:
            code = cli.main([
                "run", "--scenario", "homo", "--subs", "10",
                "--approach", "binpacking", "--measurement-time", "5",
            ])
        finally:
            cli._build_scenarios = original
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDeploymentSafety:
    def test_deployment_with_unknown_broker_rejected(self):
        from repro.core.deployment import BrokerTree, Deployment
        from test_broker_routing import make_network

        network = make_network(2)
        tree = BrokerTree("b0")
        tree.add_broker("ghost", "b0")
        with pytest.raises(ValueError, match="not in this network"):
            network.apply_deployment(Deployment(tree=tree))
