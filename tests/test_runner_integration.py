"""End-to-end integration tests: the full experiment pipeline.

These are the paper's evaluation in miniature: a scaled-down
homogeneous cluster, every approach, and the qualitative claims the
paper makes (CRAM allocates fewest brokers, reduces the average broker
message rate, and improves hop counts; baselines keep all brokers).
"""

import pytest

from repro.experiments.runner import APPROACHES, ExperimentRunner
from repro.workloads.scenarios import cluster_heterogeneous, cluster_homogeneous


@pytest.fixture(scope="module")
def tiny_scenario():
    return cluster_homogeneous(
        subscriptions_per_publisher=12,
        scale=0.1,
        profile_capacity=96,
        measurement_time=30.0,
    )


@pytest.fixture(scope="module")
def results(tiny_scenario):
    """Run a subset of approaches once; share across assertions."""
    out = {}
    for approach in ("manual", "automatic", "binpacking", "cram-ios"):
        runner = ExperimentRunner(tiny_scenario, seed=11)
        out[approach] = runner.run(approach)
    return out


class TestPipeline:
    def test_unknown_approach_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            ExperimentRunner(tiny_scenario).run("simulated-annealing")

    def test_approaches_constant_lists_all_thirteen(self):
        # 4 baselines + 6 registry builtins + sharded CRAM + 2 online.
        assert len(APPROACHES) == 13
        assert "cram-ios-sharded" in APPROACHES
        assert "inc-trade" in APPROACHES
        assert "fij-trade" in APPROACHES

    def test_manual_baseline_uses_all_brokers(self, results, tiny_scenario):
        manual = results["manual"]
        assert manual.allocated_brokers == tiny_scenario.broker_count
        assert manual.message_rate_reduction == 0.0
        assert manual.summary.delivery_count > 0

    def test_automatic_keeps_all_brokers(self, results, tiny_scenario):
        assert results["automatic"].allocated_brokers == tiny_scenario.broker_count

    def test_croc_approaches_deallocate_brokers(self, results, tiny_scenario):
        for approach in ("binpacking", "cram-ios"):
            assert results[approach].allocated_brokers < tiny_scenario.broker_count

    def test_croc_approaches_reduce_message_rate(self, results):
        for approach in ("binpacking", "cram-ios"):
            assert results[approach].message_rate_reduction > 0.3

    def test_croc_approaches_improve_hop_count(self, results):
        manual_hops = results["manual"].summary.mean_hop_count
        for approach in ("binpacking", "cram-ios"):
            assert results[approach].summary.mean_hop_count < manual_hops

    def test_deliveries_continue_after_reconfiguration(self, results):
        for approach in ("binpacking", "cram-ios"):
            assert results[approach].summary.delivery_count > 0

    def test_no_subscriber_starves_after_reconfiguration(self, tiny_scenario):
        """Every subscription that was sinking traffic when CROC profiled
        the system keeps receiving after the CRAM reconfiguration.
        (Subscribers whose predicates match nothing are excluded — an
        inequality threshold can legitimately select zero quotes.)"""
        runner = ExperimentRunner(tiny_scenario, seed=13)
        runner.run("cram-ios")
        network = runner.network
        # Template subscriptions (class+symbol only) match every quote
        # of their symbol, so they must keep flowing; inequality
        # subscriptions may legitimately dry up when the random-walk
        # price drifts past their threshold.
        active_subs = {
            subscriber.client_id
            for subscriber in network.subscribers.values()
            if all(len(s.predicates) == 2 for s in subscriber.subscriptions)
        }
        before = {
            client_id: subscriber.delivered
            for client_id, subscriber in network.subscribers.items()
        }
        network.run(30.0)
        starved = [
            client_id
            for client_id in active_subs
            if network.subscribers[client_id].delivered <= before[client_id]
        ]
        assert starved == []

    def test_cram_stats_populated(self, results):
        stats = results["cram-ios"].cram_stats
        assert stats is not None
        assert stats.initial_units == results["cram-ios"].total_subscriptions
        assert stats.initial_gifs <= stats.initial_units

    def test_gif_reduction_in_paper_direction(self, results):
        """40% template subscriptions per symbol guarantee reduction."""
        stats = results["cram-ios"].cram_stats
        assert stats.gif_reduction > 0.2

    def test_rows_are_serializable(self, results):
        for result in results.values():
            row = result.as_row()
            assert isinstance(row["approach"], str)
            assert row["subscriptions"] > 0

    def test_reproducible_given_seed(self, tiny_scenario):
        a = ExperimentRunner(tiny_scenario, seed=5).run("binpacking")
        b = ExperimentRunner(tiny_scenario, seed=5).run("binpacking")
        assert a.allocated_brokers == b.allocated_brokers
        assert a.summary.total_broker_messages == b.summary.total_broker_messages
        assert a.summary.mean_hop_count == b.summary.mean_hop_count


class TestPairwiseApproaches:
    @pytest.fixture(scope="class")
    def pairwise_results(self, tiny_scenario):
        out = {}
        for approach in ("pairwise-k", "pairwise-n"):
            runner = ExperimentRunner(tiny_scenario, seed=11, cram_failure_budget=40)
            out[approach] = runner.run(approach)
        return out

    def test_pairwise_runs_and_delivers(self, pairwise_results):
        for result in pairwise_results.values():
            assert result.summary.delivery_count > 0

    def test_pairwise_does_not_deallocate(self, pairwise_results, tiny_scenario):
        for result in pairwise_results.values():
            assert result.allocated_brokers == tiny_scenario.broker_count


class TestHeterogeneous:
    def test_heterogeneous_pipeline(self):
        scenario = cluster_heterogeneous(
            ns=20, scale=0.1, profile_capacity=96, measurement_time=20.0
        )
        runner = ExperimentRunner(scenario, seed=3)
        result = runner.run("cram-ios")
        assert result.allocated_brokers < scenario.broker_count
        assert result.summary.delivery_count > 0

    def test_heterogeneous_prefers_resourceful_brokers(self):
        scenario = cluster_heterogeneous(
            ns=20, scale=0.1, profile_capacity=96, measurement_time=20.0
        )
        runner = ExperimentRunner(scenario, seed=3)
        runner.run("binpacking")
        specs = {s.broker_id: s for s in runner.network.broker_pool()}
        active = runner.network.active_brokers
        top_bandwidth = max(s.total_output_bandwidth for s in specs.values())
        assert any(
            specs[b].total_output_bandwidth == top_bandwidth for b in active
        )
