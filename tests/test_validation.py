"""Tests for post-hoc deployment validation."""

import pytest

from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.core.deployment import BrokerTree, Deployment
from repro.core.validation import validate_deployment
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous

from conftest import make_directory, make_record, make_spec


@pytest.fixture
def directory():
    return make_directory(["A", "B"])


def two_broker_tree():
    tree = BrokerTree("root")
    tree.add_broker("leaf", "root")
    return tree


class TestPlacementChecks:
    def test_valid_deployment_passes(self, directory):
        record = make_record({"A": range(32)}, sub_id="s1")
        deployment = Deployment(
            tree=two_broker_tree(),
            subscription_placement={"s1": "leaf"},
            publisher_placement={"A": "root"},
        )
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf")}
        report = validate_deployment(deployment, [record], directory, specs)
        assert report.ok
        assert report.loads["leaf"].subscription_count == 1

    def test_unplaced_subscription_flagged(self, directory):
        record = make_record({"A": [1]}, sub_id="lost")
        deployment = Deployment(tree=two_broker_tree())
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf")}
        report = validate_deployment(deployment, [record], directory, specs)
        assert not report.ok
        assert report.violations_of("placement")

    def test_placement_outside_tree_flagged(self, directory):
        record = make_record({"A": [1]}, sub_id="s1")
        deployment = Deployment(
            tree=two_broker_tree(), subscription_placement={"s1": "ghost"}
        )
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf")}
        report = validate_deployment(deployment, [record], directory, specs)
        assert any("outside the tree" in v.detail for v in report.violations)

    def test_unknown_subscription_in_placement_flagged(self, directory):
        deployment = Deployment(
            tree=two_broker_tree(), subscription_placement={"mystery": "leaf"}
        )
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf")}
        report = validate_deployment(deployment, [], directory, specs)
        assert any("unknown subscription" in v.detail for v in report.violations)

    def test_missing_spec_flagged(self, directory):
        deployment = Deployment(tree=two_broker_tree())
        report = validate_deployment(deployment, [], directory,
                                     {"root": make_spec("root")})
        assert any(v.broker_id == "leaf" for v in report.violations_of("placement"))


class TestCapacityChecks:
    def test_output_overload_detected(self, directory):
        # Full-rate subscription: 10 kB/s against a 1 kB/s broker.
        record = make_record({"A": range(64)}, sub_id="s1")
        deployment = Deployment(
            tree=two_broker_tree(), subscription_placement={"s1": "leaf"}
        )
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf", bandwidth=1.0)}
        report = validate_deployment(deployment, [record], directory, specs)
        overloads = report.violations_of("output-bandwidth")
        assert overloads and overloads[0].broker_id == "leaf"
        assert overloads[0].measured > overloads[0].limit

    def test_stream_bandwidth_charged_to_parent(self, directory):
        record = make_record({"A": range(64)}, sub_id="s1")  # 10 kB/s stream
        deployment = Deployment(
            tree=two_broker_tree(), subscription_placement={"s1": "leaf"}
        )
        specs = {"root": make_spec("root", bandwidth=5.0),
                 "leaf": make_spec("leaf", bandwidth=100.0)}
        report = validate_deployment(deployment, [record], directory, specs)
        assert report.loads["root"].stream_bandwidth == pytest.approx(10.0)
        assert any(v.broker_id == "root"
                   for v in report.violations_of("output-bandwidth"))

    def test_matching_rate_overload_detected(self, directory):
        record = make_record({"A": range(64)}, sub_id="s1")  # 10 msg/s input
        slow = BrokerSpec(
            "leaf", total_output_bandwidth=1000.0,
            delay_function=MatchingDelayFunction(base=0.5, per_subscription=0.0),
        )  # max 2 msg/s
        deployment = Deployment(
            tree=two_broker_tree(), subscription_placement={"s1": "leaf"}
        )
        specs = {"root": make_spec("root"), "leaf": slow}
        report = validate_deployment(deployment, [record], directory, specs)
        assert report.violations_of("matching-rate")

    def test_local_publisher_adds_input(self, directory):
        deployment = Deployment(
            tree=two_broker_tree(), publisher_placement={"A": "root"}
        )
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf")}
        report = validate_deployment(deployment, [], directory, specs)
        assert report.loads["root"].input_rate == pytest.approx(10.0)

    def test_tolerance_allows_small_overshoot(self, directory):
        record = make_record({"A": range(64)}, sub_id="s1")  # 10 kB/s
        deployment = Deployment(
            tree=two_broker_tree(), subscription_placement={"s1": "leaf"}
        )
        specs = {"root": make_spec("root"), "leaf": make_spec("leaf", bandwidth=9.8)}
        tight = validate_deployment(deployment, [record], directory, specs,
                                    tolerance=1.0)
        loose = validate_deployment(deployment, [record], directory, specs,
                                    tolerance=1.1)
        assert not tight.ok
        assert loose.ok


class TestAgainstRealAllocations:
    def test_croc_plans_validate_cleanly(self):
        """Every CROC-produced deployment must pass its own constraints."""
        from repro.core.binpacking import BinPackingAllocator
        from repro.core.croc import Croc

        scenario = cluster_homogeneous(subscriptions_per_publisher=20, scale=0.2)
        gathered = offline_gather(scenario, seed=7)
        croc = Croc(allocator_factory=BinPackingAllocator)
        report = croc.plan(gathered)
        specs = {spec.broker_id: spec for spec in gathered.broker_pool}
        validation = validate_deployment(
            report.deployment, gathered.records, gathered.directory, specs
        )
        assert validation.violations_of("placement") == []
        assert validation.violations_of("output-bandwidth") == []

    def test_cram_plans_validate_cleanly(self):
        from repro.core.cram import CramAllocator
        from repro.core.croc import Croc

        scenario = cluster_homogeneous(subscriptions_per_publisher=20, scale=0.2)
        gathered = offline_gather(scenario, seed=7)
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        report = croc.plan(gathered)
        specs = {spec.broker_id: spec for spec in gathered.broker_pool}
        validation = validate_deployment(
            report.deployment, gathered.records, gathered.directory, specs
        )
        assert validation.violations_of("placement") == []
        assert validation.violations_of("output-bandwidth") == []
