"""Edge-case tests across modules (boundary and concurrency paths)."""

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.capacity import BrokerBin, BrokerSpec, MatchingDelayFunction
from repro.core.croc import Croc
from repro.core.deployment import BrokerTree
from repro.core.grape import GrapeRelocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.profiles import PublisherProfile
from repro.core.units import AllocationUnit

from conftest import make_directory, make_pool, make_spec, make_unit
from test_broker_routing import make_network, make_publisher, make_subscriber


class TestCapacityBoundaries:
    def test_unit_exactly_filling_bandwidth_accepted(self, directory):
        spec = make_spec("b", bandwidth=5.0)
        bin_ = BrokerBin(spec, directory)
        unit = make_unit({"A": range(32)}, directory)  # exactly 5.0 kB/s
        assert unit.delivery_bandwidth == pytest.approx(5.0)
        assert bin_.can_accept(unit)

    def test_unit_epsilon_over_bandwidth_rejected(self, directory):
        spec = make_spec("b", bandwidth=4.999)
        bin_ = BrokerBin(spec, directory)
        unit = make_unit({"A": range(32)}, directory)
        assert not bin_.can_accept(unit)

    def test_zero_bandwidth_broker_accepts_only_empty_units(self, directory):
        spec = make_spec("b", bandwidth=0.0)
        bin_ = BrokerBin(spec, directory)
        assert bin_.can_accept(make_unit({}, directory))
        assert not bin_.can_accept(make_unit({"A": [1]}, directory))

    def test_input_rate_with_unknown_publisher(self, directory):
        """Profiles may reference publishers that left the system."""
        spec = make_spec("b")
        bin_ = BrokerBin(spec, directory)
        unit = make_unit({"GHOST": range(10)}, directory)
        bin_.add(unit)
        assert bin_.input_rate == 0.0  # no rate without a directory entry


class TestConcurrentGathers:
    def test_two_birs_aggregate_independently(self):
        network = make_network(4)
        network.attach_subscriber(make_subscriber("s1"), "b3")
        network.attach_publisher(make_publisher(rate=10.0), "b0")
        network.run(2.0)
        croc_a = Croc(allocator_factory=BinPackingAllocator)
        croc_b = Croc(allocator_factory=BinPackingAllocator)
        # Interleave: fire both BIRs before draining either.
        first = croc_a.gather(network, via_broker="b0")
        second = croc_b.gather(network, via_broker="b3")
        assert len(first.broker_pool) == 4
        assert len(second.broker_pool) == 4
        assert first.subscription_count == second.subscription_count == 1


class TestOverlayBuilderRename:
    def test_best_fit_rename_rewires_edges(self, directory=None):
        directory = make_directory(["P0", "P1"])
        # Two leaves on big brokers, a small broker available as parent
        # swap target once best-fit runs.
        big = [make_spec(f"BIG{i}", bandwidth=100.0) for i in range(3)]
        small = [make_spec("SML0", bandwidth=11.0)]
        pool = big + small
        from repro.core.capacity import AllocationResult

        bins = []
        for spec, adv in zip(big[:2], ("P0", "P1")):
            bin_ = BrokerBin(spec, directory)
            bin_.add(make_unit({adv: range(32)}, directory))
            bins.append(bin_)
        allocation = AllocationResult(bins, success=True)
        builder = OverlayBuilder(
            BinPackingAllocator, takeover_children=False,
        )
        tree = builder.build(allocation, pool, directory)
        tree.validate()
        if builder.last_stats.best_fit_replacements:
            # The renamed parent's edges must still reach both leaves.
            assert set(tree.children(tree.root)) == {"BIG0", "BIG1"}
            assert tree.root == "SML0"


class TestGrapeEdges:
    def test_zero_rate_publisher(self):
        directory = {"A": PublisherProfile("A", publication_rate=0.0,
                                           bandwidth=0.0, last_message_id=10)}
        tree = BrokerTree("root")
        tree.add_broker("leaf", "root")
        decision = GrapeRelocator("load").place_one(tree, "A", directory["A"])
        assert decision.broker_id in ("root", "leaf")

    def test_publisher_unknown_to_tree_goes_to_root(self):
        directory = make_directory(["A"])
        tree = BrokerTree("solo")
        decision = GrapeRelocator("delay").place_one(tree, "A", directory["A"])
        assert decision.broker_id == "solo"


class TestScenarioOverrides:
    def test_profile_capacity_override(self):
        from repro.workloads.scenarios import cluster_homogeneous

        scenario = cluster_homogeneous(
            subscriptions_per_publisher=10, scale=0.1, profile_capacity=32
        )
        assert scenario.profile_capacity == 32
        assert scenario.derived_profiling_time() < 60.0

    def test_explicit_profiling_time_wins(self):
        from repro.workloads.scenarios import cluster_homogeneous

        scenario = cluster_homogeneous(
            subscriptions_per_publisher=10, scale=0.1, profiling_time=7.0
        )
        assert scenario.derived_profiling_time() == 7.0


class TestMetricsAccounting:
    def test_forwarding_bytes_counted_at_sender(self):
        network = make_network(2)
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=10.0), "b0")
        network.run(2.0)
        b0 = network.metrics.counters("b0")
        b1 = network.metrics.counters("b1")
        assert b0.publications_out > 0  # forwards toward b1
        assert b0.deliveries == 0       # no local subscriber
        assert b1.deliveries > 0

    def test_publication_counters_balance(self):
        """Everything b0 forwards arrives at b1."""
        network = make_network(2)
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=10.0), "b0")
        network.run(2.0)
        sent = network.metrics.counters("b0").publications_out
        received = network.metrics.counters("b1").publications_in
        assert abs(sent - received) <= 1  # at most one message in flight
