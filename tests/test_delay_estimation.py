"""Tests for matching-delay measurement (the BIA's delay function)."""

import pytest

from repro.core.capacity import MatchingDelayFunction
from repro.pubsub.delay_estimation import (
    DelayModelEstimator,
    MIN_DISTINCT_SIZES,
    MIN_SAMPLES,
)

from test_broker_routing import make_network, make_publisher, make_subscriber


class TestEstimator:
    def test_no_fit_before_min_samples(self):
        estimator = DelayModelEstimator()
        for index in range(MIN_SAMPLES - 1):
            estimator.record(index, 0.001 + index * 1e-5)
        assert estimator.fit() is None

    def test_no_fit_from_single_table_size(self):
        estimator = DelayModelEstimator()
        for _ in range(MIN_SAMPLES * 2):
            estimator.record(10, 0.002)
        assert estimator.fit() is None

    def test_recovers_exact_linear_model(self):
        truth = MatchingDelayFunction(base=0.0005, per_subscription=2e-6)
        estimator = DelayModelEstimator()
        for size in range(0, 200, 5):
            estimator.record(size, truth.delay(size))
        fitted = estimator.fit()
        assert fitted is not None
        assert fitted.base == pytest.approx(truth.base, rel=1e-6)
        assert fitted.per_subscription == pytest.approx(
            truth.per_subscription, rel=1e-6
        )

    def test_negative_coefficients_clamped(self):
        estimator = DelayModelEstimator()
        # Decreasing samples would fit a negative slope.
        for size in range(0, 100, 2):
            estimator.record(size, max(0.0, 0.01 - size * 1e-4))
        fitted = estimator.fit()
        assert fitted is not None
        assert fitted.per_subscription >= 0.0
        assert fitted.base >= 0.0

    def test_sliding_window_forgets_old_regime(self):
        estimator = DelayModelEstimator(window=64)
        for size in range(0, 64):
            estimator.record(size, 1.0)  # ancient, slow regime
        for size in range(0, 64):
            estimator.record(size, 0.001 + size * 1e-6)  # current regime
        fitted = estimator.fit()
        assert fitted is not None
        assert fitted.base < 0.01

    def test_rejects_negative_service_time(self):
        with pytest.raises(ValueError):
            DelayModelEstimator().record(1, -0.1)

    def test_reset(self):
        estimator = DelayModelEstimator()
        estimator.record(1, 0.001)
        estimator.reset()
        assert estimator.sample_count == 0


class TestBrokerIntegration:
    def test_bia_carries_measured_delay(self):
        from repro.core.binpacking import BinPackingAllocator
        from repro.core.croc import Croc

        network = make_network(2)
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=40.0), "b0")
        network.run(3.0)
        croc = Croc(allocator_factory=BinPackingAllocator)
        gathered = croc.gather(network)
        report = gathered.reports["b0"]
        assert report.measured_delay is not None
        spec_fn = network.brokers["b0"].spec.delay_function
        # The measurement reproduces the broker's real (configured)
        # service law within floating-point noise.
        for size in (0, 10, 100):
            assert report.measured_delay.delay(size) == pytest.approx(
                spec_fn.delay(size), rel=0.05, abs=1e-5
            )

    def test_reset_clears_samples(self):
        network = make_network(2)
        network.attach_publisher(make_publisher(rate=40.0), "b0")
        network.run(2.0)
        broker = network.brokers["b0"]
        assert broker.delay_estimator.sample_count > 0
        broker.reset()
        assert broker.delay_estimator.sample_count == 0
