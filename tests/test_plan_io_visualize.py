"""Tests for plan serialization and ASCII visualization."""

import io
import json

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.croc import Croc
from repro.core.deployment import BrokerTree, Deployment
from repro.core.plan_io import (
    PlanFormatError,
    SCHEMA_VERSION,
    deployment_from_dict,
    deployment_to_dict,
    load_deployment,
    save_deployment,
)
from repro.experiments.visualize import (
    render_broker_loads,
    render_deployment,
    render_tree,
)
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous

from conftest import make_directory, make_unit


def sample_deployment():
    tree = BrokerTree("root")
    tree.add_broker("left", "root")
    tree.add_broker("right", "root")
    tree.add_broker("leaf", "left")
    return Deployment(
        tree=tree,
        subscription_placement={"s1": "leaf", "s2": "right"},
        publisher_placement={"advA": "root"},
        approach="test",
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = sample_deployment()
        document = deployment_to_dict(original)
        restored = deployment_from_dict(document)
        assert restored.tree.root == original.tree.root
        assert sorted(restored.tree.edges()) == sorted(original.tree.edges())
        assert restored.subscription_placement == original.subscription_placement
        assert restored.publisher_placement == original.publisher_placement
        assert restored.approach == "test"

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "plan.json")
        save_deployment(sample_deployment(), path)
        restored = load_deployment(path)
        assert restored.tree.root == "root"
        with open(path) as handle:
            document = json.load(handle)
        assert document["schema_version"] == SCHEMA_VERSION

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        save_deployment(sample_deployment(), buffer)
        buffer.seek(0)
        restored = load_deployment(buffer)
        assert len(restored.tree) == 4

    def test_croc_plan_round_trips(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=10, scale=0.1)
        gathered = offline_gather(scenario, seed=3)
        report = Croc(allocator_factory=BinPackingAllocator).plan(gathered)
        document = deployment_to_dict(report.deployment)
        restored = deployment_from_dict(document)
        assert restored.subscription_placement == (
            report.deployment.subscription_placement
        )

    def test_edges_in_any_order(self):
        document = deployment_to_dict(sample_deployment())
        document["edges"] = list(reversed(document["edges"]))
        restored = deployment_from_dict(document)
        assert len(restored.tree) == 4


class TestFormatErrors:
    def test_missing_version(self):
        with pytest.raises(PlanFormatError, match="schema_version"):
            deployment_from_dict({"root": "r"})

    def test_future_version_rejected(self):
        document = deployment_to_dict(sample_deployment())
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(PlanFormatError, match="unsupported"):
            deployment_from_dict(document)

    def test_disconnected_edges_rejected(self):
        document = deployment_to_dict(sample_deployment())
        document["edges"].append(["ghost-parent", "ghost-child"])
        with pytest.raises(PlanFormatError, match="disconnected"):
            deployment_from_dict(document)

    def test_malformed_document(self):
        with pytest.raises(PlanFormatError):
            deployment_from_dict({"schema_version": 1, "root": "r"})

    def test_placement_outside_tree_fails_validation(self):
        document = deployment_to_dict(sample_deployment())
        document["subscription_placement"]["s9"] = "nowhere"
        with pytest.raises(AssertionError):
            deployment_from_dict(document)


class TestVisualize:
    def test_render_tree_shape(self):
        deployment = sample_deployment()
        text = render_tree(deployment.tree)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert any("├── " in line for line in lines)
        assert any("└── " in line for line in lines)
        assert any("leaf" in line for line in lines)

    def test_render_tree_annotations(self):
        directory = make_directory(["A"])
        tree = BrokerTree("root")
        unit = make_unit({"A": range(32)}, directory, sub_id="s1")
        tree.set_units("root", [unit])
        text = render_tree(tree, directory, {"A": "root"})
        assert "1 subs" in text
        assert "kB/s" in text
        assert "<- A" in text

    def test_render_deployment_header(self):
        text = render_deployment(sample_deployment())
        assert "4 brokers" in text
        assert "2 subscriptions" in text

    def test_render_broker_loads(self):
        text = render_broker_loads({"b0": 100.0, "b1": 25.0})
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")
        assert "100.0 msg/s" in lines[0]

    def test_render_broker_loads_empty(self):
        assert render_broker_loads({}) == "(no brokers)"

    def test_render_single_node_tree(self):
        tree = BrokerTree("only")
        assert render_tree(tree) == "only"
