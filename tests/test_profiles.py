"""Tests for subscription/publisher profiles and load estimation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.profiles import (
    PublisherProfile,
    SubscriptionProfile,
    merge_profiles,
)

from conftest import make_directory, make_profile


class TestPublisherProfile:
    def test_message_size(self):
        publisher = PublisherProfile("A", publication_rate=50.0, bandwidth=100.0)
        assert publisher.message_size == pytest.approx(2.0)

    def test_message_size_zero_rate(self):
        publisher = PublisherProfile("A", publication_rate=0.0, bandwidth=0.0)
        assert publisher.message_size == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PublisherProfile("A", publication_rate=-1.0, bandwidth=0.0)

    def test_record_publication_monotonic(self):
        publisher = PublisherProfile("A", publication_rate=1.0, bandwidth=1.0)
        publisher.record_publication(10)
        publisher.record_publication(5)
        assert publisher.last_message_id == 10


class TestRecordingAndEstimation:
    def test_paper_estimation_example(self):
        """10/100 bits against a 50 msg/s, 50 kB/s publisher → 5 and 5."""
        publisher = PublisherProfile("A", publication_rate=50.0, bandwidth=50.0,
                                     last_message_id=99)
        profile = SubscriptionProfile(capacity=100)
        for pub_id in range(10):
            profile.record("A", pub_id)
        directory = {"A": publisher}
        assert profile.estimated_rate(directory) == pytest.approx(5.0)
        assert profile.estimated_bandwidth(directory) == pytest.approx(5.0)

    def test_estimation_sums_over_publishers(self):
        directory = make_directory(["A", "B"], rate=10.0, bandwidth=20.0,
                                   last_message_id=63)
        profile = make_profile({"A": range(32), "B": range(16)}, capacity=64)
        # A: 32/64 * 10 = 5 msg/s;  B: 16/64 * 10 = 2.5 msg/s
        assert profile.estimated_rate(directory) == pytest.approx(7.5)
        assert profile.estimated_bandwidth(directory) == pytest.approx(15.0)

    def test_estimation_with_short_observation_window(self):
        """Publisher has only published 10 messages into a 100-bit vector."""
        publisher = PublisherProfile("A", publication_rate=10.0, bandwidth=10.0,
                                     last_message_id=9)
        profile = SubscriptionProfile(capacity=100)
        for pub_id in range(0, 10, 2):  # 5 of the 10 published
            profile.record("A", pub_id)
        assert profile.estimated_rate({"A": publisher}) == pytest.approx(5.0)

    def test_unknown_publisher_contributes_nothing(self):
        profile = make_profile({"X": [1, 2, 3]})
        assert profile.estimated_rate({}) == 0.0

    def test_fraction_clamped_to_one(self):
        publisher = PublisherProfile("A", publication_rate=10.0, bandwidth=10.0,
                                     last_message_id=1)
        profile = make_profile({"A": [0, 1, 2, 3]}, capacity=8)
        assert profile.fraction("A", publisher) == 1.0

    def test_record_returns_false_for_stale(self):
        profile = SubscriptionProfile(capacity=4)
        profile.record("A", 100)
        assert not profile.record("A", 3)

    def test_len_and_cardinality(self):
        profile = make_profile({"A": [1, 2], "B": [7]})
        assert len(profile) == 2
        assert profile.cardinality == 3

    def test_bool_empty_vector_profile(self):
        profile = SubscriptionProfile(capacity=8)
        assert not profile
        profile.record("A", 0)
        assert profile


class TestSynchronize:
    def test_synchronize_aligns_to_publisher(self):
        directory = make_directory(["A"], last_message_id=100)
        profile = make_profile({"A": [1, 2, 3]}, capacity=16)
        profile.synchronize(directory)
        vector = profile.vector("A")
        assert vector.first_id == 100 - 16 + 1

    def test_synchronize_ignores_unknown_publishers(self):
        profile = make_profile({"Z": [1]}, capacity=16)
        profile.synchronize({})  # must not raise
        assert profile.vector("Z").first_id == 0


class TestSetAlgebra:
    def test_union_merges_across_publishers(self):
        first = make_profile({"A": [1, 2]})
        second = make_profile({"A": [2, 3], "B": [9]})
        merged = first.union(second)
        assert merged.vector("A").to_list() == [1, 2, 3]
        assert merged.vector("B").to_list() == [9]

    def test_union_leaves_operands_untouched(self):
        first = make_profile({"A": [1]})
        second = make_profile({"B": [2]})
        first.union(second)
        assert first.vector("B") is None
        assert second.vector("A") is None

    def test_cardinalities_across_publishers(self):
        first = make_profile({"A": [1, 2], "B": [5]})
        second = make_profile({"A": [2, 3], "C": [8]})
        assert first.intersection_cardinality(second) == 1
        assert first.union_cardinality(second) == 5
        assert first.xor_cardinality(second) == 4

    def test_covers_multi_publisher(self):
        big = make_profile({"A": [1, 2, 3], "B": [4]})
        small = make_profile({"A": [2], "B": [4]})
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_requires_all_publishers(self):
        big = make_profile({"A": [1, 2, 3]})
        small = make_profile({"A": [1], "B": [0]})
        assert not big.covers(small)

    def test_disjoint(self):
        first = make_profile({"A": [1]})
        second = make_profile({"A": [2], "B": [1]})
        assert first.is_disjoint(second)

    def test_merge_profiles_helper(self):
        merged = merge_profiles(
            [make_profile({"A": [1]}), make_profile({"A": [2]}), make_profile({"B": [3]})]
        )
        assert merged.cardinality == 3

    def test_merge_profiles_empty_iterable(self):
        assert merge_profiles([]).cardinality == 0


class TestIdentity:
    def test_signature_equality(self):
        first = make_profile({"A": [1, 2], "B": [3]})
        second = make_profile({"B": [3], "A": [1, 2]})
        assert first == second
        assert hash(first) == hash(second)

    def test_signature_ignores_empty_vectors(self):
        first = make_profile({"A": [1]})
        second = make_profile({"A": [1]})
        second._vectors["B"] = second._vectors["A"].__class__(capacity=8)
        assert first == second

    def test_different_bits_differ(self):
        assert make_profile({"A": [1]}) != make_profile({"A": [2]})

    def test_copy_independent(self):
        original = make_profile({"A": [1]})
        clone = original.copy()
        clone.record("A", 2)
        assert original.cardinality == 1


@given(
    bits=st.lists(
        st.tuples(st.sampled_from(["A", "B", "C"]), st.integers(0, 63)),
        max_size=50,
    )
)
def test_prop_union_with_self_is_identity(bits):
    profile = SubscriptionProfile(capacity=64)
    for adv, pub_id in bits:
        profile.record(adv, pub_id)
    assert profile.union(profile) == profile
    assert profile.intersection_cardinality(profile) == profile.cardinality
    assert profile.xor_cardinality(profile) == 0
