"""Tests for publication tracing."""

import pytest

from repro.pubsub.tracing import DELIVER, FORWARD, MessageTracer, PUBLISH, RECEIVE

from test_broker_routing import make_network, make_publisher, make_subscriber


def traced_network(adv_ids=None, brokers=3):
    network = make_network(brokers)
    tracer = MessageTracer(adv_ids=adv_ids)
    network.tracer = tracer
    return network, tracer


class TestRecording:
    def test_full_journey_recorded(self):
        network, tracer = traced_network()
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(rate=5.0), "b0")
        network.run(1.0)
        route = tracer.route("adv-YHOO", 1)
        kinds = [event.kind for event in route]
        assert kinds[0] == PUBLISH
        assert kinds.count(RECEIVE) == 3  # b0, b1, b2
        assert kinds.count(FORWARD) == 2  # b0->b1, b1->b2
        assert kinds[-1] == DELIVER

    def test_brokers_visited_in_path_order(self):
        network, tracer = traced_network()
        network.attach_subscriber(make_subscriber("s1"), "b2")
        network.attach_publisher(make_publisher(rate=5.0), "b0")
        network.run(1.0)
        assert tracer.brokers_visited("adv-YHOO", 1) == ["b0", "b1", "b2"]

    def test_delivery_count_per_message(self):
        network, tracer = traced_network()
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_subscriber(make_subscriber("s2"), "b1")
        network.attach_publisher(make_publisher(rate=5.0), "b0")
        network.run(1.0)
        assert tracer.delivery_count("adv-YHOO", 1) == 2

    def test_scope_filters_other_publishers(self):
        network, tracer = traced_network(adv_ids={"adv-YHOO"})
        network.attach_subscriber(make_subscriber("sy", "YHOO"), "b1")
        network.attach_subscriber(make_subscriber("sm", "MSFT"), "b1")
        network.attach_publisher(make_publisher("YHOO", rate=5.0), "b0")
        network.attach_publisher(make_publisher("MSFT", rate=5.0), "b0")
        network.run(1.0)
        assert all(event.adv_id == "adv-YHOO" for event in tracer.events)
        assert tracer.events

    def test_message_id_filter(self):
        network, tracer = traced_network()
        tracer.message_ids = {2}
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=10.0), "b0")
        network.run(1.0)
        assert {event.message_id for event in tracer.events} == {2}

    def test_limit_bounds_memory(self):
        network, tracer = traced_network()
        tracer.limit = 5
        network.attach_subscriber(make_subscriber("s1"), "b2")
        network.attach_publisher(make_publisher(rate=50.0), "b0")
        network.run(2.0)
        assert len(tracer.events) == 5
        assert tracer.dropped > 0

    def test_no_tracer_costs_nothing(self):
        network = make_network(2)
        assert network.tracer is None
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=5.0), "b0")
        network.run(1.0)  # simply must not crash


class TestRendering:
    def test_render_route(self):
        network, tracer = traced_network()
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=5.0), "b0")
        network.run(1.0)
        text = tracer.render_route("adv-YHOO", 1)
        assert "publish" in text
        assert "deliver" in text
        assert "adv-YHOO#1" in text

    def test_render_unknown_message(self):
        tracer = MessageTracer()
        assert "no trace" in tracer.render_route("adv-X", 99)

    def test_clear(self):
        network, tracer = traced_network()
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=5.0), "b0")
        network.run(1.0)
        tracer.clear()
        assert tracer.events == []
        assert tracer.dropped == 0
