"""Heap/calendar engine and batched-delivery bit-identity.

The determinism contract of the event-core speed push: selecting the
:class:`~repro.sim.engine.CalendarSimulator` (``REPRO_ENGINE=calendar``
or ``RunConfig(engine="calendar")``) and/or the batched fault-free
delivery path (``REPRO_DELIVERY_BATCH``) must leave every
deterministic output — execution traces, allocations, metric rows,
evaluation counters — bit-identical to the binary-heap reference with
per-destination delivery.  Pinned at three levels:

* **trace level** — a Hypothesis property interprets random
  schedule/cancel/run programs (with in-callback scheduling and
  cancellation) against both engines and demands identical traces and
  counters;
* **engine edge cases** — cancellation inside a same-timestamp batch,
  ties spawned mid-drain, bucket resizes during bounded runs, sweeps
  over empty calendar regions, and the compaction/late-``cancel()``
  accounting both queue rebuilds share;
* **experiment level** — full cells (fault plan, attached recorder,
  ``jobs=4`` pool) run under every engine/batching combination and
  compare ``comparable()`` views.

Queue *diagnostics* (``pending``, ``cancelled_pending`` mid-run) are
deliberately outside the cross-engine contract: the calendar purges
cancelled corpses on every geometry rebuild, the heap only on
compaction, so a timeline sample may legitimately disagree about how
many corpses are still queued.  Everything the paper's tables are
built from must match exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DELIVERY_BATCH_ENV_VAR, ENGINE_ENV_VAR, RunConfig
from repro.experiments.parallel import CellSpec, execute_cells, run_spec
from repro.experiments.sweeps import sweep_specs
from repro.pubsub.network import PubSubNetwork
from repro.sim.engine import (
    CalendarSimulator,
    SimulationError,
    Simulator,
    make_simulator,
)
from repro.sim.faults import FaultPlan

from test_parallel_equivalence import comparable, tiny_homo

ENGINE_CLASSES = (Simulator, CalendarSimulator)


@pytest.fixture(params=ENGINE_CLASSES, ids=["heap", "calendar"])
def sim_cls(request):
    return request.param


# ----------------------------------------------------------------------
# Trace-level property: random programs execute identically
# ----------------------------------------------------------------------


def run_program(sim_cls, program):
    """Interpret a schedule/cancel/run program, returning its trace.

    Callback behavior is a pure function of the event's tag, so both
    engines see the same in-callback scheduling (including zero-delay
    ties landing inside the batch being drained) and the same
    in-callback cancellations.
    """
    sim = sim_cls()
    trace = []
    events = []

    def make_cb(tag):
        def cb():
            trace.append((repr(sim.now), tag))
            if tag % 3 == 0:
                events.append(sim.schedule((tag % 4) * 0.25, make_cb(tag + 1000)))
            if tag % 5 == 0 and events:
                events[tag % len(events)].cancel()

        return cb

    tag = 1
    for offsets, cancels, run_for in program:
        for offset in offsets:
            events.append(sim.schedule(offset, make_cb(tag)))
            tag += 1
        for index in cancels:
            events[index % len(events)].cancel()
        sim.run(until=sim.now + run_for)
    sim.run()
    return trace, {
        "now": repr(sim.now),
        "processed": sim.events_processed,
        "batched": sim.batched_events,
        "pending": sim.pending,
        "cancelled_pending": sim.cancelled_pending,
    }


#: Coarse time grid with duplicates so tie groups are common, plus a
#: far-future value that lands beyond one calendar lap.
_OFFSETS = st.sampled_from(
    [0.0, 0.0, 0.1, 0.25, 0.25, 0.5, 1.0, 1.0, 1.75, 3.0, 40.0]
)

_SEGMENTS = st.lists(
    st.tuples(
        st.lists(_OFFSETS, min_size=1, max_size=8),
        st.lists(st.integers(0, 63), max_size=3),
        st.sampled_from([0.25, 0.5, 1.0, 2.5]),
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=80, deadline=None)
@given(program=_SEGMENTS)
def test_prop_heap_and_calendar_execute_identically(program):
    assert run_program(Simulator, program) == run_program(CalendarSimulator, program)


# ----------------------------------------------------------------------
# Engine edge cases (both engines unless calendar-specific)
# ----------------------------------------------------------------------


def _noop():
    return None


class TestEngineEdgeCases:
    def test_cancel_inside_same_timestamp_batch(self, sim_cls):
        """A tie-group member cancelled by an earlier member is skipped
        mid-drain, with the cancellation count settled by the pop."""
        sim = sim_cls()
        fired = []
        victims = []

        def killer():
            fired.append("killer")
            victims[0].cancel()

        sim.schedule_at(1.0, killer)
        victims.append(sim.schedule_at(1.0, lambda: fired.append("victim")))
        sim.schedule_at(1.0, lambda: fired.append("survivor"))
        sim.run()
        assert fired == ["killer", "survivor"]
        assert sim.events_processed == 2
        assert sim.cancelled_pending == 0

    def test_tie_spawned_during_batch_drains_in_order(self, sim_cls):
        """A zero-delay event scheduled by a batched callback joins the
        tail of the tie group being drained (later sequence number)."""
        sim = sim_cls()
        fired = []

        def spawner():
            fired.append("spawner")
            sim.schedule(0.0, lambda: fired.append("spawned"))

        sim.schedule_at(2.0, spawner)
        sim.schedule_at(2.0, lambda: fired.append("peer"))
        sim.run()
        assert fired == ["spawner", "peer", "spawned"]

    def test_schedule_into_past_raises(self, sim_cls):
        sim = sim_cls()
        sim.schedule_at(5.0, _noop)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, _noop)
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, _noop)

    def test_max_events_stops_inside_tie_group(self, sim_cls):
        sim = sim_cls()
        fired = []
        for index in range(6):
            sim.schedule_at(1.0, lambda i=index: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]
        assert sim.pending == 3
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_growth_resize_during_bounded_run_matches_heap(self):
        """Callbacks schedule enough new work to force calendar growth
        resizes mid-run; the bounded trace must still match the heap's
        and stop exactly at ``until``."""

        def drive(sim_cls):
            sim = sim_cls()
            fired = []
            budget = [200]

            def fan(depth):
                def cb():
                    fired.append((repr(sim.now), depth))
                    if budget[0] > 0:
                        budget[0] -= 4
                        for k in range(4):
                            sim.schedule(0.37 + 0.01 * k + 0.001 * depth, fan(depth + 1))

                return cb

            sim.schedule_at(0.0, fan(0))
            sim.run(until=1.0)
            return sim, fired, repr(sim.now)

        heap, heap_trace, heap_now = drive(Simulator)
        calendar, cal_trace, cal_now = drive(CalendarSimulator)
        assert cal_trace == heap_trace
        assert cal_now == heap_now == repr(1.0)
        assert calendar.pending == heap.pending > 0
        assert calendar.bucket_resizes > 0  # the growth path really ran

    def test_calendar_resizes_fired_for_large_populations(self):
        sim = CalendarSimulator()
        for i in range(200):
            sim.schedule_at(float(i), _noop)
        assert sim.bucket_resizes > 0
        assert sim.bucket_count > 16
        sim.run()
        assert sim.events_processed == 200

    def test_until_inside_empty_calendar_region_advances_clock(self):
        """A bounded run whose window holds no events stops the bucket
        sweep at the window's bucket instead of scanning a full lap."""
        sim = CalendarSimulator()
        sim.schedule_at(1000.0, _noop)
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert sim.events_processed == 0
        sim.run(until=1000.0)
        assert sim.events_processed == 1

    def test_far_future_event_beyond_one_lap(self):
        """Draining past a sparse region more than one calendar year
        wide exercises the full-lap jump to the earliest entry."""
        sim = CalendarSimulator()
        fired = []
        sim.schedule_at(0.5, lambda: fired.append(sim.now))
        sim.schedule_at(1.0e6, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5, 1.0e6]
        assert sim.now == 1.0e6


class TestCompactionAccounting:
    """Cancelled-event compaction drops corpses from the queue; their
    ``Event._sim`` back-reference must be cleared so nothing a caller
    does with a stale handle can skew the cancellation count."""

    def _compact_once(self, sim):
        doomed = [sim.schedule_at(1000.0 + i, _noop) for i in range(80)]
        keep = [sim.schedule_at(2000.0 + i, _noop) for i in range(20)]
        for event in doomed:
            event.cancel()
        assert sim.cancelled_pending == 80
        sim.schedule_at(0.5, _noop)
        sim.run(until=1.0)  # loop head triggers the compaction
        return doomed, keep

    def test_compaction_clears_sim_backref(self, sim_cls):
        sim = sim_cls()
        doomed, keep = self._compact_once(sim)
        assert sim.heap_compactions == 1
        assert sim.cancelled_pending == 0
        assert all(event._sim is None for event in doomed)
        assert all(event._sim is sim for event in keep)
        assert sim.pending == len(keep)

    def test_cancel_after_compaction_does_not_skew_count(self, sim_cls):
        sim = sim_cls()
        doomed, keep = self._compact_once(sim)
        for event in doomed:
            event.cancel()  # stale handles: idempotent, no recount
        assert sim.cancelled_pending == 0
        keep[0].cancel()  # live handles still count normally
        assert sim.cancelled_pending == 1
        sim.run()
        assert sim.cancelled_pending == 0
        assert sim.pending == 0

    def test_cancel_after_execution_does_not_skew_count(self, sim_cls):
        sim = sim_cls()
        event = sim.schedule_at(1.0, _noop)
        sim.run()
        assert event._sim is None
        event.cancel()
        assert sim.cancelled_pending == 0

    def test_calendar_resize_purges_corpses_early(self):
        """Growth resizes reuse the compaction bookkeeping: corpses are
        dropped and their back-references cleared even before the
        compaction threshold is reached."""
        sim = CalendarSimulator()
        doomed = [sim.schedule_at(10.0 + 0.01 * i, _noop) for i in range(20)]
        for event in doomed:
            event.cancel()
        for i in range(40):  # push occupancy past the growth trigger
            sim.schedule_at(50.0 + float(i), _noop)
        assert sim.bucket_resizes > 0
        assert sim.cancelled_pending == 0
        assert all(event._sim is None for event in doomed)


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------


class TestEngineSelection:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert type(make_simulator()) is Simulator

    def test_env_var_selects_calendar(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        assert type(make_simulator()) is CalendarSimulator

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "calendar")
        assert type(make_simulator("heap")) is Simulator

    def test_malformed_env_degrades_to_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "splay-tree")
        assert type(make_simulator()) is Simulator

    def test_explicit_unknown_name_is_an_error(self):
        with pytest.raises(ValueError):
            make_simulator("splay-tree")

    def test_start_time_forwarded(self):
        assert make_simulator("calendar", start_time=7.5).now == 7.5


# ----------------------------------------------------------------------
# Experiment-level bit-identity
# ----------------------------------------------------------------------

HEAP = RunConfig(engine="heap")
CALENDAR = RunConfig(engine="calendar")

FAULT_PLAN = FaultPlan(
    crash_fraction=0.25, crash_start=4.0, downtime=5.0,
    loss_rate=0.01, jitter=0.001, seed=5,
)


def _cell(approach, config, **kwargs):
    return run_spec(
        CellSpec(scenario=tiny_homo()[0], approach=approach, seed=11,
                 config=config, **kwargs)
    )


class TestExperimentBitIdentity:
    def test_single_cell_heap_equals_calendar(self):
        for approach in ("manual", "binpacking", "cram-ios"):
            heap = _cell(approach, HEAP)
            calendar = _cell(approach, CALENDAR)
            assert comparable(heap) == comparable(calendar), approach

    def test_heap_equals_calendar_under_fault_plan(self):
        heap = _cell("cram-ios", HEAP, fault_plan=FAULT_PLAN)
        calendar = _cell("cram-ios", CALENDAR, fault_plan=FAULT_PLAN)
        assert comparable(heap) == comparable(calendar)
        # The plan actually fired, or this test is vacuous.
        assert calendar.summary.broker_crashes > 0

    def test_heap_equals_calendar_with_recorder_attached(self):
        heap = _cell("binpacking", HEAP, observe=True)
        calendar = _cell("binpacking", CALENDAR, observe=True)
        assert comparable(heap) == comparable(calendar)
        assert heap.obs is not None and calendar.obs is not None
        # Timeline samples include queue diagnostics (corpse counts)
        # that the contract does not pin across engines; the events
        # *executed* must still agree at every sample point.
        heap_processed = [s["events_processed"] for s in heap.obs["samples"]]
        cal_processed = [s["events_processed"] for s in calendar.obs["samples"]]
        assert heap_processed == cal_processed

    def test_calendar_jobs4_matches_serial_heap(self):
        specs_heap = sweep_specs(tiny_homo(), ("manual", "cram-ios"),
                                 seed=11, config=HEAP)
        specs_cal = sweep_specs(tiny_homo(), ("manual", "cram-ios"),
                                seed=11, config=CALENDAR)
        serial = execute_cells(specs_heap, jobs=1)
        pooled = execute_cells(specs_cal, jobs=4)
        for spec, heap, calendar in zip(specs_heap, serial, pooled):
            assert comparable(heap) == comparable(calendar), spec.label


class TestDeliveryBatchingEquivalence:
    def _run(self, monkeypatch, batching, approach="cram-ios", config=None):
        monkeypatch.setenv(DELIVERY_BATCH_ENV_VAR, "1" if batching else "0")
        return _cell(approach, config)

    def test_batched_rows_identical_to_per_destination(self, monkeypatch):
        for approach in ("manual", "cram-ios"):
            off = self._run(monkeypatch, False, approach)
            on = self._run(monkeypatch, True, approach)
            assert comparable(off) == comparable(on), approach

    def test_batched_calendar_matches_per_destination_heap(self, monkeypatch):
        """The shipping fast configuration against the full reference."""
        off = self._run(monkeypatch, False, config=HEAP)
        on = self._run(monkeypatch, True, config=CALENDAR)
        assert comparable(off) == comparable(on)

    def test_batching_actually_engages(self, monkeypatch):
        fanouts = []
        original = PubSubNetwork.deliver_fanout

        def spy(self, sender_broker, message, sends):
            fanouts.append(len(sends))
            return original(self, sender_broker, message, sends)

        monkeypatch.setattr(PubSubNetwork, "deliver_fanout", spy)
        self._run(monkeypatch, True)
        assert fanouts, "batched path never taken"
        assert max(fanouts) > 1, "no multi-destination batch exercised"

    def test_lossy_fault_plan_disables_batching(self, monkeypatch):
        """Loss/jitter must flow through the per-destination fault path
        so the injector's RNG stream is consumed per delivery."""
        monkeypatch.setenv(DELIVERY_BATCH_ENV_VAR, "1")
        called = []
        original = PubSubNetwork.deliver_fanout
        monkeypatch.setattr(
            PubSubNetwork, "deliver_fanout",
            lambda self, *args: called.append(args) or original(self, *args),
        )
        result = _cell("manual", None, fault_plan=FAULT_PLAN)
        assert not called
        assert result.summary.publications_lost >= 0
