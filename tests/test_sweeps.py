"""Tests for the figure-sweep helpers."""

import pytest

from repro.experiments.sweeps import (
    FIGURES,
    figure_rows,
    heterogeneous_scenarios,
    homogeneous_scenarios,
    run_cell,
    scinet_scenarios,
    sweep,
)
from repro.workloads.scenarios import cluster_homogeneous


class TestScenarioFactories:
    def test_homogeneous_sweep_sizes(self):
        scenarios = homogeneous_scenarios(subs_sweep=(10, 20), scale=0.1)
        assert len(scenarios) == 2
        assert scenarios[0].total_subscriptions < scenarios[1].total_subscriptions

    def test_heterogeneous_sweep(self):
        scenarios = heterogeneous_scenarios(ns_sweep=(20,), scale=0.1)
        assert scenarios[0].heterogeneous

    def test_scinet_pair(self):
        scenarios = scinet_scenarios(scale=0.05)
        assert len(scenarios) == 2

    def test_figures_registry_keys(self):
        assert "brokers" in FIGURES
        assert FIGURES["message-rate"] == "avg_broker_message_rate"


class TestSweepExecution:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        scenarios = homogeneous_scenarios(
            subs_sweep=(8,), scale=0.1, measurement_time=10.0
        )
        approaches = ("manual", "binpacking")
        labels = []
        results = sweep(scenarios, approaches, seed=1, progress=labels.append)
        return scenarios, approaches, results, labels

    def test_matrix_complete(self, small_sweep):
        scenarios, approaches, results, _labels = small_sweep
        assert set(results) == {
            (scenario.name, approach)
            for scenario in scenarios
            for approach in approaches
        }

    def test_progress_callback_fired(self, small_sweep):
        _s, _a, _r, labels = small_sweep
        assert len(labels) == 2
        assert "manual" in labels[0]

    def test_figure_rows_pivot(self, small_sweep):
        scenarios, approaches, results, _labels = small_sweep
        rows = figure_rows(results, scenarios, approaches, "allocated_brokers")
        assert len(rows) == 1
        assert rows[0]["manual"] == scenarios[0].broker_count
        assert rows[0]["binpacking"] < scenarios[0].broker_count

    def test_run_cell_standalone(self):
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=8, scale=0.1, measurement_time=10.0
        )
        result = run_cell(scenario, "manual", seed=1)
        assert result.approach == "manual"
