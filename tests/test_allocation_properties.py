"""Property-based tests over the allocation algorithms.

Hypothesis generates random subscription pools (random per-publisher
bit patterns, random bandwidth spreads) and broker pools, and checks
the invariants every Phase-2 allocator must uphold:

* every subscription is placed exactly once (no loss, no duplication);
* no broker exceeds its output bandwidth;
* no broker's input union exceeds its maximum matching rate;
* CRAM never returns more brokers than BIN PACKING on the same input;
* failure is reported honestly (a failed result names the unit that
  did not fit).
"""

from typing import Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binpacking import BinPackingAllocator
from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.core.cram import CramAllocator
from repro.core.fbf import FbfAllocator
from repro.core.profiles import PublisherProfile
from repro.core.units import AllocationUnit, units_from_records
from repro.sim.rng import SeededRng

from conftest import make_record

WINDOW = 48

publishers = st.lists(
    st.sampled_from(["P0", "P1", "P2", "P3"]), min_size=1, max_size=2, unique=True
)

subscription_specs = st.lists(
    st.tuples(
        publishers,
        st.integers(min_value=1, max_value=WINDOW),   # bits per publisher
        st.integers(min_value=0, max_value=WINDOW - 1),  # offset
    ),
    min_size=1,
    max_size=24,
)

broker_specs = st.lists(
    st.floats(min_value=5.0, max_value=200.0),
    min_size=2,
    max_size=8,
)


def build_pool(spec_list):
    directory: Dict[str, PublisherProfile] = {
        adv: PublisherProfile(adv, publication_rate=10.0, bandwidth=10.0,
                              last_message_id=WINDOW - 1)
        for adv in ("P0", "P1", "P2", "P3")
    }
    records = []
    for advs, width, offset in spec_list:
        bits_by_adv = {}
        for adv in advs:
            start = offset % WINDOW
            bits_by_adv[adv] = [
                (start + index) % WINDOW for index in range(min(width, WINDOW))
            ]
        records.append(make_record(bits_by_adv, capacity=WINDOW))
    units = units_from_records(records, directory)
    return units, directory


def build_brokers(bandwidths) -> List[BrokerSpec]:
    return [
        BrokerSpec(
            broker_id=f"H{i:02d}",
            total_output_bandwidth=bandwidth,
            delay_function=MatchingDelayFunction(base=1e-3, per_subscription=1e-5),
        )
        for i, bandwidth in enumerate(bandwidths)
    ]


def check_invariants(result, units, pool):
    if not result.success:
        assert result.failed_unit is not None
        return
    placement = result.subscription_placement()
    expected = {record.sub_id for unit in units for record in unit.members}
    assert set(placement) == expected
    specs = {spec.broker_id: spec for spec in pool}
    for bin_ in result.bins:
        spec = specs[bin_.spec.broker_id]
        assert bin_.used_bandwidth <= spec.total_output_bandwidth + 1e-6
        max_rate = spec.delay_function.max_matching_rate(bin_.subscription_count)
        assert bin_.input_rate <= max_rate + 1e-6


@given(spec_list=subscription_specs, bandwidths=broker_specs)
@settings(max_examples=40, deadline=None)
def test_prop_binpacking_invariants(spec_list, bandwidths):
    units, directory = build_pool(spec_list)
    pool = build_brokers(bandwidths)
    result = BinPackingAllocator().allocate(units, pool, directory)
    check_invariants(result, units, pool)


@given(spec_list=subscription_specs, bandwidths=broker_specs,
       seed=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_prop_fbf_invariants(spec_list, bandwidths, seed):
    units, directory = build_pool(spec_list)
    pool = build_brokers(bandwidths)
    result = FbfAllocator(rng=SeededRng(seed, "prop")).allocate(
        units, pool, directory
    )
    check_invariants(result, units, pool)


@given(spec_list=subscription_specs, bandwidths=broker_specs)
@settings(max_examples=25, deadline=None)
def test_prop_cram_invariants_and_dominance(spec_list, bandwidths):
    units, directory = build_pool(spec_list)
    pool = build_brokers(bandwidths)
    binpack = BinPackingAllocator().allocate(units, pool, directory)
    cram = CramAllocator(metric="ios", failure_budget=30)
    result = cram.allocate(units, pool, directory)
    assert result.success == binpack.success
    check_invariants(result, units, pool)
    if result.success:
        assert result.broker_count <= binpack.broker_count


@given(spec_list=subscription_specs, bandwidths=broker_specs)
@settings(max_examples=15, deadline=None)
def test_prop_cram_xor_invariants(spec_list, bandwidths):
    units, directory = build_pool(spec_list)
    pool = build_brokers(bandwidths)
    cram = CramAllocator(metric="xor", failure_budget=15)
    result = cram.allocate(units, pool, directory)
    check_invariants(result, units, pool)


@given(spec_list=subscription_specs)
@settings(max_examples=25, deadline=None)
def test_prop_merged_unit_conserves_members(spec_list):
    units, directory = build_pool(spec_list)
    merged = AllocationUnit.merged(units, directory)
    assert merged.subscription_count == sum(u.subscription_count for u in units)
    assert merged.delivery_bandwidth == pytest.approx(
        sum(u.delivery_bandwidth for u in units)
    )
    for unit in units:
        assert merged.profile.covers(unit.profile)
