"""Whole-program reprolint v2: layering, taint, contracts, driver.

Fixture trees under ``tests/data/lint/`` each seed one family of
violations; the tests here pin that every pass catches its seeded
defect (and stays silent on the sanitized twin), that the import graph
is order-independent, that the cache changes nothing, and that the
driver's exit-code and baseline semantics hold.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tools.autofix import FixError, fix_source, fix_source_checked
from repro.tools.baseline import apply_baseline, load_baseline
from repro.tools.engine import Finding, LintError
from repro.tools.layering import allowed_imports, graph_report
from repro.tools.lint import main, run_lint
from repro.tools.project import Project, module_name_for, resolve_passes, run_passes

DATA = Path(__file__).parent / "data" / "lint"


def pass_findings(tree, pass_name):
    project, failures = Project.load([DATA / tree])
    assert failures == []
    return run_passes(project, resolve_passes([pass_name]))


# ----------------------------------------------------------------------
# Golden fixtures: each pass catches its seeded violation
# ----------------------------------------------------------------------


def test_taint_reaches_every_sink_class():
    findings = pass_findings("taint", "determinism-taint")
    messages = [finding.message for finding in findings]
    assert any("allocation decision" in message for message in messages)
    assert any("print()" in message for message in messages)
    assert any("metrics row" in message for message in messages)
    # Cross-function propagation: as_row() leaks env taint born in env_row().
    assert any(
        "as_row() return" in message and "env" in message for message in messages
    )
    assert all("leaky.py" in finding.path for finding in findings)


def test_taint_sanitized_twin_is_clean():
    findings = pass_findings("taint", "determinism-taint")
    assert not any("sanitized.py" in finding.path for finding in findings)


def test_layering_flags_upward_import_and_cycle():
    findings = pass_findings("layering", "layering")
    messages = [finding.message for finding in findings]
    assert any("core may not import experiments" in message for message in messages)
    assert any("import-time cycle" in message for message in messages)


def test_contract_fixture_flags_all_families():
    findings = pass_findings("contracts", "api-contract")
    messages = [finding.message for finding in findings]
    assert any("builder is a lambda" in message for message in messages)
    assert any(
        "('self', 'units', 'brokers')" in message for message in messages
    )
    assert any("not bound at module level" in message for message in messages)
    assert any("dead export" in message for message in messages)
    # AllocatorSpec shapes: literal capability sets use the vocabulary.
    assert any("capability 'telepathic'" in message for message in messages)
    assert not any(
        "capability 'incremental'" in message for message in messages
    )
    assert any(
        "'merge_shard_results'" in message and "outcomes.values()" in message
        for message in messages
    )
    assert any(
        "'combine_shard_outputs'" in message and "set(results)" in message
        for message in messages
    )
    # Negative controls: name gate and parameter gate both hold.
    assert not any("merge_rows" in message for message in messages)
    assert not any("collect_shard_stats" in message for message in messages)
    # Energy model: raw comparisons in float-returning *energy*/*watts*
    # functions are caught ...
    assert any(
        "'idle_energy_joules'" in message and "raw comparison" in message
        for message in messages
    )
    assert any("'peak_watts'" in message for message in messages)
    # ... while routed comparisons, non-energy names, and non-float
    # returns all stay clean.
    assert not any("'mean_watts'" in message for message in messages)
    assert not any("'mean_delay_ms'" in message for message in messages)
    assert not any("'energy_label'" in message for message in messages)
    # Engine queue encapsulation: import, from-import, and call forms
    # are all caught outside repro.sim.engine ...
    heapq_findings = [
        finding for finding in findings if "heapq" in finding.message
    ]
    heapq_messages = [finding.message for finding in heapq_findings]
    assert any("'import heapq'" in message for message in heapq_messages)
    assert any(
        "'from heapq import heappop'" in message for message in heapq_messages
    )
    assert any("heapq.heappush() call" in message for message in heapq_messages)
    # ... and the engine module itself stays exempt.
    assert all("badheap.py" in finding.path for finding in heapq_findings)


def test_real_tree_is_clean_modulo_baseline():
    run = run_lint(
        ["src"],
        usage_paths=["tests", "benchmarks"],
        baseline_path=Path("reprolint-baseline.json"),
    )
    assert run.parse_failures == []
    assert run.findings == []
    assert run.suppressed == 1  # the audited _worker_init entry


# ----------------------------------------------------------------------
# Graph model
# ----------------------------------------------------------------------


def test_module_name_for_anchors_at_repro():
    assert module_name_for("src/repro/core/croc.py") == "repro.core.croc"
    assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
    assert (
        module_name_for("tests/data/lint/layering/src/repro/core/upward.py")
        == "repro.core.upward"
    )


def test_layering_policy_table():
    assert allowed_imports("core") == frozenset({"obs"})
    assert allowed_imports("experiments") == frozenset(
        {"core", "sim", "pubsub", "workloads", "obs"}
    )
    assert allowed_imports("obs") == frozenset()
    assert allowed_imports("tools") == frozenset()


def test_type_checking_imports_do_not_form_cycles():
    project, _ = Project.load(["src/repro/core"])
    assert project.import_cycles() == []


def test_from_package_import_submodule_resolves_to_submodule():
    project, _ = Project.load(["src/repro/obs"])
    edges = project.module_edges(include_lazy=False)
    assert ("repro.obs.collect", "repro.obs.recorder") in edges
    assert ("repro.obs.collect", "repro.obs") not in edges


def test_graph_report_mentions_every_package_edge():
    project, _ = Project.load(["src"])
    report = graph_report(project)
    assert "import-time cycles: none" in report
    assert "experiments  → core" in report


@settings(max_examples=25, deadline=None)
@given(st.randoms(use_true_random=False))
def test_import_graph_is_visit_order_independent(rng):
    files = sorted(
        str(path) for path in (DATA / "layering").rglob("*.py")
    ) + sorted(str(path) for path in Path("src/repro/sim").rglob("*.py"))
    shuffled = list(files)
    rng.shuffle(shuffled)
    base, failures_a = Project.load(files)
    permuted, failures_b = Project.load(shuffled)
    assert failures_a == failures_b == []
    assert base.module_edges() == permuted.module_edges()
    assert base.import_cycles() == permuted.import_cycles()
    assert list(base.modules) == list(permuted.modules)
    assert run_passes(base, resolve_passes(["layering"])) == run_passes(
        permuted, resolve_passes(["layering"])
    )


# ----------------------------------------------------------------------
# Cache correctness: warm == cold, byte for byte
# ----------------------------------------------------------------------


def test_cache_warm_equals_cold(tmp_path):
    cache_file = tmp_path / "cache.json"
    cold = run_lint(
        ["src"], usage_paths=["tests", "benchmarks"], cache_path=cache_file
    )
    first_snapshot = cache_file.read_bytes()
    warm = run_lint(
        ["src"], usage_paths=["tests", "benchmarks"], cache_path=cache_file
    )
    assert warm.findings == cold.findings
    assert warm.parse_failures == cold.parse_failures
    assert warm.checked == cold.checked
    assert cache_file.read_bytes() == first_snapshot
    assert warm.cache_misses == 0
    assert warm.cache_hits > 0


def test_cache_invalidated_by_file_edit(tmp_path):
    source_dir = tmp_path / "src" / "repro" / "core"
    source_dir.mkdir(parents=True)
    target = source_dir / "thing.py"
    target.write_text(
        "from __future__ import annotations\n\nx = 1\n", encoding="utf-8"
    )
    cache_file = tmp_path / "cache.json"
    clean = run_lint([str(target)], cache_path=cache_file)
    assert clean.findings == []
    target.write_text("import random\nx = 1\n", encoding="utf-8")
    dirty = run_lint([str(target)], cache_path=cache_file)
    assert dirty.findings, "edited file must re-lint, not replay the cache"


# ----------------------------------------------------------------------
# Exit codes and parse-failure collection
# ----------------------------------------------------------------------


def test_parse_failure_collected_and_exit_two(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("from __future__ import annotations\n\nx = 1\n")
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n")
    code = main([str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert len(payload["parse_failures"]) == 1
    assert "broken.py" in payload["parse_failures"][0]["path"]
    # The good file was still linted — collection, not abortion.
    assert payload["checked_files"] == 1


def test_exit_one_on_findings_and_zero_when_clean(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("from __future__ import annotations\n\nx = 1\n")
    assert main([str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import os\n\nx = 1\n")
    assert main([str(dirty)]) == 1
    capsys.readouterr()


def test_sarif_output_shape(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import os\n\nx = 1\n")
    main([str(dirty), "--format", "sarif"])
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert run["results"], "findings must appear as SARIF results"
    indexed = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {result["ruleId"] for result in run["results"]} <= indexed


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------


def _write_baseline(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


def test_baseline_requires_justification(tmp_path):
    path = _write_baseline(
        tmp_path,
        [{"rule": "api-contract", "path": "x.py", "contains": "z",
          "justification": ""}],
    )
    with pytest.raises(LintError, match="justification"):
        load_baseline(path)


def test_baseline_rejects_layering_entries(tmp_path):
    path = _write_baseline(
        tmp_path,
        [{"rule": "layering", "path": "x.py", "contains": "z",
          "justification": "because"}],
    )
    with pytest.raises(LintError, match="layering"):
        load_baseline(path)


def test_stale_baseline_entry_becomes_finding(tmp_path):
    path = _write_baseline(
        tmp_path,
        [{"rule": "api-contract", "path": "gone.py", "contains": "nothing",
          "justification": "was fixed long ago"}],
    )
    entries = load_baseline(path)
    remaining, suppressed = apply_baseline([], entries, str(path))
    assert suppressed == 0
    assert [finding.rule for finding in remaining] == ["stale-baseline"]


def test_baseline_suppresses_matching_finding(tmp_path):
    finding = Finding("pkg/mod.py", 3, 0, "api-contract", "builder is a lambda")
    path = _write_baseline(
        tmp_path,
        [{"rule": "api-contract", "path": "pkg/mod.py", "contains": "lambda",
          "justification": "audited: replay path"}],
    )
    remaining, suppressed = apply_baseline(
        [finding], load_baseline(path), str(path)
    )
    assert remaining == []
    assert suppressed == 1


def test_committed_baseline_is_valid_and_live():
    entries = load_baseline(Path("reprolint-baseline.json"))
    assert entries, "committed baseline should document the audited entries"
    assert all(len(entry.justification) > 20 for entry in entries)


# ----------------------------------------------------------------------
# Autofix: fix-then-relint idempotency
# ----------------------------------------------------------------------


def test_fix_adds_future_and_removes_unused_import():
    fixed, result = fix_source_checked(
        '"""Doc."""\n\nimport os\nimport sys\n\nprint(sys.argv)\n'
    )
    assert "from __future__ import annotations" in fixed
    assert "import os" not in fixed
    assert result.added_future and result.removed_imports == 1
    again, second = fix_source(fixed)
    assert again == fixed and not second.changed


def test_fix_trims_multi_name_import():
    fixed, _ = fix_source_checked(
        "from __future__ import annotations\n"
        "from typing import Dict, List, Optional\n\n"
        "x: Dict[str, List[int]] = {}\n"
    )
    assert "from typing import Dict, List\n" in fixed
    assert "Optional" not in fixed


def test_fix_suppressed_import_survives():
    source = (
        "from __future__ import annotations\n"
        "import os  # reprolint: disable=unused-import (side effect)\n\n"
        "x = 1\n"
    )
    fixed, result = fix_source_checked(source)
    assert fixed == source and not result.changed


def test_fix_error_is_a_lint_error():
    assert issubclass(FixError, LintError)


def test_fix_preserves_re_export_convention():
    source = (
        "from __future__ import annotations\n"
        "from pkg import thing as thing\n"
    )
    fixed, result = fix_source(source)
    assert fixed == source and not result.changed


def test_cli_fix_rewrites_in_place(tmp_path, capsys):
    target = tmp_path / "messy.py"
    target.write_text("import os\nimport sys\n\nprint(sys.argv)\n")
    code = main([str(target), "--fix"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rewrote 1 file(s)" in out
    text = target.read_text()
    assert "from __future__ import annotations" in text
    assert "import os" not in text
