"""Tests for the GIF poset and pruned closest-partner search (§IV-C.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closeness import make_metric
from repro.core.gif import Gif, build_gifs
from repro.core.poset import Poset

from conftest import make_directory, make_profile, make_unit


def gif_of(bits, directory, capacity=64):
    unit = make_unit({"A": bits}, directory, capacity=capacity)
    return Gif(unit.profile, [unit])


@pytest.fixture
def directory():
    return make_directory(["A", "B"])


class TestInsertion:
    def test_single_node_under_root(self, directory):
        poset = Poset()
        gif = gif_of([1, 2], directory)
        node = poset.insert(gif)
        assert node.parents == {poset.root}
        assert len(poset) == 1
        poset.validate()

    def test_superset_becomes_parent(self, directory):
        poset = Poset()
        big = gif_of([1, 2, 3], directory)
        small = gif_of([1, 2], directory)
        poset.insert(big)
        node_small = poset.insert(small)
        assert poset.node_of(big) in node_small.parents
        poset.validate()

    def test_inserting_parent_after_child_relinks(self, directory):
        poset = Poset()
        small = gif_of([1, 2], directory)
        big = gif_of([1, 2, 3], directory)
        poset.insert(small)
        poset.insert(big)
        node_small, node_big = poset.node_of(small), poset.node_of(big)
        assert node_big in node_small.parents
        assert poset.root not in node_small.parents
        assert node_big.parents == {poset.root}
        poset.validate()

    def test_siblings_for_intersecting_profiles(self, directory):
        poset = Poset()
        a = gif_of([1, 2], directory)
        b = gif_of([2, 3], directory)
        poset.insert(a)
        poset.insert(b)
        assert poset.node_of(a).parents == {poset.root}
        assert poset.node_of(b).parents == {poset.root}
        poset.validate()

    def test_chain_insertion_any_order(self, directory):
        poset = Poset()
        gifs = [gif_of(range(n), directory) for n in (4, 1, 3, 2)]
        for gif in gifs:
            poset.insert(gif)
        poset.validate()
        # The chain {0..3} ⊃ {0..2} ⊃ {0..1} ⊃ {0} must hold.
        by_card = sorted(gifs, key=lambda g: g.profile.cardinality)
        for smaller, larger in zip(by_card, by_card[1:]):
            node = poset.node_of(smaller)
            assert poset.node_of(larger) in node.parents

    def test_duplicate_insert_raises(self, directory):
        poset = Poset()
        gif = gif_of([1], directory)
        poset.insert(gif)
        with pytest.raises(ValueError):
            poset.insert(gif)

    def test_diamond_multiple_parents(self, directory):
        poset = Poset()
        left = gif_of([1, 2], directory)
        right = gif_of([2, 3], directory)
        bottom = gif_of([2], directory)
        for gif in (left, right, bottom):
            poset.insert(gif)
        parents = poset.node_of(bottom).parents
        assert poset.node_of(left) in parents
        assert poset.node_of(right) in parents
        poset.validate()


class TestRemoval:
    def test_remove_middle_of_chain_splices(self, directory):
        poset = Poset()
        top = gif_of([1, 2, 3], directory)
        middle = gif_of([1, 2], directory)
        bottom = gif_of([1], directory)
        for gif in (top, middle, bottom):
            poset.insert(gif)
        poset.remove(middle)
        poset.validate()
        assert middle not in poset
        node_bottom = poset.node_of(bottom)
        assert poset.node_of(top) in node_bottom.parents

    def test_remove_leaf(self, directory):
        poset = Poset()
        a = gif_of([1, 2], directory)
        b = gif_of([1], directory)
        poset.insert(a)
        poset.insert(b)
        poset.remove(b)
        poset.validate()
        assert len(poset) == 1

    def test_remove_top_reattaches_to_root(self, directory):
        poset = Poset()
        top = gif_of([1, 2], directory)
        bottom = gif_of([1], directory)
        poset.insert(top)
        poset.insert(bottom)
        poset.remove(top)
        poset.validate()
        assert poset.node_of(bottom).parents == {poset.root}


class TestCoveredGifs:
    def test_direct_children_only(self, directory):
        poset = Poset()
        top = gif_of([1, 2, 3, 4], directory)
        mid = gif_of([1, 2], directory)
        leaf = gif_of([1], directory)
        for gif in (top, mid, leaf):
            poset.insert(gif)
        assert poset.covered_gifs(top) == [mid]
        assert poset.covered_gifs(mid) == [leaf]
        assert poset.covered_gifs(leaf) == []


class TestClosestPartner:
    def test_finds_highest_closeness(self, directory):
        poset = Poset()
        target = gif_of([1, 2, 3, 4], directory)
        near = gif_of([1, 2, 3], directory)
        far = gif_of([1], directory)
        unrelated = gif_of([30, 31], directory)
        for gif in (target, near, far, unrelated):
            poset.insert(gif)
        metric = make_metric("ios")
        partner, value = poset.closest_partner(target, metric)
        assert partner is near
        assert value > 0

    def test_prunes_empty_subtrees(self, directory):
        poset = Poset()
        target = gif_of([1, 2], directory)
        poset.insert(target)
        # A disjoint chain: none of it should be evaluated past the top.
        top = gif_of([10, 11, 12, 13], directory)
        mid = gif_of([10, 11], directory)
        leaf = gif_of([10], directory)
        for gif in (top, mid, leaf):
            poset.insert(gif)
        metric = make_metric("ios")
        metric.reset_counter()
        poset.closest_partner(target, metric)
        # target vs top is evaluated (zero) → mid and leaf are pruned.
        assert metric.evaluations <= 2

    def test_xor_scans_everything(self, directory):
        poset = Poset()
        gifs = [gif_of([i], directory) for i in range(6)]
        for gif in gifs:
            poset.insert(gif)
        metric = make_metric("xor")
        metric.reset_counter()
        partner, value = poset.closest_partner(gifs[0], metric)
        assert partner is not None
        assert value > 0
        assert metric.evaluations == 5  # every other node evaluated

    def test_blacklisted_pair_skipped(self, directory):
        poset = Poset()
        a = gif_of([1, 2], directory)
        b = gif_of([1, 2, 3], directory)
        c = gif_of([1], directory)
        for gif in (a, b, c):
            poset.insert(gif)
        metric = make_metric("ios")
        partner, _ = poset.closest_partner(a, metric)
        assert partner is b
        blacklist = {frozenset((a.gif_id, b.gif_id))}
        partner, _ = poset.closest_partner(a, metric, blacklist=blacklist)
        assert partner is c

    def test_no_partner_when_all_disjoint(self, directory):
        poset = Poset()
        a = gif_of([1], directory)
        b = gif_of([2], directory)
        poset.insert(a)
        poset.insert(b)
        partner, value = poset.closest_partner(a, make_metric("ios"))
        assert partner is None
        assert value == 0.0

    def test_on_candidate_callback_sees_pairs(self, directory):
        poset = Poset()
        a = gif_of([1, 2], directory)
        b = gif_of([1, 3], directory)
        poset.insert(a)
        poset.insert(b)
        seen = []
        poset.closest_partner(a, make_metric("ios"),
                              on_candidate=lambda g, v: seen.append((g, v)))
        assert [g.gif_id for g, _v in seen] == [b.gif_id]

    def test_search_descends_past_own_node(self, directory):
        """The target's own poset node is transparent to the search."""
        poset = Poset()
        target = gif_of([1, 2, 3], directory)
        below = gif_of([1, 2], directory)
        poset.insert(target)
        poset.insert(below)
        partner, value = poset.closest_partner(target, make_metric("ios"))
        assert partner is below


# ----------------------------------------------------------------------
# Property-based structural invariants
# ----------------------------------------------------------------------

profile_sets = st.lists(
    st.sets(st.integers(0, 12), min_size=1, max_size=8),
    min_size=1,
    max_size=12,
    unique_by=lambda s: frozenset(s),
)


@given(bit_sets=profile_sets)
@settings(max_examples=60, deadline=None)
def test_prop_insertion_keeps_invariants(bit_sets):
    directory = make_directory(["A"], last_message_id=12)
    poset = Poset()
    gifs = []
    for bits in bit_sets:
        gif = gif_of(bits, directory)
        gifs.append(gif)
        poset.insert(gif)
        poset.validate()
    # Every strict-superset relation must be reachable via ancestors.
    for gif in gifs:
        node = poset.node_of(gif)
        ancestors = set()
        stack = list(node.parents)
        while stack:
            parent = stack.pop()
            if parent in ancestors:
                continue
            ancestors.add(parent)
            stack.extend(parent.parents)
        for other in gifs:
            if other is gif:
                continue
            if other.profile.covers(gif.profile) and not gif.profile.covers(
                other.profile
            ):
                assert poset.node_of(other) in ancestors


def gif_of(bits, directory, capacity=64):  # redefined for hypothesis scope
    unit = make_unit({"A": bits}, directory, capacity=capacity)
    return Gif(unit.profile, [unit])


@given(bit_sets=profile_sets)
@settings(max_examples=40, deadline=None)
def test_prop_pruned_intersect_search_matches_exhaustive(bit_sets):
    """For INTERSECT the decrease-prune is exact: |∩| is non-increasing
    down the poset, so a pruned subtree can never hold a better pair."""
    directory = make_directory(["A"], last_message_id=12)
    poset = Poset()
    gifs = [gif_of(bits, directory) for bits in bit_sets]
    for gif in gifs:
        poset.insert(gif)
    metric = make_metric("intersect")
    for gif in gifs:
        _partner, value = poset.closest_partner(gif, metric)
        best = max(
            (metric(gif.profile, other.profile) for other in gifs if other is not gif),
            default=0.0,
        )
        assert value == pytest.approx(best)


@given(bit_sets=profile_sets)
@settings(max_examples=40, deadline=None)
def test_prop_pruned_ios_search_is_sound_heuristic(bit_sets):
    """For IOS/IOU the decrease-prune is the paper's heuristic: it may
    return a lower-closeness pair on adversarial posets, but it never
    overshoots the true best and never misses that *a* partner exists."""
    directory = make_directory(["A"], last_message_id=12)
    poset = Poset()
    gifs = [gif_of(bits, directory) for bits in bit_sets]
    for gif in gifs:
        poset.insert(gif)
    metric = make_metric("ios")
    for gif in gifs:
        _partner, value = poset.closest_partner(gif, metric)
        best = max(
            (metric(gif.profile, other.profile) for other in gifs if other is not gif),
            default=0.0,
        )
        assert value <= best + 1e-12
        assert (value > 0) == (best > 0)
