"""Kernel-on vs kernel-off equivalence (the kernel's exactness contract).

The fused bit-plane kernel (:mod:`repro.core.kernel`) promises to be a
pure wall-clock optimization: attaching it must never change a metric
value, an allocation, or an evaluation counter.  These tests pin that
contract on seeded end-to-end scenarios and on targeted fallback cases
(mismatched windows, layout conflicts, unknown publishers).
"""

from __future__ import annotations

import pytest

from repro.core.closeness import METRIC_NAMES, make_metric
from repro.core.cram import CramAllocator
from repro.core.kernel import ClosenessKernel
from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_heterogeneous, cluster_homogeneous

from conftest import make_directory, make_profile

# Three seeded scenarios: two homogeneous sizes and one heterogeneous
# pool (different tiers, skewed subscription counts).
SCENARIOS = [
    ("homo-small", cluster_homogeneous(subscriptions_per_publisher=8, scale=0.08), 7),
    ("homo-dense", cluster_homogeneous(subscriptions_per_publisher=14, scale=0.06), 11),
    ("hetero", cluster_heterogeneous(ns=12, scale=0.05), 13),
]


def _gathered(scenario, seed):
    gather = offline_gather(scenario, seed=seed)
    units = units_from_records(gather.records, gather.directory)
    return gather, units


def _placement_signature(result):
    return (
        result.success,
        result.broker_count,
        sorted(result.subscription_placement().items()),
    )


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[name for name, _, _ in SCENARIOS]
)
class TestAllocationEquivalence:
    def test_identical_allocations_and_counters(self, scenario, metric_name):
        """CRAM with the kernel reproduces the naive run bit-for-bit."""
        _, spec, seed = scenario
        signatures = []
        counters = []
        for use_kernel in (False, True):
            gather, units = _gathered(spec, seed)
            cram = CramAllocator(
                metric=metric_name, failure_budget=25, use_kernel=use_kernel
            )
            result = cram.allocate(units, gather.broker_pool, gather.directory)
            signatures.append(_placement_signature(result))
            stats = cram.last_stats
            counters.append(
                (
                    stats.merges,
                    stats.binpack_runs,
                    stats.initial_units,
                    stats.final_units,
                    cram.metric.evaluations,
                )
            )
            assert stats.kernel_used is use_kernel
        assert signatures[0] == signatures[1]
        assert counters[0] == counters[1]

    def test_identical_closeness_values(self, scenario, metric_name):
        """Every pairwise metric value matches the naive float exactly."""
        _, spec, seed = scenario
        gather, units = _gathered(spec, seed)
        profiles = [unit.profile for unit in units][:40]
        naive = make_metric(metric_name)
        fused = make_metric(metric_name)
        fused.attach_kernel(ClosenessKernel(gather.directory, profiles))
        anchor = profiles[0]
        others = profiles[1:]
        naive_row = [naive(anchor, other) for other in others]
        # Bit-for-bit, both per-pair and batched (no approx).
        assert [fused(anchor, other) for other in others] == naive_row
        assert fused.closeness_row(anchor, others) == naive_row
        # The batched form repeats cleanly off the pair memo.
        assert fused.closeness_row(anchor, others) == naive_row


class TestFusedCountsFallbacks:
    """Direct fused_counts checks, including the non-packable paths."""

    def _naive_counts(self, first, second):
        return (
            first.intersection_cardinality(second),
            first.union_cardinality(second),
        )

    def test_pure_pair_counts(self):
        directory = make_directory(["A", "B"])
        a = make_profile({"A": [1, 2, 3], "B": [10, 11]})
        b = make_profile({"A": [2, 3, 4]})
        kernel = ClosenessKernel(directory, [a, b])
        assert kernel.pack(a).pure and kernel.pack(b).pure
        assert kernel.fused_counts(a, b) == self._naive_counts(a, b)
        assert kernel.fused_evaluations == 1
        assert kernel.fused_counts(a, b) == self._naive_counts(a, b)
        assert kernel.memo_hits == 1

    def test_conflicted_window_goes_residual(self):
        """Same publisher observed under two windows: plane conflict."""
        directory = make_directory(["A", "B"])
        a = make_profile({"A": [1, 2], "B": [3]}, capacity=64)
        b = make_profile({"A": [2, 5]}, capacity=32)  # conflicting window
        kernel = ClosenessKernel(directory, [a, b])
        assert "A" in kernel.layout.conflicted
        pa = kernel.pack(a)
        assert pa.exact and not pa.pure  # residual vector for A
        assert kernel.fused_counts(a, b) == self._naive_counts(a, b)

    def test_unseen_window_falls_back_naive(self):
        """A profile outside the constructor pool with a new window."""
        directory = make_directory(["A"])
        a = make_profile({"A": [1, 2, 3]}, capacity=64)
        kernel = ClosenessKernel(directory, [a])
        late = make_profile({"A": [2, 9]}, capacity=16)
        assert not kernel.pack(late).exact
        assert kernel.fused_counts(a, late) == self._naive_counts(a, late)
        assert kernel.fallback_evaluations == 1
        # Fallback pairs are still id-memoized.
        assert kernel.fused_counts(a, late) == self._naive_counts(a, late)
        assert kernel.memo_hits == 1

    def test_unknown_publisher_still_exact(self):
        """Publishers absent from the directory pack with rate 0."""
        directory = make_directory(["A"])
        a = make_profile({"A": [1], "GHOST": [2, 3]})
        b = make_profile({"GHOST": [3, 4]})
        kernel = ClosenessKernel(directory, [a, b])
        assert kernel.fused_counts(a, b) == self._naive_counts(a, b)

    def test_closeness_row_mixed_pack_purity(self):
        """Rows over a mix of pure, residual, and fallback profiles."""
        directory = make_directory(["A", "B"])
        anchor = make_profile({"A": [1, 2, 3], "B": [7]})
        pure = make_profile({"A": [3, 4]})
        conflicted = make_profile({"B": [1, 2]}, capacity=32)
        kernel = ClosenessKernel(directory, [anchor, pure, conflicted])
        late = make_profile({"A": [2]}, capacity=16)  # non-exact pack
        others = [pure, conflicted, late]
        for name in METRIC_NAMES:
            naive = make_metric(name)
            fused = make_metric(name)
            fused.attach_kernel(kernel)
            expected = [naive(anchor, other) for other in others]
            assert fused.closeness_row(anchor, others) == expected
            assert fused.evaluations == naive.evaluations
