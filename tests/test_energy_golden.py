"""Golden-file pins for the energy export schema and `report pareto`.

Two fixtures live in ``tests/data/``:

* ``energy_export_golden.jsonl`` — a synthetic three-approach energy
  export (energy + pareto records), pinning the JSONL record shapes
  byte-for-byte.
* ``pareto_golden.txt`` — the ``report pareto`` terminal summary for
  that export (fully deterministic: no wall-clock columns exist).

Regenerate both after an intentional schema change with::

    PYTHONPATH=src python tests/test_energy_golden.py --regen
"""

from __future__ import annotations

import pathlib

from repro.core.energy import EnergySpec, WindowUsage, account_window
from repro.experiments.cli import main
from repro.experiments.report import summarize_pareto
from repro.experiments.sweeps import PARETO_OBJECTIVES, ParetoFront
from repro.obs.export import (
    dumps_jsonl,
    energy_export,
    loads_jsonl,
    read_export,
    validate_records,
    write_export,
)

DATA_DIR = pathlib.Path(__file__).parent / "data"
GOLDEN_JSONL = DATA_DIR / "energy_export_golden.jsonl"
GOLDEN_SUMMARY = DATA_DIR / "pareto_golden.txt"

SPEC = EnergySpec(
    idle_watts=50.0,
    active_watts=100.0,
    matching_joules=0.1,
    transmission_joules_per_kb=0.05,
    crashed_watts=5.0,
)

#: Three hand-built windows over one scenario: manual burns brokers,
#: cram-ios consolidates, binpacking sits in between but pays worse
#: delay and delivery rate (so the front has a dominated point).
USAGES = {
    "manual": WindowUsage(
        duration_s=40.0,
        pool_size=8,
        active_brokers=("B1", "B2", "B3", "B4"),
        messages={f"B{i}": 100.0 for i in range(1, 5)},
        bytes_out_kb={f"B{i}": 50.0 for i in range(1, 5)},
        utilization={f"B{i}": 0.1 for i in range(1, 5)},
        downtime_s={},
        deliveries=400,
        mean_delay_s=0.08,
        delivery_rate=1.0,
    ),
    "cram-ios": WindowUsage(
        duration_s=40.0,
        pool_size=8,
        active_brokers=("B1",),
        messages={"B1": 400.0},
        bytes_out_kb={"B1": 200.0},
        utilization={"B1": 0.4},
        downtime_s={},
        deliveries=400,
        mean_delay_s=0.12,
        delivery_rate=1.0,
    ),
    "binpacking": WindowUsage(
        duration_s=40.0,
        pool_size=8,
        active_brokers=("B1", "B2"),
        messages={"B1": 200.0, "B2": 180.0},
        bytes_out_kb={"B1": 100.0, "B2": 90.0},
        utilization={"B1": 0.2, "B2": 0.18},
        downtime_s={"B2": 4.0},
        deliveries=380,
        mean_delay_s=0.15,
        delivery_rate=0.95,
    ),
}

SCENARIO = "homo-25"


def synthetic_export() -> list:
    """A deterministic three-cell energy export with pareto records."""
    labeled = []
    for approach in ("manual", "cram-ios", "binpacking"):
        report = account_window(SPEC, USAGES[approach])
        label = f"{SCENARIO}/{approach}"
        labeled.append(
            (label, report.export_record(label, SCENARIO, approach))
        )
    records = energy_export(labeled)
    front = ParetoFront.from_vectors([
        (
            str(record["cell"]),
            str(record["scenario"]),
            str(record["approach"]),
            {key: float(record[key]) for key, _max in PARETO_OBJECTIVES},
        )
        for _label, record in labeled
    ])
    for entry in front.entries:
        records.append({
            "record": "pareto",
            "cell": entry.cell,
            "scenario": entry.scenario,
            "approach": entry.approach,
            "rank": entry.rank,
            "front": entry.rank == 1,
        })
    return records


class TestGoldenFixtures:
    def test_jsonl_schema_is_pinned(self):
        assert dumps_jsonl(synthetic_export()) == GOLDEN_JSONL.read_text()

    def test_golden_export_validates(self):
        records = loads_jsonl(GOLDEN_JSONL.read_text())
        assert validate_records(records) == []

    def test_report_summary_is_pinned(self):
        records = loads_jsonl(GOLDEN_JSONL.read_text())
        assert summarize_pareto(records) == GOLDEN_SUMMARY.read_text()

    def test_front_shape(self):
        """cram-ios and manual are non-dominated; binpacking is not."""
        records = loads_jsonl(GOLDEN_JSONL.read_text())
        ranks = {
            record["approach"]: record["rank"]
            for record in records
            if record["record"] == "pareto"
        }
        assert ranks == {"manual": 1, "cram-ios": 1, "binpacking": 2}

    def test_summary_survives_a_file_round_trip(self, tmp_path):
        records = synthetic_export()
        for name in ("export.jsonl", "export.json"):
            path = tmp_path / name
            write_export(str(path), records)
            assert read_export(str(path)) == records
            assert summarize_pareto(
                read_export(str(path))
            ) == GOLDEN_SUMMARY.read_text()


class TestValidatorRejectsBadEnergyRecords:
    def broken(self, **overrides):
        records = synthetic_export()
        for record in records:
            if record["record"] == "energy":
                record.update(overrides)
                break
        return records

    def test_negative_joules_rejected(self):
        errors = validate_records(self.broken(joules=-1.0))
        assert any("joules below 0.0" in error for error in errors)

    def test_non_numeric_energy_field_rejected(self):
        errors = validate_records(self.broken(idle_joules="lots"))
        assert any("idle_joules is not a number" in error for error in errors)

    def test_delivery_rate_above_one_rejected(self):
        errors = validate_records(self.broken(delivery_rate=1.5))
        assert any("delivery_rate above 1.0" in error for error in errors)

    def test_missing_scenario_rejected(self):
        errors = validate_records(self.broken(scenario=None))
        assert any("without a scenario" in error for error in errors)

    def test_pareto_rank_zero_rejected(self):
        records = synthetic_export()
        for record in records:
            if record["record"] == "pareto":
                record["rank"] = 0
                break
        errors = validate_records(records)
        assert any("rank below 1.0" in error for error in errors)

    def test_pareto_fractional_rank_rejected(self):
        records = synthetic_export()
        for record in records:
            if record["record"] == "pareto":
                record["rank"] = 1.5
                break
        errors = validate_records(records)
        assert any("rank is not an integer" in error for error in errors)

    def test_report_refuses_invalid_export(self):
        import pytest

        with pytest.raises(ValueError, match="invalid observation export"):
            summarize_pareto(self.broken(joules=-1.0))

    def test_report_refuses_export_without_energy(self):
        import pytest

        records = [record for record in synthetic_export()
                   if record["record"] == "header"]
        with pytest.raises(ValueError, match="no energy records"):
            summarize_pareto(records)


class TestCliPareto:
    def test_run_pareto_then_report(self, tmp_path, capsys):
        """End-to-end: --pareto writes a valid export, `report pareto`
        reads it back and recomputes the same front."""
        out_path = tmp_path / "energy.jsonl"
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "binpacking",
            "--approach", "cram-ios", "--measurement-time", "10",
            "--pareto", "--energy-out", str(out_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "energy:" in captured.out
        assert "pareto ranking" in captured.out
        assert f"wrote {out_path}" in captured.err
        records = read_export(str(out_path))
        assert validate_records(records) == []
        kinds = {record["record"] for record in records}
        assert kinds == {"header", "energy", "pareto"}
        assert len([r for r in records if r["record"] == "energy"]) == 3

        assert main(["report", "pareto", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "pareto front — schema repro-obs/1, 3 cell(s)" in out
        assert "energy detail:" in out

    def test_pareto_front_is_deterministic_across_runs(self, tmp_path,
                                                       capsys):
        args = [
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "cram-ios",
            "--measurement-time", "10", "--pareto",
        ]
        outputs = []
        for path in (tmp_path / "a.jsonl", tmp_path / "b.jsonl"):
            assert main(args + ["--energy-out", str(path)]) == 0
            capsys.readouterr()
            outputs.append(path.read_text())
        assert outputs[0] == outputs[1]

    def test_energy_flag_without_pareto_prints_table_only(self, capsys):
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "binpacking", "--measurement-time", "10",
            "--energy", "idle=40,active=80",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy:" in out
        assert "pareto" not in out


def _regen() -> None:
    records = synthetic_export()
    GOLDEN_JSONL.write_text(dumps_jsonl(records))
    GOLDEN_SUMMARY.write_text(summarize_pareto(records))
    print(f"regenerated {GOLDEN_JSONL} and {GOLDEN_SUMMARY}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
