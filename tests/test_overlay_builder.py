"""Tests for Phase 3 — recursive overlay construction (paper Section V)."""

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.capacity import BrokerBin, AllocationResult
from repro.core.cram import CramAllocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.units import AllocationUnit

from conftest import make_directory, make_pool, make_spec, make_unit


@pytest.fixture
def directory():
    return make_directory([f"P{i}" for i in range(8)])


def phase2(units_per_broker, pool, directory):
    """Build a synthetic Phase-2 result: broker i ← its unit list."""
    bins = []
    for spec, units in zip(pool, units_per_broker):
        bin_ = BrokerBin(spec, directory)
        for unit in units:
            bin_.add(unit)
        bins.append(bin_)
    return AllocationResult(bins, success=True)


def builder(**kwargs):
    return OverlayBuilder(BinPackingAllocator, **kwargs)


class TestBasicConstruction:
    def test_single_phase2_broker_is_root(self, directory):
        pool = make_pool(4, bandwidth=100.0)
        units = [make_unit({"P0": range(32)}, directory)]
        result = phase2([units], pool[:1], directory)
        tree = builder().build(result, pool, directory)
        tree.validate()
        assert tree.root == pool[0].broker_id
        assert len(tree) == 1

    def test_two_leaves_get_a_parent(self, directory):
        pool = make_pool(6, bandwidth=100.0)
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, pool[:2], directory)
        tree = builder(takeover_children=False, best_fit_replacement=False).build(
            result, pool, directory
        )
        tree.validate()
        assert len(tree) == 3
        assert set(tree.children(tree.root)) == {"B00", "B01"}

    def test_leaves_keep_their_units(self, directory):
        pool = make_pool(6, bandwidth=100.0)
        unit = make_unit({"P0": range(32)}, directory)
        result = phase2([[unit]], pool[:1], directory)
        tree = builder().build(result, pool, directory)
        assert tree.broker_units[pool[0].broker_id] == [unit]

    def test_internal_brokers_hold_pseudo_units(self, directory):
        pool = make_pool(6, bandwidth=100.0)
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, pool[:2], directory)
        tree = builder(takeover_children=False, best_fit_replacement=False).build(
            result, pool, directory
        )
        root_units = tree.broker_units[tree.root]
        assert all(unit.kind == "broker" for unit in root_units)
        children = {c for u in root_units for c in u.child_broker_ids}
        assert children == {"B00", "B01"}

    def test_subscription_placement_only_real_units(self, directory):
        pool = make_pool(6, bandwidth=100.0)
        unit_a = make_unit({"P0": range(32)}, directory, sub_id="sub-a")
        unit_b = make_unit({"P1": range(32)}, directory, sub_id="sub-b")
        result = phase2([[unit_a], [unit_b]], pool[:2], directory)
        tree = builder(takeover_children=False, best_fit_replacement=False).build(
            result, pool, directory
        )
        placement = tree.subscription_placement()
        assert placement == {"sub-a": "B00", "sub-b": "B01"}

    def test_empty_phase2_still_yields_a_root(self, directory):
        pool = make_pool(3)
        result = AllocationResult([], success=True)
        tree = builder().build(result, pool, directory)
        assert len(tree) == 1

    def test_layers_shrink_to_single_root(self, directory):
        """Many leaves recurse through multiple layers to one root."""
        pool = make_pool(20, bandwidth=12.0)
        leaf_units = [
            [make_unit({adv: range(32)}, directory)] for adv in list(directory)[:6]
        ]
        result = phase2(leaf_units, pool[:6], directory)
        tree = builder().build(result, pool, directory)
        tree.validate()
        roots = [b for b in tree.brokers if tree.parent(b) is None]
        assert roots == [tree.root]

    def test_works_with_cram_as_phase3_allocator(self, directory):
        pool = make_pool(10, bandwidth=50.0)
        leaf_units = [
            [make_unit({adv: range(32)}, directory)] for adv in list(directory)[:4]
        ]
        result = phase2(leaf_units, pool[:4], directory)
        tree = OverlayBuilder(lambda: CramAllocator(metric="ios")).build(
            result, pool, directory
        )
        tree.validate()
        # All subscriptions survive whatever collapsing the optimizations do.
        assert len(tree.subscription_placement()) == 4


class TestOptimizationA:
    def test_pure_forwarder_eliminated(self, directory):
        """A parent with a single child is skipped entirely."""
        # One leaf; big remaining pool: without optimization A the
        # allocator would put the leaf's pseudo-unit on a parent with
        # exactly one child — a pure forwarder.
        pool = make_pool(4, bandwidth=100.0)
        units = [make_unit({"P0": range(32)}, directory)]
        result = phase2([units], pool[:1], directory)
        tree = builder(eliminate_pure_forwarders=True).build(result, pool, directory)
        assert len(tree) == 1  # no forwarder chain above the leaf

    def test_disabled_keeps_forwarders(self, directory):
        pool = make_pool(4, bandwidth=100.0)
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, pool[:2], directory)
        enabled = builder(
            eliminate_pure_forwarders=True,
            takeover_children=False,
            best_fit_replacement=False,
        ).build(result, pool, directory)
        # Both children share one parent here, so optimization A has
        # nothing to remove.
        assert len(enabled) == 3


class TestOptimizationB:
    def test_parent_takes_over_tiny_child(self, directory):
        """A child whose whole load fits in the parent is absorbed."""
        pool = make_pool(6, bandwidth=100.0)
        leaf_units = [
            [make_unit({"P0": range(32)}, directory, sub_id="a")],
            [make_unit({"P1": range(32)}, directory, sub_id="b")],
        ]
        result = phase2(leaf_units, pool[:2], directory)
        build = builder(takeover_children=True)
        tree = build.build(result, pool, directory)
        tree.validate()
        assert build.last_stats.children_taken_over >= 1
        # Each absorbed subscription must still be placed somewhere.
        assert set(tree.subscription_placement()) == {"a", "b"}

    def test_takeover_disabled(self, directory):
        pool = make_pool(6, bandwidth=100.0)
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, pool[:2], directory)
        build = builder(takeover_children=False)
        tree = build.build(result, pool, directory)
        assert build.last_stats.children_taken_over == 0
        assert len(tree) == 3

    def test_no_takeover_when_parent_lacks_capacity(self, directory):
        pool = make_pool(6, bandwidth=11.0)  # parent can hold streams only
        leaf_units = [
            [make_unit({"P0": range(64)}, directory) for _ in range(1)],
            [make_unit({"P1": range(64)}, directory) for _ in range(1)],
        ]
        # Each leaf carries 10 kB/s delivery; parent streams 10+10 = 20 > 11
        # would fail even the layer allocation — use separate parents.
        result = phase2(leaf_units, pool[:2], directory)
        build = builder(takeover_children=True)
        tree = build.build(result, pool, directory)
        tree.validate()
        # Parent capacity 11 kB/s cannot absorb a child's 10 kB/s units
        # alongside the other child's 10 kB/s stream.
        placement = tree.subscription_placement()
        assert len(set(placement.values())) == 2


class TestOptimizationC:
    def test_best_fit_swaps_in_smaller_broker(self, directory):
        big = [make_spec(f"BIG{i}", bandwidth=100.0) for i in range(3)]
        small = [make_spec(f"SML{i}", bandwidth=12.0) for i in range(3)]
        pool = big + small
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],  # 5 kB/s
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, big[:2], directory)
        build = builder(best_fit_replacement=True, takeover_children=False)
        tree = build.build(result, pool, directory)
        tree.validate()
        assert build.last_stats.best_fit_replacements >= 1
        # The root (stream load 10 kB/s) fits in a 12 kB/s broker.
        assert tree.root.startswith("SML")

    def test_best_fit_disabled(self, directory):
        big = [make_spec(f"BIG{i}", bandwidth=100.0) for i in range(3)]
        small = [make_spec(f"SML{i}", bandwidth=12.0) for i in range(3)]
        pool = big + small
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, big[:2], directory)
        build = builder(best_fit_replacement=False, takeover_children=False)
        tree = build.build(result, pool, directory)
        assert build.last_stats.best_fit_replacements == 0
        assert tree.root.startswith("BIG")


class TestFallback:
    def test_exhausted_pool_forces_root_among_layer(self, directory):
        """No spare brokers: one of the Phase-2 brokers becomes root."""
        pool = make_pool(2, bandwidth=100.0)
        leaf_units = [
            [make_unit({"P0": range(32)}, directory)],
            [make_unit({"P1": range(32)}, directory)],
        ]
        result = phase2(leaf_units, pool, directory)
        build = builder(takeover_children=False, best_fit_replacement=False,
                        eliminate_pure_forwarders=False)
        tree = build.build(result, pool, directory)
        tree.validate()
        assert build.last_stats.fallback_roots >= 1
        assert len(tree) == 2
