"""Tests for the fitted per-broker load estimator (online reallocation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.estimator import DEFAULT_WINDOW, BrokerLoadEstimator, LoadSample


def linear_feed(estimator, broker="b1", intercept=10.0, slope=1.0, points=6):
    for step in range(points):
        t = float(step)
        estimator.observe(LoadSample(t=t, broker_id=broker,
                                     load=intercept + slope * t))


class TestFit:
    def test_recovers_exact_line(self):
        estimator = BrokerLoadEstimator()
        linear_feed(estimator, intercept=10.0, slope=1.5)
        fitted_intercept, fitted_slope = estimator.fit("b1")
        assert fitted_intercept == pytest.approx(10.0)
        assert fitted_slope == pytest.approx(1.5)

    def test_single_sample_is_constant_fit(self):
        estimator = BrokerLoadEstimator()
        estimator.observe(LoadSample(t=4.0, broker_id="b1", load=7.0))
        assert estimator.fit("b1") == (7.0, 0.0)
        assert not estimator.fitted("b1")

    def test_coincident_timestamps_degrade_to_mean(self):
        estimator = BrokerLoadEstimator()
        estimator.observe(LoadSample(t=2.0, broker_id="b1", load=4.0))
        estimator.observe(LoadSample(t=2.0, broker_id="b1", load=8.0))
        intercept, slope = estimator.fit("b1")
        assert intercept == pytest.approx(6.0)
        assert slope == 0.0

    def test_unknown_broker_is_zero(self):
        estimator = BrokerLoadEstimator()
        assert estimator.fit("ghost") == (0.0, 0.0)
        assert estimator.predict("ghost") == 0.0

    def test_window_slides(self):
        estimator = BrokerLoadEstimator(window=3)
        # Early flat phase, then a ramp; the window must forget the
        # flat samples and fit the ramp alone.
        for t in range(10):
            load = 5.0 if t < 7 else 5.0 + 2.0 * (t - 7)
            estimator.observe(LoadSample(t=float(t), broker_id="b1", load=load))
        _, slope = estimator.fit("b1")
        assert slope == pytest.approx(2.0)


class TestPredict:
    def test_horizon_extrapolates(self):
        estimator = BrokerLoadEstimator(horizon=2.0)
        linear_feed(estimator, intercept=10.0, slope=1.0, points=6)
        # Last sample at t=5 → predicts at t=7.
        assert estimator.predict("b1") == pytest.approx(17.0)

    def test_explicit_at_overrides_horizon(self):
        estimator = BrokerLoadEstimator(horizon=5.0)
        linear_feed(estimator, intercept=0.0, slope=2.0, points=4)
        assert estimator.predict("b1", at=10.0) == pytest.approx(20.0)

    def test_prediction_clamped_at_zero(self):
        estimator = BrokerLoadEstimator()
        linear_feed(estimator, intercept=4.0, slope=-1.0, points=5)
        assert estimator.predict("b1", at=100.0) == 0.0

    def test_predicted_loads_sorted_and_complete(self):
        estimator = BrokerLoadEstimator()
        estimator.observe_loads(1.0, {"b2": 2.0, "b1": 1.0, "b3": 3.0})
        loads = estimator.predicted_loads()
        assert list(loads) == ["b1", "b2", "b3"]
        assert loads["b2"] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BrokerLoadEstimator(window=0)
        with pytest.raises(ValueError):
            BrokerLoadEstimator(horizon=-1.0)


class TestConsume:
    def test_obs_timeline_record_shape(self):
        estimator = BrokerLoadEstimator()
        estimator.consume({
            "t": 3.0,
            "broker_rates": {"b1": 5.0, "b2": 1.0},
            "queue_depth": 4,
            "in_flight": 2,
        })
        assert estimator.broker_ids == ["b1", "b2"]
        assert estimator.predict("b1") == pytest.approx(5.0)

    def test_record_without_rates_is_ignored(self):
        estimator = BrokerLoadEstimator()
        estimator.consume({"t": 3.0})
        assert estimator.broker_ids == []


class TestDrift:
    def test_zero_against_own_predictions(self):
        estimator = BrokerLoadEstimator()
        linear_feed(estimator, intercept=3.0, slope=0.5)
        assert estimator.drift(estimator.predicted_loads()) == pytest.approx(0.0)

    def test_empty_union_is_zero(self):
        assert BrokerLoadEstimator().drift({}) == 0.0

    def test_idle_baseline_broker_uses_mean_scale(self):
        estimator = BrokerLoadEstimator()
        estimator.observe(LoadSample(t=0.0, broker_id="b1", load=10.0))
        estimator.observe(LoadSample(t=1.0, broker_id="b1", load=10.0))
        # b2 was idle at the baseline; its deviation is divided by the
        # mean positive baseline load (10.0), not by ~0.
        estimator.observe(LoadSample(t=0.0, broker_id="b2", load=5.0))
        estimator.observe(LoadSample(t=1.0, broker_id="b2", load=5.0))
        drift = estimator.drift({"b1": 10.0, "b2": 0.0})
        assert drift == pytest.approx(0.5)

    def test_growth_registers(self):
        estimator = BrokerLoadEstimator()
        linear_feed(estimator, intercept=10.0, slope=1.0, points=8)
        baseline = {"b1": 10.0}
        assert estimator.drift(baseline) > 0.5


# ----------------------------------------------------------------------
# Determinism: same stream, same model — bit for bit
# ----------------------------------------------------------------------

sample_strategy = st.tuples(
    st.integers(min_value=0, max_value=50),           # time step
    st.sampled_from(["b1", "b2", "b3"]),              # broker
    st.integers(min_value=0, max_value=10_000),       # load in 0.01 kB/s
)


@settings(max_examples=50, deadline=None)
@given(st.lists(sample_strategy, max_size=60), st.integers(2, DEFAULT_WINDOW))
def test_identical_streams_fit_identically(raw_samples, window):
    streams = []
    for _ in range(2):
        estimator = BrokerLoadEstimator(window=window, horizon=1.0)
        for step, broker_id, centiload in raw_samples:
            estimator.observe(LoadSample(
                t=step / 2.0, broker_id=broker_id, load=centiload / 100.0,
            ))
        streams.append((
            estimator.broker_ids,
            [estimator.fit(broker) for broker in estimator.broker_ids],
            repr(estimator.predicted_loads()),
            estimator.drift({"b1": 1.0, "b2": 0.0}),
        ))
    assert repr(streams[0]) == repr(streams[1])


@settings(max_examples=50, deadline=None)
@given(st.lists(sample_strategy, min_size=1, max_size=40))
def test_predictions_never_negative(raw_samples):
    estimator = BrokerLoadEstimator(window=4, horizon=3.0)
    for step, broker_id, centiload in raw_samples:
        estimator.observe(LoadSample(
            t=float(step), broker_id=broker_id, load=centiload / 100.0,
        ))
    for broker_id in estimator.broker_ids:
        assert estimator.predict(broker_id) >= 0.0
