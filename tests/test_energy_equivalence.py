"""Bit-identity for energy accounting.

The energy model's core contract: attaching it is pure post-processing
of already-measured counters, so

* every non-energy output of an energy-attached run is bit-identical
  to the same run without energy accounting;
* energy totals are identical serial vs ``jobs=4`` (the spawn pool
  ships ``EnergySpec`` inside the pickled ``CellSpec``);
* energy totals are identical with and without an obs recorder;
* all of the above hold under a fault plan (crash downtime feeds the
  crashed-watts term without perturbing the simulation).
"""

from __future__ import annotations

import pickle

from repro.core.config import RunConfig
from repro.core.energy import EnergySpec
from repro.experiments.parallel import CellSpec, execute_cells
from repro.obs import recorder as obs
from repro.sim.faults import FaultPlan

from test_parallel_equivalence import comparable, tiny_homo

ENERGY = EnergySpec()

FAULTS = FaultPlan(
    crash_fraction=0.25, crash_start=4.0, downtime=5.0,
    loss_rate=0.01, jitter=0.001, seed=5,
)


def energy_cells(energy=ENERGY, observe=False, fault_plan=None):
    scenario = tiny_homo()[0]
    config = RunConfig(energy=energy) if energy is not None else None
    return [
        CellSpec(
            scenario=scenario, approach=approach, seed=11,
            observe=observe, fault_plan=fault_plan, config=config,
        )
        for approach in ("manual", "binpacking", "cram-ios")
    ]


def energy_comparable(result):
    """The energy outputs covered by the bit-identity contract."""
    return {
        "report": repr(result.energy),
        "row": {key: repr(value) for key, value in result.energy_row().items()},
    }


class TestAttachedEqualsDetached:
    def test_non_energy_outputs_are_bit_identical(self):
        detached = execute_cells(energy_cells(energy=None), jobs=1)
        attached = execute_cells(energy_cells(), jobs=1)
        for without, with_energy in zip(detached, attached):
            assert comparable(without) == comparable(with_energy)
            assert without.energy is None
            assert with_energy.energy is not None

    def test_under_faults_too(self):
        detached = execute_cells(
            energy_cells(energy=None, fault_plan=FAULTS), jobs=1
        )
        attached = execute_cells(energy_cells(fault_plan=FAULTS), jobs=1)
        crashed = False
        for without, with_energy in zip(detached, attached):
            assert comparable(without) == comparable(with_energy)
            crashed = crashed or with_energy.summary.broker_crashes > 0
        assert crashed  # the plan actually did something


class TestSerialEqualsParallel:
    def test_energy_identical_serial_vs_jobs4(self):
        cells = energy_cells()
        serial = execute_cells(cells, jobs=1)
        pooled = execute_cells(cells, jobs=4)
        for spec, one, many in zip(cells, serial, pooled):
            assert comparable(one) == comparable(many), spec.approach
            assert energy_comparable(one) == energy_comparable(many)

    def test_energy_identical_under_faults(self):
        cells = energy_cells(fault_plan=FAULTS)
        serial = execute_cells(cells, jobs=1)
        pooled = execute_cells(cells, jobs=2)
        for spec, one, many in zip(cells, serial, pooled):
            assert energy_comparable(one) == energy_comparable(many), (
                spec.approach
            )

    def test_energy_spec_survives_pickling(self):
        spec = energy_cells()[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.config.energy == ENERGY


class TestObsNeutrality:
    def test_energy_identical_with_and_without_recorder(self):
        plain = execute_cells(energy_cells(), jobs=1)
        observed_cells = energy_cells(observe=True)
        with obs.attached(obs.Recorder()):
            observed = execute_cells(observed_cells, jobs=1)
        for without, with_obs in zip(plain, observed):
            assert energy_comparable(without) == energy_comparable(with_obs)
            assert comparable(without) == comparable(with_obs)
