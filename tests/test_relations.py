"""Tests for bit-vector relationship identification."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.profiles import SubscriptionProfile
from repro.core.relations import Relation, relationship

from conftest import make_profile


class TestRelationship:
    def test_equal(self):
        a = make_profile({"A": [1, 2, 3]})
        b = make_profile({"A": [1, 2, 3]})
        assert relationship(a, b) is Relation.EQUAL

    def test_superset_subset(self):
        big = make_profile({"A": [1, 2, 3]})
        small = make_profile({"A": [2, 3]})
        assert relationship(big, small) is Relation.SUPERSET
        assert relationship(small, big) is Relation.SUBSET

    def test_intersect(self):
        a = make_profile({"A": [1, 2]})
        b = make_profile({"A": [2, 3]})
        assert relationship(a, b) is Relation.INTERSECT

    def test_empty(self):
        a = make_profile({"A": [1]})
        b = make_profile({"A": [2]})
        assert relationship(a, b) is Relation.EMPTY

    def test_empty_across_publishers(self):
        a = make_profile({"A": [1]})
        b = make_profile({"B": [1]})
        assert relationship(a, b) is Relation.EMPTY

    def test_superset_across_publishers(self):
        big = make_profile({"A": [1], "B": [2, 3]})
        small = make_profile({"B": [2]})
        assert relationship(big, small) is Relation.SUPERSET

    def test_intersect_mixed_publishers(self):
        a = make_profile({"A": [1], "B": [2]})
        b = make_profile({"B": [2], "C": [5]})
        assert relationship(a, b) is Relation.INTERSECT

    def test_both_empty_profiles(self):
        a = SubscriptionProfile(capacity=8)
        b = SubscriptionProfile(capacity=8)
        assert relationship(a, b) is Relation.EMPTY


class TestInverse:
    def test_inverse_mapping(self):
        assert Relation.SUPERSET.inverse() is Relation.SUBSET
        assert Relation.SUBSET.inverse() is Relation.SUPERSET
        assert Relation.EQUAL.inverse() is Relation.EQUAL
        assert Relation.INTERSECT.inverse() is Relation.INTERSECT
        assert Relation.EMPTY.inverse() is Relation.EMPTY


sets = st.sets(st.integers(0, 40), max_size=20)


@given(a=sets, b=sets)
def test_prop_relationship_matches_set_semantics(a, b):
    pa = make_profile({"A": a}, capacity=64)
    pb = make_profile({"A": b}, capacity=64)
    rel = relationship(pa, pb)
    if not a & b:
        assert rel is Relation.EMPTY
    elif a == b:
        assert rel is Relation.EQUAL
    elif b < a:
        assert rel is Relation.SUPERSET
    elif a < b:
        assert rel is Relation.SUBSET
    else:
        assert rel is Relation.INTERSECT


@given(a=sets, b=sets)
def test_prop_relationship_symmetry(a, b):
    pa = make_profile({"A": a}, capacity=64)
    pb = make_profile({"A": b}, capacity=64)
    assert relationship(pa, pb).inverse() is relationship(pb, pa)
