"""Golden-file pins for the observation export schema and `report obs`.

Two fixtures live in ``tests/data/``:

* ``obs_export_golden.jsonl`` — a synthetic two-cell export, pinning the
  JSONL record shapes byte-for-byte (schema drift must bump
  ``SCHEMA_VERSION`` and regenerate deliberately).
* ``obs_summary_golden.txt`` — the ``report obs`` terminal summary for
  that export (wall columns excluded, so the text is deterministic).

Regenerate both after an intentional schema change with::

    PYTHONPATH=src python tests/test_obs_golden.py --regen
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.cli import main
from repro.obs.export import (
    dumps_jsonl,
    loads_jsonl,
    merge_observations,
    read_export,
    validate_records,
    write_export,
)
from repro.obs.recorder import Recorder
from repro.obs.report import summarize

DATA_DIR = pathlib.Path(__file__).parent / "data"
GOLDEN_JSONL = DATA_DIR / "obs_export_golden.jsonl"
GOLDEN_SUMMARY = DATA_DIR / "obs_summary_golden.txt"


def synthetic_export() -> list:
    """A deterministic two-cell export (manual clock, no wall time)."""
    cells = []
    for label, offset in (("homo-8/manual", 0.0), ("homo-8/cram-ios", 0.5)):
        clock = [offset]
        recorder = Recorder(clock=lambda c=clock: c[0])
        with recorder.span("reconfigure", approach=label.split("/")[1]) as outer:
            with recorder.span("phase1.gather"):
                clock[0] += 1.25
            with recorder.span("phase2.allocate", units=4):
                clock[0] += 0.5
            outer.set(applied=True)
        recorder.add("engine.events_processed", 128 + int(offset * 100))
        recorder.add("matching.probe_cache_hits", 7)
        recorder.add("metrics.deliveries", 42)
        recorder.sample(clock[0], queue_depth=3, in_flight=2,
                        broker_rates={"B1": 1.5, "B2": 0.25})
        clock[0] += 1.0
        recorder.sample(clock[0], queue_depth=1, in_flight=1,
                        broker_rates={"B1": 2.0, "B2": 0.0})
        cells.append((label, recorder.snapshot(include_wall=False)))
    return merge_observations(cells)


class TestGoldenFixtures:
    def test_jsonl_schema_is_pinned(self):
        assert dumps_jsonl(synthetic_export()) == GOLDEN_JSONL.read_text()

    def test_golden_export_validates(self):
        records = loads_jsonl(GOLDEN_JSONL.read_text())
        assert validate_records(records) == []

    def test_report_summary_is_pinned(self):
        records = loads_jsonl(GOLDEN_JSONL.read_text())
        assert summarize(records, include_wall=False) == GOLDEN_SUMMARY.read_text()

    def test_summary_survives_a_file_round_trip(self, tmp_path):
        records = synthetic_export()
        for name in ("export.jsonl", "export.json"):
            path = tmp_path / name
            write_export(str(path), records)
            assert read_export(str(path)) == records
            assert summarize(read_export(str(path)),
                             include_wall=False) == GOLDEN_SUMMARY.read_text()


class TestCliReportObs:
    def test_run_obs_then_report(self, tmp_path, capsys):
        """End-to-end: --obs writes a valid export, `report obs` reads it."""
        obs_path = tmp_path / "obs.jsonl"
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "binpacking", "--measurement-time", "10",
            "--obs", str(obs_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert f"wrote {obs_path}" in captured.err
        records = read_export(str(obs_path))
        assert validate_records(records) == []
        cells = records[0]["cells"]
        assert len(cells) == 1 and cells[0].endswith("/binpacking")

        assert main(["report", "obs", str(obs_path), "--no-wall"]) == 0
        out = capsys.readouterr().out
        assert "obs summary — schema repro-obs/1, 1 cell(s)" in out
        assert "phase1.gather" in out
        assert "engine.events_processed" in out
        assert cells[0] in out
        assert "wall_s" not in out

    def test_report_includes_wall_by_default(self, capsys):
        assert main(["report", "obs", str(GOLDEN_JSONL)]) == 0
        out = capsys.readouterr().out
        # The golden export carries no wall readings, but the column
        # is rendered unless --no-wall strips it.
        assert "wall_s" in out

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", "obs", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_invalid_export_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record":"counter","cell":"c","name":"n","value":1}\n')
        assert main(["report", "obs", str(path)]) == 2
        assert "invalid observation export" in capsys.readouterr().err


def _regenerate() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    records = synthetic_export()
    GOLDEN_JSONL.write_text(dumps_jsonl(records))
    GOLDEN_SUMMARY.write_text(summarize(records, include_wall=False))
    print(f"wrote {GOLDEN_JSONL}")
    print(f"wrote {GOLDEN_SUMMARY}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
