"""Tests for the attribute predicate language."""

import pytest

from repro.pubsub.predicate import (
    Operator,
    Predicate,
    covers,
    intersects,
    parse_predicates,
)


class TestOperatorParsing:
    def test_symbolic_tokens(self):
        assert Operator.parse("=") is Operator.EQ
        assert Operator.parse("<") is Operator.LT
        assert Operator.parse(">=") is Operator.GE
        assert Operator.parse("<>") is Operator.NEQ

    def test_aliases(self):
        assert Operator.parse("==") is Operator.EQ
        assert Operator.parse("!=") is Operator.NEQ

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            Operator.parse("~=")


class TestMatching:
    def test_equality(self):
        predicate = Predicate("symbol", Operator.EQ, "YHOO")
        assert predicate.matches("YHOO")
        assert not predicate.matches("MSFT")

    def test_numeric_comparisons(self):
        assert Predicate("low", Operator.LT, 20.0).matches(19.9)
        assert not Predicate("low", Operator.LT, 20.0).matches(20.0)
        assert Predicate("low", Operator.LE, 20.0).matches(20.0)
        assert Predicate("volume", Operator.GT, 100).matches(101)
        assert Predicate("volume", Operator.GE, 100).matches(100)

    def test_numeric_op_rejects_string_value_at_construction(self):
        with pytest.raises(ValueError):
            Predicate("low", Operator.LT, "twenty")

    def test_numeric_op_on_string_publication_value(self):
        assert not Predicate("low", Operator.LT, 20.0).matches("cheap")

    def test_boolean_not_treated_as_number(self):
        assert not Predicate("low", Operator.LT, 20.0).matches(True)

    def test_string_operators(self):
        assert Predicate("date", Operator.PREFIX, "5-").matches("5-Sep-96")
        assert Predicate("date", Operator.SUFFIX, "-96").matches("5-Sep-96")
        assert Predicate("date", Operator.CONTAINS, "Sep").matches("5-Sep-96")
        assert not Predicate("date", Operator.PREFIX, "6-").matches("5-Sep-96")

    def test_present_matches_anything(self):
        assert Predicate("date", Operator.PRESENT).matches("x")
        assert Predicate("date", Operator.PRESENT).matches(0)

    def test_neq(self):
        predicate = Predicate("closeEqualsLow", Operator.NEQ, "true")
        assert predicate.matches("false")
        assert not predicate.matches("true")


class TestIntersects:
    def test_different_attributes_raise(self):
        a = Predicate("x", Operator.EQ, 1)
        b = Predicate("y", Operator.EQ, 1)
        with pytest.raises(ValueError):
            intersects(a, b)

    def test_equality_vs_range(self):
        eq = Predicate("low", Operator.EQ, 10.0)
        below = Predicate("low", Operator.LT, 20.0)
        above = Predicate("low", Operator.GT, 20.0)
        assert intersects(eq, below)
        assert not intersects(eq, above)

    def test_overlapping_ranges(self):
        a = Predicate("low", Operator.GT, 10.0)
        b = Predicate("low", Operator.LT, 20.0)
        assert intersects(a, b)

    def test_disjoint_ranges(self):
        a = Predicate("low", Operator.GT, 20.0)
        b = Predicate("low", Operator.LT, 10.0)
        assert not intersects(a, b)

    def test_touching_endpoints_inclusive(self):
        a = Predicate("low", Operator.GE, 10.0)
        b = Predicate("low", Operator.LE, 10.0)
        assert intersects(a, b)

    def test_touching_endpoints_exclusive(self):
        a = Predicate("low", Operator.GT, 10.0)
        b = Predicate("low", Operator.LT, 10.0)
        assert not intersects(a, b)
        half = Predicate("low", Operator.GE, 10.0)
        assert not intersects(half, b)

    def test_present_always_intersects(self):
        a = Predicate("x", Operator.PRESENT)
        b = Predicate("x", Operator.EQ, "v")
        assert intersects(a, b)

    def test_string_ops_conservative(self):
        a = Predicate("date", Operator.PREFIX, "5-")
        b = Predicate("date", Operator.SUFFIX, "-96")
        assert intersects(a, b)

    def test_symmetry(self):
        eq = Predicate("low", Operator.EQ, 10.0)
        lt = Predicate("low", Operator.LT, 5.0)
        assert intersects(eq, lt) == intersects(lt, eq)


class TestCovers:
    def test_wider_range_covers_narrower(self):
        wide = Predicate("low", Operator.LT, 100.0)
        narrow = Predicate("low", Operator.LT, 50.0)
        assert covers(wide, narrow)
        assert not covers(narrow, wide)

    def test_range_covers_equality_point(self):
        wide = Predicate("low", Operator.LT, 100.0)
        point = Predicate("low", Operator.EQ, 50.0)
        assert covers(wide, point)

    def test_present_covers_everything(self):
        assert covers(Predicate("x", Operator.PRESENT), Predicate("x", Operator.EQ, 1))

    def test_same_predicate_covers_itself(self):
        predicate = Predicate("date", Operator.PREFIX, "5-")
        assert covers(predicate, predicate)

    def test_equal_bound_inclusivity(self):
        le = Predicate("low", Operator.LE, 10.0)
        lt = Predicate("low", Operator.LT, 10.0)
        assert covers(le, lt)
        assert not covers(lt, le)

    def test_different_attribute_never_covers(self):
        assert not covers(Predicate("x", Operator.PRESENT), Predicate("y", Operator.EQ, 1))

    def test_contains_covers_longer_contains(self):
        general = Predicate("s", Operator.CONTAINS, "ab")
        specific = Predicate("s", Operator.CONTAINS, "xaby")
        assert covers(general, specific)


class TestParse:
    def test_parse_paper_notation(self):
        predicates = parse_predicates(
            [("class", "=", "STOCK"), ("symbol", "=", "YHOO"), ("low", "<", 25.0)]
        )
        assert len(predicates) == 3
        assert predicates[2].operator is Operator.LT
        assert predicates[2].value == 25.0
