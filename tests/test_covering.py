"""Tests for optional SIENA/PADRES-style subscription covering."""

import pytest

from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.pubsub.network import PubSubNetwork

from test_broker_routing import make_publisher, make_subscriber


def covered_network(enable_covering=True, brokers=3):
    network = PubSubNetwork(profile_capacity=64, enable_covering=enable_covering)
    for index in range(brokers):
        network.add_broker(BrokerSpec(
            broker_id=f"b{index}",
            total_output_bandwidth=1000.0,
            delay_function=MatchingDelayFunction(base=1e-5, per_subscription=1e-8),
        ))
    for index in range(brokers - 1):
        network.connect_brokers(f"b{index}", f"b{index + 1}")
    return network


class TestSuppression:
    def test_covered_subscription_not_forwarded(self):
        network = covered_network()
        broad = make_subscriber("broad")  # [class][symbol] — covers everything
        narrow = make_subscriber("narrow", extra=[("low", "<", 50.0)])
        network.attach_subscriber(broad, "b2")
        network.attach_subscriber(narrow, "b2")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        # b2 (edge broker) knows both; upstream brokers only the coverer.
        assert network.brokers["b2"].srt_size == 2
        assert network.brokers["b1"].srt_size == 1
        assert network.brokers["b0"].srt_size == 1

    def test_disabled_forwards_everything(self):
        network = covered_network(enable_covering=False)
        broad = make_subscriber("broad")
        narrow = make_subscriber("narrow", extra=[("low", "<", 50.0)])
        network.attach_subscriber(broad, "b2")
        network.attach_subscriber(narrow, "b2")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        assert network.brokers["b1"].srt_size == 2

    def test_deliveries_unaffected_by_suppression(self):
        for enabled in (False, True):
            network = covered_network(enable_covering=enabled)
            broad = make_subscriber("broad")
            narrow = make_subscriber("narrow", extra=[("low", "<", 10**9)])
            network.attach_subscriber(broad, "b2")
            network.attach_subscriber(narrow, "b2")
            network.attach_publisher(make_publisher(rate=20.0), "b0")
            network.run(2.0)
            assert broad.delivered > 0
            assert narrow.delivered == broad.delivered, f"covering={enabled}"

    def test_disjoint_subscriptions_both_forwarded(self):
        network = covered_network()
        yhoo = make_subscriber("sy", "YHOO")
        msft = make_subscriber("sm", "MSFT")
        network.attach_subscriber(yhoo, "b2")
        network.attach_subscriber(msft, "b2")
        network.attach_publisher(make_publisher("YHOO"), "b0")
        network.attach_publisher(make_publisher("MSFT"), "b0")
        network.run(1.0)
        assert network.brokers["b1"].srt_size == 2

    def test_suppression_is_per_link(self):
        """A subscription covered on one link still travels other links."""
        network = covered_network(brokers=2)
        network.add_broker(BrokerSpec(
            broker_id="b2", total_output_bandwidth=1000.0,
            delay_function=MatchingDelayFunction(base=1e-5, per_subscription=1e-8),
        ))
        network.connect_brokers("b1", "b2")  # chain b0 - b1 - b2
        broad = make_subscriber("broad")
        narrow = make_subscriber("narrow", extra=[("low", "<", 50.0)])
        network.attach_subscriber(broad, "b0")    # broad enters at b0
        network.attach_subscriber(narrow, "b1")   # narrow at the middle
        network.attach_publisher(make_publisher(rate=20.0), "b2")
        network.run(2.0)
        # narrow forwards toward b2 regardless of broad (broad reached b1
        # only as a remote subscription; covering considers what *this*
        # broker forwarded on that link).
        assert narrow.delivered >= 0  # sanity; the key checks follow
        assert any(
            sub.sub_id == "narrow"
            for sub, _d in network.brokers["b2"]._srt.entries()
        ) or any(
            sub.sub_id == "broad"
            for sub, _d in network.brokers["b2"]._srt.entries()
        )


class TestCovererRetraction:
    def test_unsubscribing_coverer_reissues_covered(self):
        network = covered_network()
        broad = make_subscriber("broad")
        narrow = make_subscriber("narrow", extra=[("low", "<", 10**9)])
        network.attach_subscriber(broad, "b2")
        network.attach_subscriber(narrow, "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(1.0)
        assert network.brokers["b1"].srt_size == 1
        broad.unsubscribe("broad")
        network.run(1.0)
        # The narrow subscription must now be installed upstream...
        assert any(
            sub.sub_id == "narrow"
            for sub, _d in network.brokers["b1"]._srt.entries()
        )
        # ...and keep receiving.
        before = narrow.delivered
        network.run(2.0)
        assert narrow.delivered > before

    def test_unsubscribing_covered_is_local(self):
        network = covered_network()
        broad = make_subscriber("broad")
        narrow = make_subscriber("narrow", extra=[("low", "<", 10**9)])
        network.attach_subscriber(broad, "b2")
        network.attach_subscriber(narrow, "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(1.0)
        narrow.unsubscribe("narrow")
        network.run(1.0)
        assert network.brokers["b1"].srt_size == 1  # coverer still there
        before = broad.delivered
        network.run(1.0)
        assert broad.delivered > before

    def test_second_coverer_keeps_suppression(self):
        """With two identical coverers, retracting one re-issues the
        covered subscription against the other (it gets re-suppressed
        by the forwarding path immediately)."""
        network = covered_network()
        broad_a = make_subscriber("broadA")
        broad_b = make_subscriber("broadB")
        narrow = make_subscriber("narrow", extra=[("low", "<", 10**9)])
        for client in (broad_a, broad_b, narrow):
            network.attach_subscriber(client, "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(1.0)
        broad_a.unsubscribe("broadA")
        network.run(1.0)
        before = narrow.delivered
        network.run(2.0)
        assert narrow.delivered > before
