"""Integration tests for broker routing on small live overlays."""

import pytest

from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.message import Publication, Subscription
from repro.pubsub.network import PubSubNetwork
from repro.pubsub.predicate import parse_predicates
from repro.workloads.stocks import stock_advertisement


def make_network(broker_count=3, bandwidth=1000.0):
    network = PubSubNetwork(profile_capacity=64)
    for index in range(broker_count):
        network.add_broker(
            BrokerSpec(
                broker_id=f"b{index}",
                total_output_bandwidth=bandwidth,
                delay_function=MatchingDelayFunction(base=1e-5, per_subscription=1e-8),
            )
        )
    for index in range(broker_count - 1):
        network.connect_brokers(f"b{index}", f"b{index + 1}")
    return network


def make_publisher(symbol="YHOO", rate=10.0, quotes=None):
    if quotes is None:
        quotes = iter(
            {"class": "STOCK", "symbol": symbol, "low": 10.0 + i, "volume": 100 + i}
            for i in range(10**6)
        )
    return PublisherClient(
        client_id=f"pub-{symbol}",
        advertisement=stock_advertisement(symbol),
        feed=quotes,
        rate=rate,
        size_kb=0.5,
    )


def make_subscriber(name, symbol="YHOO", extra=(), keep_history=True):
    predicates = parse_predicates(
        [("class", "=", "STOCK"), ("symbol", "=", symbol), *extra]
    )
    subscription = Subscription(sub_id=name, subscriber_id=name, predicates=predicates)
    return SubscriberClient(name, [subscription], keep_history=keep_history)


class TestEndToEndDelivery:
    def test_same_broker_delivery(self):
        network = make_network(1)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b0")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        assert subscriber.delivered > 0

    def test_delivery_across_chain(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        assert subscriber.delivered > 0
        assert all(record.hops == 2 for record in subscriber.history)

    def test_subscription_before_advertisement_still_routes(self):
        """Order independence: sub first, then adv floods to it."""
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.run(0.5)  # subscription settles with no adv anywhere
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        assert subscriber.delivered > 0

    def test_non_matching_subscriber_gets_nothing(self):
        network = make_network(2)
        subscriber = make_subscriber("s1", symbol="MSFT")
        network.attach_subscriber(subscriber, "b1")
        network.attach_publisher(make_publisher("YHOO"), "b0")
        network.run(1.0)
        assert subscriber.delivered == 0

    def test_inequality_filtering(self):
        network = make_network(2)
        all_sub = make_subscriber("all")
        low_sub = make_subscriber("low", extra=[("low", "<", 12.0)])
        network.attach_subscriber(all_sub, "b1")
        network.attach_subscriber(low_sub, "b1")
        network.attach_publisher(make_publisher(), "b0")  # low = 10, 11, 12, ...
        network.run(1.0)
        assert all_sub.delivered > low_sub.delivered > 0

    def test_publication_not_sent_to_empty_branches(self):
        """Brokers with no matching subscribers never see publications."""
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b0")  # same broker as publisher
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        counters_b2 = network.metrics.counters("b2")
        assert counters_b2.publications_in == 0

    def test_delivery_delay_positive_and_bounded(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        delays = [record.delay for record in subscriber.history]
        assert all(delay > 0 for delay in delays)
        assert max(delays) < 0.5  # ample headroom at this tiny load

    def test_two_publishers_two_symbols(self):
        network = make_network(3)
        yhoo = make_subscriber("sy", "YHOO")
        msft = make_subscriber("sm", "MSFT")
        network.attach_subscriber(yhoo, "b0")
        network.attach_subscriber(msft, "b2")
        network.attach_publisher(make_publisher("YHOO"), "b1")
        network.attach_publisher(make_publisher("MSFT"), "b1")
        network.run(1.0)
        assert yhoo.delivered > 0
        assert msft.delivered > 0
        assert {r.adv_id for r in yhoo.history} == {"adv-YHOO"}
        assert {r.adv_id for r in msft.history} == {"adv-MSFT"}


class TestBandwidthLimiter:
    def test_throttled_broker_delays_delivery(self):
        fast = make_network(2, bandwidth=10000.0)
        slow = make_network(2, bandwidth=5.0)  # 0.1 s per 0.5 kB message
        for network in (fast, slow):
            subscriber = make_subscriber(f"s-{id(network)}")
            network.attach_subscriber(subscriber, "b1")
            network.attach_publisher(make_publisher(rate=20.0), "b0")
            network.run(2.0)
            network._last_sub = subscriber  # stash for assertions
        fast_delay = max(r.delay for r in fast._last_sub.history)
        slow_delay = max(r.delay for r in slow._last_sub.history)
        assert slow_delay > fast_delay * 5

    def test_bytes_accounted(self):
        network = make_network(2)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b1")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        assert network.metrics.counters("b0").bytes_out_kb > 0


class TestMatchingDelay:
    def test_cpu_queue_orders_processing(self):
        """A slow-matching broker serializes its message processing."""
        network = PubSubNetwork(profile_capacity=64)
        network.add_broker(
            BrokerSpec(
                "slow",
                total_output_bandwidth=10000.0,
                delay_function=MatchingDelayFunction(base=0.02, per_subscription=0.0),
            )
        )
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "slow")
        network.attach_publisher(make_publisher(rate=100.0), "slow")
        network.run(1.0)
        # 100 msg/s against a 50 msg/s matcher: deliveries lag behind.
        delays = [record.delay for record in subscriber.history]
        assert delays[-1] > delays[0]


class TestReset:
    def test_reset_clears_routing_state(self):
        network = make_network(2)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b1")
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        broker = network.brokers["b0"]
        assert broker.srt_size > 0
        broker.reset()
        assert broker.srt_size == 0
        assert not broker.neighbors
