"""Tests for CBC profiling and CROC's BIR/BIA gathering protocol."""

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.core.croc import Croc, ReconfigurationError
from repro.pubsub.cbc import CrocBackendComponent
from repro.pubsub.message import Publication

from test_broker_routing import make_network, make_publisher, make_subscriber


def make_publication(adv_id="adv-YHOO", message_id=1, size_kb=0.5):
    return Publication(
        adv_id=adv_id,
        message_id=message_id,
        attributes={"class": "STOCK", "symbol": "YHOO"},
        publish_time=0.0,
        size_kb=size_kb,
    )


class TestCbcProfiling:
    def test_records_deliveries_into_bit_vectors(self):
        cbc = CrocBackendComponent("b0", profile_capacity=32)
        from repro.pubsub.message import Subscription
        from repro.pubsub.predicate import parse_predicates

        subscription = Subscription(
            "s1", "s1", parse_predicates([("symbol", "=", "YHOO")])
        )
        cbc.register_subscription(subscription)
        for message_id in (1, 3, 5):
            cbc.on_delivery("s1", make_publication(message_id=message_id))
        report = cbc.report(BrokerSpec("b0", 100.0), now=10.0)
        record = report.subscriptions[0]
        assert record.sub_id == "s1"
        assert record.profile.vector("adv-YHOO").to_list() == [1, 3, 5]

    def test_measures_publisher_rate_and_bandwidth(self):
        cbc = CrocBackendComponent("b0")
        for message_id in range(1, 11):
            cbc.on_local_publication(
                make_publication(message_id=message_id), now=float(message_id)
            )
        report = cbc.report(BrokerSpec("b0", 100.0), now=10.0)
        publisher = report.publishers[0]
        # 10 messages between t=1 and t=10 → ~1.1 msg/s measured.
        assert publisher.publication_rate == pytest.approx(10 / 9, rel=0.01)
        assert publisher.bandwidth == pytest.approx(0.5 * 10 / 9, rel=0.01)
        assert publisher.last_message_id == 10

    def test_unknown_subscription_delivery_ignored(self):
        cbc = CrocBackendComponent("b0")
        cbc.on_delivery("ghost", make_publication())  # must not raise

    def test_unregister_drops_profile(self):
        cbc = CrocBackendComponent("b0")
        from repro.pubsub.message import Subscription
        from repro.pubsub.predicate import parse_predicates

        subscription = Subscription(
            "s1", "s1", parse_predicates([("symbol", "=", "YHOO")])
        )
        cbc.register_subscription(subscription)
        cbc.unregister_subscription("s1")
        report = cbc.report(BrokerSpec("b0", 100.0), now=1.0)
        assert report.subscriptions == []

    def test_reset_forgets_everything(self):
        cbc = CrocBackendComponent("b0")
        cbc.on_local_publication(make_publication(), now=1.0)
        cbc.reset()
        report = cbc.report(BrokerSpec("b0", 100.0), now=2.0)
        assert report.publishers == []


class TestGatherProtocol:
    def test_gather_collects_every_broker(self):
        network = make_network(4)
        network.attach_subscriber(make_subscriber("s1"), "b3")
        network.attach_publisher(make_publisher(), "b0")
        network.run(3.0)
        croc = Croc(allocator_factory=BinPackingAllocator)
        gathered = croc.gather(network)
        assert len(gathered.broker_pool) == 4
        assert {spec.broker_id for spec in gathered.broker_pool} == {
            "b0", "b1", "b2", "b3",
        }

    def test_gather_returns_profiled_subscriptions(self):
        network = make_network(3)
        network.attach_subscriber(make_subscriber("s1"), "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(3.0)
        gathered = Croc(allocator_factory=BinPackingAllocator).gather(network)
        assert gathered.subscription_count == 1
        record = gathered.records[0]
        assert record.home_broker == "b2"
        assert record.profile.cardinality > 10

    def test_gather_builds_global_directory(self):
        network = make_network(3)
        network.attach_subscriber(make_subscriber("s1"), "b2")
        network.attach_publisher(make_publisher(rate=10.0), "b0")
        network.run(3.0)
        gathered = Croc(allocator_factory=BinPackingAllocator).gather(network)
        assert "adv-YHOO" in gathered.directory
        publisher = gathered.directory["adv-YHOO"]
        assert publisher.publication_rate == pytest.approx(10.0, rel=0.2)

    def test_gather_via_specific_broker(self):
        network = make_network(3)
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        gathered = Croc(allocator_factory=BinPackingAllocator).gather(
            network, via_broker="b2"
        )
        assert len(gathered.broker_pool) == 3

    def test_gather_empty_network_raises(self):
        from repro.pubsub.network import PubSubNetwork

        croc = Croc(allocator_factory=BinPackingAllocator)
        with pytest.raises(ReconfigurationError):
            croc.gather(PubSubNetwork())

    def test_gather_single_broker(self):
        network = make_network(1)
        network.attach_publisher(make_publisher(), "b0")
        network.run(1.0)
        gathered = Croc(allocator_factory=BinPackingAllocator).gather(network)
        assert len(gathered.broker_pool) == 1


class TestReconfigure:
    def test_full_pipeline_produces_live_deployment(self):
        network = make_network(4, bandwidth=100.0)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b3")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.run(4.0)
        croc = Croc(allocator_factory=BinPackingAllocator)
        report = croc.reconfigure(network)
        assert report.allocated_brokers < 4
        delivered_before = subscriber.delivered
        network.run(2.0)
        assert subscriber.delivered > delivered_before  # still flowing

    def test_publisher_relocated_to_subscriber_broker(self):
        network = make_network(4, bandwidth=100.0)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b3")
        publisher = make_publisher(rate=20.0)
        network.attach_publisher(publisher, "b0")
        network.run(4.0)
        croc = Croc(allocator_factory=BinPackingAllocator)
        report = croc.reconfigure(network)
        # GRAPE (load mode) pulls the publisher onto the broker hosting
        # its only subscriber.
        assert publisher.broker_id == report.deployment.subscription_placement["s1"]

    def test_reconfiguration_failure_when_pool_cannot_fit(self):
        network = make_network(2, bandwidth=0.001)
        network.attach_subscriber(make_subscriber("s1"), "b1")
        network.attach_publisher(make_publisher(rate=50.0), "b0")
        network.run(4.0)
        croc = Croc(allocator_factory=BinPackingAllocator)
        with pytest.raises(ReconfigurationError):
            croc.reconfigure(network)
