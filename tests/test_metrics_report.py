"""Tests for metrics collection and report formatting."""

import pytest

from repro.experiments.report import format_rows, reduction, series
from repro.pubsub.metrics import MetricsCollector
from repro.sim.engine import Simulator


class TestMetricsCollector:
    def _collector(self):
        sim = Simulator()
        return sim, MetricsCollector(sim)

    def test_counters_accumulate(self):
        _sim, metrics = self._collector()
        metrics.on_receive("b0", is_publication=True)
        metrics.on_send("b0", size_kb=0.5, is_publication=True, to_client=True)
        counters = metrics.counters("b0")
        assert counters.messages_in == 1
        assert counters.messages_out == 1
        assert counters.publications_in == 1
        assert counters.deliveries == 1
        assert counters.bytes_out_kb == pytest.approx(0.5)

    def test_delivery_stats(self):
        _sim, metrics = self._collector()
        metrics.on_delivery(delay=0.1, hops=2)
        metrics.on_delivery(delay=0.3, hops=4)
        summary = self._summarize(metrics, duration=10.0)
        assert summary.delivery_count == 2
        assert summary.mean_delivery_delay == pytest.approx(0.2)
        assert summary.mean_hop_count == pytest.approx(3.0)
        assert summary.max_delivery_delay == pytest.approx(0.3)

    def _summarize(self, metrics, duration, pool_size=4, active=("b0",),
                   bandwidths=None):
        metrics._sim.schedule(duration, lambda: None)
        metrics._sim.run()
        return metrics.summary(pool_size, list(active), bandwidths)

    def test_avg_rate_over_pool_vs_active(self):
        _sim, metrics = self._collector()
        for _ in range(40):
            metrics.on_receive("b0", is_publication=True)
        summary = self._summarize(metrics, duration=10.0, pool_size=4)
        # 40 messages / 10 s / 4 pool brokers = 1; over 1 active = 4.
        assert summary.avg_broker_message_rate == pytest.approx(1.0)
        assert summary.avg_active_broker_message_rate == pytest.approx(4.0)

    def test_reset_window(self):
        sim, metrics = self._collector()
        metrics.on_receive("b0", is_publication=False)
        metrics.on_delivery(0.1, 1)
        sim.schedule(5.0, lambda: None)
        sim.run()
        metrics.reset_window()
        assert metrics.window_start == 5.0
        summary = metrics.summary(4, ["b0"])
        assert summary.total_broker_messages == 0
        assert summary.delivery_count == 0

    def test_utilization(self):
        _sim, metrics = self._collector()
        metrics.on_send("b0", size_kb=50.0, is_publication=True)
        summary = self._summarize(
            metrics, duration=10.0, bandwidths={"b0": 10.0}
        )
        # 50 kB over 10 s = 5 kB/s of a 10 kB/s broker.
        assert summary.mean_utilization == pytest.approx(0.5)
        assert summary.max_utilization == pytest.approx(0.5)

    def test_no_deliveries_no_division_by_zero(self):
        _sim, metrics = self._collector()
        summary = self._summarize(metrics, duration=1.0)
        assert summary.mean_delivery_delay == 0.0
        assert summary.mean_hop_count == 0.0

    def test_as_row_keys(self):
        _sim, metrics = self._collector()
        row = self._summarize(metrics, duration=1.0).as_row()
        assert "avg_broker_message_rate" in row
        assert "mean_hop_count" in row


class TestReportHelpers:
    def test_reduction(self):
        assert reduction(100.0, 8.0) == pytest.approx(0.92)
        assert reduction(0.0, 5.0) == 0.0

    def test_format_rows_alignment(self):
        rows = [
            {"approach": "manual", "brokers": 80},
            {"approach": "cram-ios", "brokers": 7},
        ]
        text = format_rows(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "approach" in lines[0]
        assert "cram-ios" in lines[3]

    def test_format_rows_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_rows(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_series_extraction(self):
        rows = [{"x": 1, "y": 10}, {"x": 2, "y": 20}]
        points = series(rows, "x", "y")
        assert points == [{"x": 1, "y": 10}, {"x": 2, "y": 20}]
