"""Oracle checks across randomized reconfigurations.

Whatever deployment is applied — random trees, random placements,
repeatedly — the routing substrate must keep its two guarantees: no
false-positive deliveries, and template subscribers keep receiving.
This catches stale-state bugs in broker reset / rewiring / client
migration that single-reconfiguration tests can miss.
"""

import pytest

from repro.core.baselines import automatic_deployment, manual_deployment
from repro.pubsub.matching import matches
from repro.sim.rng import SeededRng

from test_routing_oracle import build_oracle_network


@pytest.mark.parametrize("seed", range(3))
def test_random_redeployments_preserve_correctness(seed):
    network, subscribers, publishers = build_oracle_network(seed)
    network.run(2.0)
    rng = SeededRng(seed, "redeploy")
    pool = network.broker_pool()
    sub_ids = [
        subscription.sub_id
        for subscriber in subscribers
        for subscription in subscriber.subscriptions
    ]
    adv_ids = [publisher.adv_id for publisher in publishers]
    for round_index in range(3):
        builder = automatic_deployment if round_index % 2 else manual_deployment
        deployment = builder(pool, sub_ids, adv_ids, rng.child(str(round_index)))
        network.apply_deployment(deployment)
        for subscriber in subscribers:
            subscriber.received.clear()
        network.run(4.0)
        delivered = 0
        for subscriber in subscribers:
            for publication in subscriber.received:
                delivered += 1
                assert any(
                    matches(subscription, publication)
                    for subscription in subscriber.subscriptions
                ), f"false positive after redeploy round {round_index}"
        assert delivered > 0, f"nothing delivered after redeploy {round_index}"


@pytest.mark.parametrize("seed", range(2))
def test_no_duplicate_deliveries_across_redeployments(seed):
    """Each (adv, message) pair reaches a subscriber at most once,
    even with redeployments in between (modulo the redeployment
    boundary itself, which clears history here)."""
    network, subscribers, publishers = build_oracle_network(seed)
    network.run(2.0)
    rng = SeededRng(seed, "dupes")
    pool = network.broker_pool()
    sub_ids = [
        subscription.sub_id
        for subscriber in subscribers
        for subscription in subscriber.subscriptions
    ]
    adv_ids = [publisher.adv_id for publisher in publishers]
    deployment = manual_deployment(pool, sub_ids, adv_ids, rng)
    network.apply_deployment(deployment)
    for subscriber in subscribers:
        subscriber.received.clear()
    network.run(5.0)
    for subscriber in subscribers:
        keys = [
            (publication.adv_id, publication.message_id)
            for publication in subscriber.received
        ]
        assert len(keys) == len(set(keys)), (
            f"{subscriber.client_id} received duplicates"
        )
