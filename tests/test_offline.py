"""Tests for offline profile generation (simulator-free Phase 1)."""

import pytest

from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous


@pytest.fixture(scope="module")
def gathered():
    scenario = cluster_homogeneous(subscriptions_per_publisher=20, scale=0.15)
    return offline_gather(scenario, seed=3)


class TestOfflineGather:
    def test_shapes(self, gathered):
        scenario = cluster_homogeneous(subscriptions_per_publisher=20, scale=0.15)
        assert len(gathered.broker_pool) == scenario.broker_count
        assert gathered.subscription_count == scenario.total_subscriptions
        assert len(gathered.directory) == scenario.publishers

    def test_directory_rates_match_scenario(self, gathered):
        scenario = cluster_homogeneous(subscriptions_per_publisher=20, scale=0.15)
        for publisher in gathered.directory.values():
            assert publisher.publication_rate == pytest.approx(
                scenario.publication_rate
            )
            assert publisher.last_message_id == scenario.profile_capacity

    def test_template_subscriptions_have_full_vectors(self, gathered):
        """Templates sink every quote of their symbol: density 1.0."""
        full = []
        for record in gathered.records:
            adv_id = next(iter(record.profile.adv_ids()), None)
            if adv_id is None:
                continue  # inequality threshold matched nothing
            window = gathered.directory[adv_id].last_message_id
            if record.profile.cardinality == window:
                full.append(record)
        # 40% of the workload are templates.
        assert len(full) >= 0.35 * gathered.subscription_count

    def test_profiles_single_publisher_each(self, gathered):
        for record in gathered.records:
            assert len(record.profile) <= 1  # one symbol per subscription

    def test_window_override(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=5, scale=0.1)
        small = offline_gather(scenario, seed=3, window=16)
        for publisher in small.directory.values():
            assert publisher.last_message_id == 16

    def test_deterministic(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=10, scale=0.1)
        a = offline_gather(scenario, seed=9)
        b = offline_gather(scenario, seed=9)
        for ra, rb in zip(a.records, b.records):
            assert ra.sub_id == rb.sub_id
            assert ra.profile == rb.profile

    def test_units_buildable(self, gathered):
        units = units_from_records(gathered.records, gathered.directory)
        assert len(units) == gathered.subscription_count
        assert all(unit.delivery_bandwidth >= 0 for unit in units)

    def test_matches_simulated_profiles_in_shape(self):
        """Offline and simulated profiling agree on template densities."""
        from repro.core.binpacking import BinPackingAllocator
        from repro.core.croc import Croc
        from repro.experiments.runner import ExperimentRunner

        scenario = cluster_homogeneous(
            subscriptions_per_publisher=10, scale=0.1, profile_capacity=96
        )
        offline = offline_gather(scenario, seed=4)
        runner = ExperimentRunner(scenario, seed=4)
        network = runner._build_network()
        runner._deploy_manual(network)
        network.run(scenario.derived_profiling_time())
        live = Croc(allocator_factory=BinPackingAllocator).gather(network)

        def density_histogram(gathered):
            densities = []
            for record in gathered.records:
                for adv_id, vector in record.profile.items():
                    densities.append(round(vector.cardinality / vector.capacity, 1))
            return sorted(densities)

        offline_template_share = sum(
            1 for d in density_histogram(offline) if d >= 0.9
        )
        live_template_share = sum(1 for d in density_histogram(live) if d >= 0.9)
        # Both see the same 40% template population at full density.
        assert offline_template_share > 0
        assert live_template_share > 0
