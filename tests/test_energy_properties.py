"""Property tests for the energy model and the Pareto front.

Hypothesis-driven invariants:

* the extracted front is actually non-dominated, and the full ranking
  is independent of input order;
* window energy is monotone in every watts knob and additive across
  brokers;
* joules per delivered publication is never negative.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy import EnergySpec, WindowUsage, account_window
from repro.experiments.sweeps import PARETO_OBJECTIVES, ParetoFront, dominates

finite = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                   allow_infinity=False)

specs = st.builds(
    EnergySpec,
    idle_watts=finite,
    active_watts=finite,
    matching_joules=finite,
    transmission_joules_per_kb=finite,
    crashed_watts=finite,
)


@st.composite
def usages(draw):
    broker_count = draw(st.integers(min_value=0, max_value=6))
    brokers = tuple(f"B{i}" for i in range(broker_count))
    duration = draw(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False, allow_infinity=False))

    def per_broker(value_strategy):
        return {broker: draw(value_strategy) for broker in brokers}

    return WindowUsage(
        duration_s=duration,
        pool_size=draw(st.integers(min_value=broker_count, max_value=12)),
        active_brokers=brokers,
        messages=per_broker(finite),
        bytes_out_kb=per_broker(finite),
        utilization=per_broker(
            st.floats(min_value=-0.5, max_value=1.5,
                      allow_nan=False, allow_infinity=False)
        ),
        downtime_s=per_broker(
            st.floats(min_value=-1.0, max_value=150.0,
                      allow_nan=False, allow_infinity=False)
        ),
        deliveries=draw(st.integers(min_value=0, max_value=10_000)),
        mean_delay_s=draw(finite),
        delivery_rate=draw(st.floats(min_value=0.0, max_value=1.0,
                                     allow_nan=False, allow_infinity=False)),
    )


# Objective vectors stay in a moderate range so dominance comparisons
# exercise both clear wins and EPSILON-scale ties.
vectors = st.tuples(
    st.integers(min_value=1, max_value=12).map(float),  # allocated_brokers
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False),                    # joules
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
              allow_infinity=False),                    # mean_delay_ms
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
              allow_infinity=False),                    # delivery_rate
)


def front_items(points):
    keys = [key for key, _max in PARETO_OBJECTIVES]
    return [
        (f"scn/a{i}", "scn", f"a{i}", dict(zip(keys, vector)))
        for i, vector in enumerate(points)
    ]


class TestParetoFrontProperties:
    @settings(max_examples=60)
    @given(st.lists(vectors, min_size=1, max_size=8))
    def test_front_is_non_dominated(self, points):
        front = ParetoFront.from_vectors(front_items(points))
        assert front.entries  # every point lands in some rank
        assert len(front.entries) == len(points)
        rank1 = front.front()
        assert rank1
        for entry in rank1:
            assert entry.rank == 1
            for other in front.entries:
                assert not dominates(other.vector, entry.vector)

    @settings(max_examples=60)
    @given(st.lists(vectors, min_size=1, max_size=8))
    def test_deeper_ranks_are_dominated_by_shallower_ones(self, points):
        front = ParetoFront.from_vectors(front_items(points))
        for entry in front.entries:
            if entry.rank == 1:
                continue
            shallower = [
                other.vector for other in front.entries
                if other.rank == entry.rank - 1
            ]
            assert any(
                dominates(vector, entry.vector) for vector in shallower
            )

    @settings(max_examples=40)
    @given(
        st.lists(vectors, min_size=1, max_size=7).flatmap(
            lambda points: st.tuples(
                st.just(points),
                st.permutations(list(range(len(points)))),
            )
        )
    )
    def test_ranking_is_order_independent(self, points_and_perm):
        points, perm = points_and_perm
        original = ParetoFront.from_vectors(front_items(points))
        keys = [key for key, _max in PARETO_OBJECTIVES]
        shuffled_items = [
            (f"scn/a{i}", "scn", f"a{i}", dict(zip(keys, points[i])))
            for i in perm
        ]
        again = ParetoFront.from_vectors(shuffled_items)
        assert again.entries == original.entries

    @settings(max_examples=40)
    @given(st.lists(vectors, min_size=1, max_size=8))
    def test_rank_of_agrees_with_entries(self, points):
        front = ParetoFront.from_vectors(front_items(points))
        for entry in front.entries:
            assert front.rank_of(entry.scenario, entry.approach) == entry.rank


class TestEnergyModelProperties:
    @settings(max_examples=80)
    @given(usages(), specs, finite)
    def test_energy_monotone_in_idle_watts(self, usage, spec, extra):
        lower = account_window(spec, usage)
        higher = account_window(
            EnergySpec(
                idle_watts=spec.idle_watts + extra,
                active_watts=spec.active_watts,
                matching_joules=spec.matching_joules,
                transmission_joules_per_kb=spec.transmission_joules_per_kb,
                crashed_watts=spec.crashed_watts,
            ),
            usage,
        )
        assert higher.joules >= lower.joules

    @settings(max_examples=80)
    @given(usages(), specs, finite)
    def test_energy_monotone_in_active_watts(self, usage, spec, extra):
        lower = account_window(spec, usage)
        higher = account_window(
            EnergySpec(
                idle_watts=spec.idle_watts,
                active_watts=spec.active_watts + extra,
                matching_joules=spec.matching_joules,
                transmission_joules_per_kb=spec.transmission_joules_per_kb,
                crashed_watts=spec.crashed_watts,
            ),
            usage,
        )
        assert higher.joules >= lower.joules

    @settings(max_examples=80)
    @given(usages(), specs)
    def test_energy_additive_across_brokers(self, usage, spec):
        whole = account_window(spec, usage)
        parts = 0.0
        for broker in usage.active_brokers:
            single = WindowUsage(
                duration_s=usage.duration_s,
                pool_size=usage.pool_size,
                active_brokers=(broker,),
                messages=usage.messages,
                bytes_out_kb=usage.bytes_out_kb,
                utilization=usage.utilization,
                downtime_s=usage.downtime_s,
                deliveries=usage.deliveries,
            )
            parts += account_window(spec, single).joules
        assert whole.joules == parts

    @settings(max_examples=80)
    @given(usages(), specs)
    def test_joules_per_delivery_never_negative(self, usage, spec):
        report = account_window(spec, usage)
        assert report.joules_per_delivery >= 0.0
        assert report.joules >= 0.0
        assert report.mean_watts >= 0.0
        assert report.downtime_s >= 0.0
