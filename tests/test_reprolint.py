"""reprolint: one focused test per rule, plus engine/CLI behaviour.

Each rule gets three fixtures: a positive hit, a clean pass, and the
positive hit silenced by a suppression comment.  A final test asserts
the real ``src`` tree lints clean, which is what CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.engine import (
    LintError,
    Module,
    all_rules,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.tools.lint import main

REPO_ROOT = Path(__file__).resolve().parents[1]

CORE = "src/repro/core/fixture.py"
SIM = "src/repro/sim/fixture.py"
WORKLOADS = "src/repro/workloads/fixture.py"
EXPERIMENTS = "src/repro/experiments/fixture.py"

#: rule -> (bad source, virtual path, clean source, suppressed source).
RULE_CASES = {
    "unmanaged-random": (
        "import random\n",
        WORKLOADS,
        "from repro.sim.rng import SeededRng\n",
        "import random  # reprolint: disable=unmanaged-random\n",
    ),
    "wall-clock": (
        "import time\n\ndef stamp():\n    return time.time()\n",
        CORE,
        "import time\n\ndef stamp():\n    return time.perf_counter()\n",
        "import time\n\ndef stamp():\n    return time.time()  # reprolint: disable=wall-clock\n",
    ),
    "float-equality": (
        "def idle(input_rate):\n    return input_rate == 0\n",
        CORE,
        "def idle(count):\n    return count == 0\n",
        "def idle(input_rate):\n"
        "    return input_rate == 0  # reprolint: disable=float-equality\n",
    ),
    "mutable-default": (
        "def gather(into=[]):\n    return into\n",
        CORE,
        "def gather(into=None):\n    return into or []\n",
        "def gather(into=[]):  # reprolint: disable=mutable-default\n    return into\n",
    ),
    "future-annotations": (
        "x = 1\n",
        CORE,
        "from __future__ import annotations\n\nx = 1\n",
        "x = 1  # reprolint: disable=future-annotations\n",
    ),
    "return-annotation": (
        "def topology():\n    return None\n",
        CORE,
        "def topology() -> None:\n    return None\n",
        "def topology():  # reprolint: disable=return-annotation\n    return None\n",
    ),
    "bare-except": (
        "try:\n    x = 1\nexcept:\n    pass\n",
        CORE,
        "try:\n    x = 1\nexcept ValueError:\n    pass\n",
        "try:\n    x = 1\nexcept:  # reprolint: disable=bare-except\n    pass\n",
    ),
    "allocator-signature": (
        "class GreedyAllocator:\n"
        "    def allocate(self, units, brokers):\n"
        "        return None\n",
        CORE,
        "class GreedyAllocator:\n"
        "    def allocate(self, units, pool, directory):\n"
        "        return None  # reprolint: disable=return-annotation\n",
        "class GreedyAllocator:\n"
        "    def allocate(self, units, brokers):  # reprolint: disable=allocator-signature\n"
        "        return None\n",
    ),
    "unpicklable-worker": (
        "def launch(pool, spec):\n"
        "    return pool.submit(lambda: spec)\n",
        EXPERIMENTS,
        "def run_spec(spec):\n"
        "    return spec\n"
        "\n"
        "def launch(pool, specs):\n"
        "    return [pool.submit(run_spec, spec) for spec in specs]\n",
        "def launch(pool, spec):\n"
        "    return pool.submit(lambda: spec)  # reprolint: disable=unpicklable-worker\n",
    ),
    "wall-clock-output": (
        "import time\n\ndef stamp():\n    return time.perf_counter()\n",
        EXPERIMENTS,
        "def stamp(sim):\n    return sim.now\n",
        "import time\n\ndef stamp():\n"
        "    return time.perf_counter()  # reprolint: disable=wall-clock-output\n",
    ),
    "unused-import": (
        "import math\n\nx = 1\n",
        CORE,
        "import math\n\nx = math.pi\n",
        "import math  # reprolint: disable=unused-import\n\nx = 1\n",
    ),
}


def findings_for(rule_name, source, path):
    rules = resolve_rules([rule_name])
    return lint_source(source, path=path, rules=rules)


@pytest.mark.parametrize("rule_name", sorted(RULE_CASES))
def test_rule_positive_hit(rule_name):
    bad, path, _clean, _suppressed = RULE_CASES[rule_name]
    findings = findings_for(rule_name, bad, path)
    assert findings, f"{rule_name} missed its fixture violation"
    assert all(finding.rule == rule_name for finding in findings)


@pytest.mark.parametrize("rule_name", sorted(RULE_CASES))
def test_rule_clean_pass(rule_name):
    _bad, path, clean, _suppressed = RULE_CASES[rule_name]
    assert findings_for(rule_name, clean, path) == []


@pytest.mark.parametrize("rule_name", sorted(RULE_CASES))
def test_rule_suppression_comment(rule_name):
    _bad, path, _clean, suppressed = RULE_CASES[rule_name]
    assert findings_for(rule_name, suppressed, path) == []


# ----------------------------------------------------------------------
# Rule-specific edges
# ----------------------------------------------------------------------


def test_unmanaged_random_allows_core_rng_itself():
    assert findings_for("unmanaged-random", "import random\n", "src/repro/core/rng.py") == []


def test_unmanaged_random_catches_numpy_forms():
    for source in (
        "import numpy.random\n",
        "from numpy import random\n",
        "import numpy as np\n\nnp.random.seed(1)\n",
    ):
        assert findings_for("unmanaged-random", source, CORE), source


def test_wall_clock_scoped_to_replayable_packages():
    source = "import time\n\ndef stamp():\n    return time.time()\n"
    assert findings_for("wall-clock", source, EXPERIMENTS) == []
    for path in (CORE, SIM, WORKLOADS):
        assert findings_for("wall-clock", source, path), path


def test_wall_clock_catches_datetime_now():
    source = "import datetime\n\ndef stamp():\n    return datetime.datetime.now()\n"
    assert findings_for("wall-clock", source, WORKLOADS)


def test_float_equality_flags_float_literals():
    assert findings_for("float-equality", "ok = value == 0.0\n", EXPERIMENTS)


def test_float_equality_ignores_orderings():
    source = "def fits(rate, max_rate):\n    return rate <= max_rate\n"
    assert findings_for("float-equality", source, CORE) == []


def test_return_annotation_only_in_core():
    source = "def topology():\n    return None\n"
    assert findings_for("return-annotation", source, EXPERIMENTS) == []
    assert findings_for("return-annotation", "def _private():\n    pass\n", CORE) == []


def test_allocator_signature_accepts_repo_allocators():
    source = (
        "class FbfAllocator:\n"
        "    def allocate(self, units, pool, directory):\n"
        "        return None\n"
    )
    findings = findings_for("allocator-signature", source, CORE)
    assert findings == []


def test_allocator_signature_reaches_registry_importing_modules():
    """A plugin outside core/ is held to the contract once it imports
    the registry — that import is how allocators get registered."""
    body = (
        "class PluginAllocator:\n"
        "    def allocate(self, units, brokers):\n"
        "        return None\n"
    )
    for import_line in (
        "import repro.core.allocators\n",
        "from repro.core.allocators import register\n",
        "from repro.core import allocators\n",
    ):
        findings = findings_for(
            "allocator-signature", import_line + body, EXPERIMENTS
        )
        assert findings, import_line
    # Without the registry import the same module is out of scope.
    assert findings_for("allocator-signature", body, EXPERIMENTS) == []
    # And a registry-importing module with the right signature is clean.
    conforming = (
        "from repro.core import allocators\n"
        "class PluginAllocator:\n"
        "    def allocate(self, units, pool, directory):\n"
        "        return None\n"
    )
    assert findings_for("allocator-signature", conforming, EXPERIMENTS) == []


def test_wall_clock_output_allows_audited_modules():
    source = "import time\n\ndef stamp():\n    return time.perf_counter()\n"
    for path in (
        "src/repro/obs/recorder.py",
        "src/repro/obs/fixture.py",
        "src/repro/core/croc.py",
        "src/repro/experiments/runner.py",
    ):
        assert findings_for("wall-clock-output", source, path) == [], path


def test_wall_clock_output_flags_every_monotonic_timer():
    for call in ("time.monotonic()", "time.perf_counter_ns()", "time.process_time()"):
        source = f"import time\n\ndef stamp():\n    return {call}\n"
        assert findings_for("wall-clock-output", source, CORE), call


def test_wall_clock_output_ignores_sim_clock_reads():
    source = "def stamp(sim):\n    return sim.now\n"
    for path in (CORE, SIM, EXPERIMENTS):
        assert findings_for("wall-clock-output", source, path) == [], path


def test_unpicklable_worker_flags_nested_function():
    source = (
        "def launch(pool):\n"
        "    def work():\n"
        "        return 1\n"
        "    return pool.submit(work)\n"
    )
    findings = findings_for("unpicklable-worker", source, EXPERIMENTS)
    assert findings and "locally defined function 'work'" in findings[0].message


def test_unpicklable_worker_flags_lambda_valued_name():
    source = "work = lambda: 1\n\ndef launch(pool):\n    return pool.submit(work)\n"
    findings = findings_for("unpicklable-worker", source, EXPERIMENTS)
    assert findings and "lambda-valued name 'work'" in findings[0].message


def test_unpicklable_worker_flags_pool_constructor_kwargs():
    for source in (
        "def boot(snapshot):\n"
        "    return ProcessPoolExecutor(initializer=lambda: snapshot)\n",
        "def boot():\n"
        "    def init():\n"
        "        return None\n"
        "    return multiprocessing.Process(target=init)\n",
    ):
        assert findings_for("unpicklable-worker", source, EXPERIMENTS), source


def test_unpicklable_worker_ignores_non_pool_callables():
    for source in (
        # lambdas to plain containers / non-pool methods are fine
        "def gather(out):\n    out.append(lambda: 1)\n",
        # sorting keys, progress callbacks, etc. are not pool workers
        "def order(rows):\n    return sorted(rows, key=lambda row: row[0])\n",
        # module-level initializer is picklable by reference
        "def init():\n    return None\n"
        "\n"
        "def boot():\n"
        "    return ProcessPoolExecutor(initializer=init)\n",
    ):
        assert findings_for("unpicklable-worker", source, EXPERIMENTS) == [], source


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------


def test_disable_file_suppresses_everywhere():
    source = (
        "# reprolint: disable-file=bare-except\n"
        "try:\n    x = 1\nexcept:\n    pass\n"
        "try:\n    y = 2\nexcept:\n    pass\n"
    )
    assert findings_for("bare-except", source, CORE) == []


def test_disable_all_suppresses_every_rule():
    source = "import random  # reprolint: disable=all\n"
    assert lint_source(source, path=WORKLOADS, rules=resolve_rules(["unmanaged-random"])) == []


def test_unknown_rule_selection_raises():
    with pytest.raises(LintError):
        resolve_rules(["no-such-rule"])


def test_registry_matches_rule_cases():
    names = {rule.name for rule in all_rules()}
    assert names == set(RULE_CASES)


def test_module_package_parts_fallback():
    module = Module("x = 1\n", "fixture.py")
    assert module.package_parts == ("fixture.py",)
    assert not module.in_package("core")


def test_findings_sorted_and_located():
    source = "import random\n\n\ndef gather(into=[]):\n    return into\n"
    findings = lint_source(
        source,
        path=WORKLOADS,
        rules=resolve_rules(["unmanaged-random", "mutable-default"]),
    )
    assert [finding.rule for finding in findings] == ["unmanaged-random", "mutable-default"]
    assert findings[0].line == 1 and findings[1].line == 4


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def write_fixture(tmp_path, name, source):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


def test_cli_exits_nonzero_per_rule(tmp_path, capsys):
    for index, (rule_name, case) in enumerate(sorted(RULE_CASES.items())):
        bad, path, _clean, _suppressed = case
        target = write_fixture(tmp_path / str(index), path, bad)
        code = main([str(target), "--select", rule_name])
        out = capsys.readouterr().out
        assert code == 1, rule_name
        assert rule_name in out


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    target = write_fixture(
        tmp_path, "clean.py", "from __future__ import annotations\n\nx = 1\n"
    )
    assert main([str(target)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    target = write_fixture(tmp_path, CORE, "import random\nx = 1\n")
    code = main([str(target), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["checked_files"] == 1
    assert {finding["rule"] for finding in payload["findings"]} == {
        "unmanaged-random",
        "future-annotations",
        "unused-import",
    }
    assert all(finding["line"] >= 1 for finding in payload["findings"])


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main(["--select", "bogus", str(REPO_ROOT / "src")]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_name in RULE_CASES:
        assert rule_name in out


# ----------------------------------------------------------------------
# The repository itself must lint clean
# ----------------------------------------------------------------------


def test_src_tree_lints_clean():
    findings, checked = lint_paths([REPO_ROOT / "src"])
    assert checked > 50
    assert findings == [], "\n".join(str(finding) for finding in findings)


def test_capability_vocabulary_mirrors_registry():
    # repro.tools is an import leaf (the layering gate bars it from
    # repro.core), so contracts.py carries its own copy of the
    # capability vocabulary.  This pin keeps the two sets identical.
    from repro.core.allocators import KNOWN_CAPABILITIES as registry_vocab
    from repro.tools.contracts import KNOWN_CAPABILITIES as lint_vocab

    assert lint_vocab == registry_vocab
