"""The paper's Figure 3 scenario, reconstructed bit-for-bit.

S1 has 36 bits, S2 has 16 bits, their intersection is the 8 shaded
bits; S1 covers a family of 2x2-block subscriptions (4 bits each) and
S2 covers 1x1-block subscriptions (1 bit each).  The paper computes:

* IOS(S1, S2)            = 8²  / (36+16) ≈ 1.23  (text rounds via 60 → 1.07)
* IOS(S1, one 2x2 block) = 4²  / (36+4)  = 0.4
* IOS(S2, one 1x1 block) = 1²  / (16+1)  ≈ 0.059 (text: 1²/25 with the
  pre-merge convention)

and argues pairwise clustering would merge S1+S2 first, whereas
one-to-many clustering (optimization 3) should first merge each parent
with its covered subscriptions because IOS(S1, all its blocks) =
12²/48 = 3 exceeds IOS(S1, S2).

This module checks our metric reproduces those orderings and that CRAM
with optimization 3 indeed clusters the covered set before the
S1+S2 pair.
"""

import pytest

from repro.core.closeness import ios_metric
from repro.core.cram import CramAllocator
from repro.core.profiles import merge_profiles
from repro.core.relations import Relation, relationship
from repro.core.units import units_from_records

from conftest import make_directory, make_record, make_pool

# Bit layout (one publisher "A", window 64):
#   S1 = bits 0..35 (36 bits)
#   S2 = bits 28..43 (16 bits) → overlap = 28..35 (8 bits)
S1_BITS = range(0, 36)
S2_BITS = range(28, 44)
# Covered blocks: three disjoint 4-bit blocks inside S1's exclusive
# region, and four 1-bit blocks inside S2's exclusive region.
S1_BLOCKS = [range(0, 4), range(4, 8), range(8, 12)]
S2_BLOCKS = [[36], [38], [40], [42]]


@pytest.fixture
def directory():
    return make_directory(["A"], rate=10.0, bandwidth=10.0, last_message_id=63)


def records():
    recs = [
        make_record({"A": S1_BITS}, sub_id="S1"),
        make_record({"A": S2_BITS}, sub_id="S2"),
    ]
    for index, block in enumerate(S1_BLOCKS):
        recs.append(make_record({"A": block}, sub_id=f"S1-block-{index}"))
    for index, block in enumerate(S2_BLOCKS):
        recs.append(make_record({"A": block}, sub_id=f"S2-block-{index}"))
    return recs


class TestFigure3Numbers:
    def test_cardinalities(self):
        recs = {record.sub_id: record for record in records()}
        assert recs["S1"].profile.cardinality == 36
        assert recs["S2"].profile.cardinality == 16
        assert recs["S1"].profile.intersection_cardinality(
            recs["S2"].profile
        ) == 8

    def test_pairwise_closeness_ordering(self):
        recs = {record.sub_id: record for record in records()}
        s1, s2 = recs["S1"].profile, recs["S2"].profile
        block = recs["S1-block-0"].profile
        small = recs["S2-block-0"].profile
        ios_pair = ios_metric(s1, s2)
        ios_block = ios_metric(s1, block)
        assert ios_pair == pytest.approx(64 / 52)
        assert ios_block == pytest.approx(16 / 40)
        # The pairwise trap: S1+S2 looks better than S1+block...
        assert ios_pair > ios_block
        # S2's blocks fall outside S2 here, used only as covered set.
        assert relationship(s1, block) is Relation.SUPERSET

    def test_covered_set_beats_the_pair(self):
        """IOS(S1, union of its covered blocks) exceeds IOS(S1, S2)."""
        recs = {record.sub_id: record for record in records()}
        s1 = recs["S1"].profile
        covered_union = merge_profiles(
            recs[f"S1-block-{index}"].profile for index in range(3)
        )
        assert covered_union.cardinality == 12
        ios_cgs = ios_metric(covered_union, s1)
        ios_pair = ios_metric(s1, recs["S2"].profile)
        assert ios_cgs == pytest.approx(144 / 48)
        assert ios_cgs > ios_pair


class TestCramOnFigure3:
    def test_one_to_many_clusters_covered_blocks_with_parent(self, directory):
        units = units_from_records(records(), directory)
        cram = CramAllocator(metric="ios", enable_one_to_many=True)
        result = cram.allocate(units, make_pool(6, bandwidth=1000.0), directory)
        assert result.success
        assert cram.last_stats.merges >= 1
        # Somewhere in the final pool, S1 is clustered together with at
        # least one of its covered blocks.
        placement = result.subscription_placement()
        clustered_with_s1 = set()
        for bin_ in result.bins:
            for unit in bin_.units:
                ids = set(unit.member_ids)
                if "S1" in ids:
                    clustered_with_s1 = ids
        assert any(
            sub_id.startswith("S1-block-") for sub_id in clustered_with_s1
        ), f"S1 ended up clustered with {sorted(clustered_with_s1)}"
        assert len(placement) == len(units)

    def test_disabled_one_to_many_pairs_s1_s2_first(self, directory):
        units = units_from_records(records(), directory)
        cram = CramAllocator(metric="ios", enable_one_to_many=False,
                             max_iterations=1)
        result = cram.allocate(units, make_pool(6, bandwidth=1000.0), directory)
        assert result.success
        if cram.last_stats.merges:
            merged_ids = set()
            for bin_ in result.bins:
                for unit in bin_.units:
                    if unit.subscription_count > 1:
                        merged_ids = set(unit.member_ids)
            assert merged_ids == {"S1", "S2"}
