"""Fixture negative control: the engine module itself may use heapq."""

from __future__ import annotations

import heapq


def push(heap, entry):
    heapq.heappush(heap, entry)
