"""Fixture: a private event heap maintained outside the engine."""

from __future__ import annotations

import heapq
from heapq import heappop


def pop_earliest(queue):
    heapq.heappush(queue, (0.0, 0, None))
    return heappop(queue)
