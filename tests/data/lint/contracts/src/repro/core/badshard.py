"""Fixture: shard-merge helpers that iterate unordered collections."""

from __future__ import annotations


def merge_shard_results(outcomes):
    groups = []
    for outcome in outcomes.values():
        groups.append(outcome)
    return groups


def combine_shard_outputs(results, extra=None):
    return [item for item in set(results)]


def merge_rows(rows):
    # Negative control: same pattern, but not a shard-merge name.
    return [row for row in rows.values()]


def collect_shard_stats(stats):
    # Negative control: iterates a sorted local, not a raw parameter.
    ordered = sorted(stats)
    return [entry for entry in ordered]
