"""Fixture: energy-model float functions comparing with raw operators."""

from __future__ import annotations


def idle_energy_joules(duration_s: float, watts: float) -> float:
    if duration_s <= 0.0:  # seeded violation: raw <= in an energy fn
        return 0.0
    return duration_s * watts


def peak_watts(samples) -> float:
    best = 0.0
    for sample in samples:
        if sample > best:  # seeded violation: raw > in a watts fn
            best = sample
    return best


def mean_watts(joules: float, duration_s: float) -> float:
    # Negative control: comparisons routed through the floats helpers.
    from repro.core.floats import approx_zero

    if approx_zero(duration_s):
        return 0.0
    return joules / duration_s


def mean_delay_ms(total: float, count: float) -> float:
    # Negative control: float return but not an energy-model name.
    if count <= 0.0:
        return 0.0
    return total / count


def energy_label(joules: float) -> str:
    # Negative control: energy name but not a float return.
    if joules > 1000.0:
        return "hot"
    return "cool"
