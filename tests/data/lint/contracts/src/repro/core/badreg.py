"""Fixture: every api-contract violation family in one module."""

from __future__ import annotations

from repro.core import allocators


class WrongAllocator:
    def allocate(self, units, brokers):
        return None


def make_wrong(**_):
    return WrongAllocator


allocators.register("lambda-builder", lambda **_: WrongAllocator)
allocators.register("wrong-signature", make_wrong)
allocators.register_spec(
    allocators.AllocatorSpec(
        "typo-capability",
        make_wrong,
        capabilities=("incremental", "telepathic"),
    )
)

__all__ = ["WrongAllocator", "ghost_export"]
