"""Fixture: the other half of an import-time cycle."""

from __future__ import annotations

from repro.sim.cycle_a import alpha


def beta():
    return alpha
