"""Fixture: one half of an import-time cycle."""

from __future__ import annotations

from repro.sim.cycle_b import beta


def alpha():
    return beta
