"""Fixture: a bottom-layer module importing a top-layer package."""

from __future__ import annotations

from repro.experiments.runner import run_experiment


def shortcut():
    return run_experiment
