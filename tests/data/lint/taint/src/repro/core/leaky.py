"""Fixture: determinism taint reaching every sink class (all findings)."""

from __future__ import annotations

import os
import time


def allocate(self, units, pool, directory):
    order = {unit for unit in units}
    picked = list(order)
    return picked


def wall_report():
    started = time.time()
    print(started)


def env_row():
    mode = os.environ.get("REPRO_MODE", "default")
    return {"mode": mode}


def as_row():
    return env_row()
