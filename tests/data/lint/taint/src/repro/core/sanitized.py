"""Fixture: the same shapes with sanitizers applied (zero findings)."""

from __future__ import annotations


def allocate(self, units, pool, directory):
    order = {unit for unit in units}
    picked = sorted(order)
    return picked


def count_row(units):
    distinct = {unit for unit in units}
    return {"count": len(distinct)}
