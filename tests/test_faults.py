"""Fault injection, robust gather, and degraded-mode reconfiguration.

Covers the :class:`~repro.sim.faults.FaultPlan` data model, the
:class:`~repro.pubsub.faults.FaultInjector` runtime semantics (crash,
recover, link failure, loss, jitter), CROC's per-broker gather timeout
with retry/backoff and partial-gather planning from cached profiles,
and the rollback paths of :meth:`Croc.reconfigure`.  The empty-plan
bit-identity contract lives in ``test_fault_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.croc import Croc, ReconfigurationError
from repro.core.deployment import BrokerTree, Deployment
from repro.experiments.continuous import ContinuousReconfigurator
from repro.sim.faults import CRASH, FaultEvent, FaultPlan, LINK_DOWN, RECOVER
from repro.sim.rng import SeededRng

from test_broker_routing import make_network, make_publisher, make_subscriber


# ----------------------------------------------------------------------
# FaultEvent / FaultPlan: pure data
# ----------------------------------------------------------------------
class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(1.0, "meteor", ("b0",))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(-1.0, CRASH, ("b0",))

    def test_arity_enforced(self):
        with pytest.raises(ValueError, match="1 endpoint"):
            FaultEvent(0.0, CRASH, ("b0", "b1"))
        with pytest.raises(ValueError, match="2 endpoint"):
            FaultEvent(0.0, LINK_DOWN, ("b0",))

    def test_recoveries_sort_before_crashes_at_same_time(self):
        crash = FaultEvent(5.0, CRASH, ("b0",))
        recover = FaultEvent(5.0, RECOVER, ("b1",))
        assert sorted([crash, recover], key=lambda e: e.sort_key) == [recover, crash]


class TestFaultPlan:
    def test_builders_chain_and_expand_downtime(self):
        plan = FaultPlan().crash(3.0, "b1", downtime=2.0).link_down(4.0, "b2", "b0")
        kinds = [(event.kind, event.target) for event in plan.events]
        assert (CRASH, ("b1",)) in kinds
        assert (RECOVER, ("b1",)) in kinds
        assert (LINK_DOWN, ("b0", "b2")) in kinds  # endpoints sorted

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(loss_rate=0.01).is_empty
        assert not FaultPlan(jitter=0.001).is_empty
        assert not FaultPlan(crash_fraction=0.1).is_empty
        assert not FaultPlan().crash(1.0, "b0").is_empty

    def test_validation(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FaultPlan(loss_rate=1.0)
        with pytest.raises(ValueError, match="jitter"):
            FaultPlan(jitter=-0.1)
        with pytest.raises(ValueError, match="crash_fraction"):
            FaultPlan(crash_fraction=1.5)

    def test_schedule_for_samples_deterministically(self):
        brokers = [f"b{i}" for i in range(10)]
        plan = FaultPlan(crash_fraction=0.3, crash_start=5.0, crash_stagger=1.0,
                         seed=42)
        first = plan.schedule_for(brokers)
        second = plan.schedule_for(brokers)
        assert first == second
        crashes = [event for event in first if event.kind == CRASH]
        assert len(crashes) == 3
        assert [event.time for event in crashes] == [5.0, 6.0, 7.0]

    def test_schedule_for_crashes_at_least_one_broker(self):
        plan = FaultPlan(crash_fraction=0.01, seed=1)
        events = plan.schedule_for(["b0", "b1", "b2"])
        assert sum(1 for event in events if event.kind == CRASH) == 1

    def test_schedule_for_downtime_generates_recoveries(self):
        plan = FaultPlan(crash_fraction=0.5, crash_start=2.0, downtime=3.0, seed=7)
        events = plan.schedule_for(["b0", "b1"])
        kinds = sorted(event.kind for event in events)
        assert kinds == [CRASH, RECOVER]
        crash = next(e for e in events if e.kind == CRASH)
        recover = next(e for e in events if e.kind == RECOVER)
        assert recover.time == crash.time + 3.0
        assert recover.target == crash.target

    def test_from_spec_full(self):
        plan = FaultPlan.from_spec(
            "crash=0.2,start=8,stagger=0.5,downtime=30,loss=0.02,jitter=0.003,seed=9"
        )
        assert plan.crash_fraction == pytest.approx(0.2)
        assert plan.crash_start == pytest.approx(8.0)
        assert plan.crash_stagger == pytest.approx(0.5)
        assert plan.downtime == pytest.approx(30.0)
        assert plan.loss_rate == pytest.approx(0.02)
        assert plan.jitter == pytest.approx(0.003)
        assert plan.seed == 9

    def test_from_spec_empty_and_none(self):
        assert FaultPlan.from_spec("").is_empty
        assert FaultPlan.from_spec("none").is_empty
        assert FaultPlan.from_spec(" None ").is_empty

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("crashes=0.1")
        with pytest.raises(ValueError, match="expected key=value"):
            FaultPlan.from_spec("crash")
        with pytest.raises(ValueError, match="not numeric"):
            FaultPlan.from_spec("loss=lots")
        with pytest.raises(ValueError, match="loss_rate"):
            FaultPlan.from_spec("loss=1.5")


# ----------------------------------------------------------------------
# FaultInjector runtime semantics
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_install_rejects_unknown_targets(self):
        network = make_network(2)
        with pytest.raises(ValueError, match="unknown broker"):
            network.install_faults(FaultPlan().crash(1.0, "ghost"))

    def test_install_twice_rejected(self):
        network = make_network(2)
        network.install_faults(FaultPlan())
        with pytest.raises(ValueError, match="already installed"):
            network.install_faults(FaultPlan())

    def test_crash_stops_delivery_and_counts_losses(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.install_faults(FaultPlan().crash(2.0, "b1"))
        network.run(2.0)
        delivered_before = subscriber.delivered
        assert delivered_before > 0
        network.run(3.0)
        assert subscriber.delivered == delivered_before
        summary = network.metrics.summary(3, network.active_brokers)
        assert summary.broker_crashes == 1
        assert summary.publications_lost > 0
        assert summary.delivery_rate < 1.0

    def test_crash_preserves_wiring_and_attachments(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b1")
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b1")
        broker = network.brokers["b1"]
        assert broker.neighbors == {"b0", "b2"}
        assert "s1" in broker.local_clients
        assert broker.srt_size == 0  # routing state died with the process

    def test_crash_idempotent_recover_requires_down(self):
        network = make_network(2)
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b0")
        injector.crash_now("b0")
        assert injector.crashes == 1
        injector.recover_now("b0")
        injector.recover_now("b0")
        assert injector.recoveries == 1
        assert not network.broker_is_down("b0")

    def test_recovered_broker_comes_back_blank_but_reachable(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        publisher = make_publisher(rate=20.0)
        network.attach_publisher(publisher, "b0")
        network.install_faults(FaultPlan().crash(1.0, "b1", downtime=1.0))
        network.run(3.0)
        summary = network.metrics.summary(3, network.active_brokers)
        assert summary.broker_recoveries == 1
        # Blank process: the subscription state died, so delivery stays
        # broken until a reconfiguration replays control traffic.
        assert network.brokers["b1"].srt_size == 0

    def test_link_down_cuts_broker_leg(self):
        network = make_network(3)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b2")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.install_faults(
            FaultPlan().link_down(2.0, "b1", "b2", downtime=2.0)
        )
        network.run(2.0)
        delivered_before = subscriber.delivered
        assert delivered_before > 0
        network.run(1.9)
        assert subscriber.delivered == delivered_before
        network.run(3.0)  # link restored at t=4.0
        assert subscriber.delivered > delivered_before

    def test_seeded_loss_is_deterministic(self):
        def run_once():
            network = make_network(2)
            subscriber = make_subscriber("s1")
            network.attach_subscriber(subscriber, "b1")
            network.attach_publisher(make_publisher(rate=50.0), "b0")
            # Let the control floods establish routing before loss
            # kicks in, so deliveries depend only on the seeded draws.
            network.run(1.0)
            injector = network.install_faults(FaultPlan(loss_rate=0.2), seed=5)
            network.run(10.0)
            return subscriber.delivered, injector.drops

        assert run_once() == run_once()
        delivered, drops = run_once()
        assert delivered > 0 and drops > 0

    def test_jitter_delays_but_delivers(self):
        network = make_network(2)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b1")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        network.install_faults(FaultPlan(jitter=0.01), seed=3)
        network.run(5.0)
        assert subscriber.delivered > 0
        summary = network.metrics.summary(2, network.active_brokers)
        assert summary.messages_lost == 0

    def test_empty_plan_schedules_nothing(self):
        network = make_network(2)
        injector = network.install_faults(FaultPlan())
        assert injector.schedule == []
        assert not injector.drop_in_transit()
        assert injector.extra_latency() == 0.0


# ----------------------------------------------------------------------
# Robust gather: timeout, retry, partial answers, cached profiles
# ----------------------------------------------------------------------
def _profiled_network(broker_count=4, sub_broker=None):
    """A chain network with one publisher at b0 and one subscriber."""
    network = make_network(broker_count)
    sub_broker = sub_broker or f"b{broker_count - 1}"
    network.attach_subscriber(make_subscriber("s1"), sub_broker)
    network.attach_publisher(make_publisher(rate=20.0), "b0")
    network.run(3.0)
    return network


def _star_network(leaf_count=3):
    """Hub b0 with leaves b1..bn; subscriber on the last leaf.

    On a star only the hub waits for downstream answers, so crashing a
    leaf silences exactly that leaf — the clean shape for partial-gather
    assertions.  (On a chain, every ancestor of the dead broker times
    out before its descendants' late partial answers arrive, hiding the
    whole interior; ``test_crashed_interior_broker_hides_its_subtree``
    pins that behaviour.)
    """
    network = make_network(leaf_count + 1)
    network.disconnect_all()
    for index in range(1, leaf_count + 1):
        network.connect_brokers("b0", f"b{index}")
    network.attach_subscriber(make_subscriber("s1"), f"b{leaf_count}")
    network.attach_publisher(make_publisher(rate=20.0), "b0")
    network.run(3.0)
    return network


class TestRobustGather:
    def test_silent_leaf_yields_degraded_partial_gather(self):
        network = _star_network(3)
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b3")
        croc = Croc(allocator_factory=BinPackingAllocator)
        gathered = croc.gather(network)
        assert gathered.silent_brokers == ["b3"]
        assert gathered.degraded
        assert gathered.attempts == 1
        assert {spec.broker_id for spec in gathered.broker_pool} == {
            "b0", "b1", "b2",
        }
        summary = network.metrics.summary(4, network.active_brokers)
        assert summary.degraded_plans == 1

    def test_crashed_interior_broker_hides_its_subtree(self):
        network = _profiled_network(4, sub_broker="b1")
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b1")
        gathered = Croc(allocator_factory=BinPackingAllocator).gather(network)
        # b2/b3 are only reachable through b1, so they stay silent too.
        assert gathered.silent_brokers == ["b1", "b2", "b3"]
        assert [spec.broker_id for spec in gathered.broker_pool] == ["b0"]

    def test_dead_entry_broker_triggers_retry_rotation(self):
        network = _profiled_network(3)
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b0")
        croc = Croc(allocator_factory=BinPackingAllocator)
        gathered = croc.gather(network, timeout=5.0, backoff=1.0)
        assert gathered.attempts == 2  # b0 silent, retried via b1
        assert gathered.silent_brokers == ["b0"]
        summary = network.metrics.summary(3, network.active_brokers)
        assert summary.gather_retries == 1

    def test_all_brokers_silent_raises(self):
        network = _profiled_network(3)
        injector = network.install_faults(FaultPlan())
        for broker_id in ("b0", "b1", "b2"):
            injector.crash_now(broker_id)
        croc = Croc(allocator_factory=BinPackingAllocator)
        with pytest.raises(ReconfigurationError, match="after 3 attempt"):
            croc.gather(network, timeout=0.5, retries=2)

    def test_cached_profiles_rehome_silent_brokers_subscriptions(self):
        network = _star_network(3)  # subscriber lives on leaf b3
        croc = Croc(allocator_factory=BinPackingAllocator)
        full = croc.gather(network)  # primes the report cache
        assert full.subscription_count == 1
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b3")
        degraded = croc.gather(network)
        assert degraded.silent_brokers == ["b3"]
        assert degraded.cached_brokers == ["b3"]
        # The cached record survives for re-homing...
        assert degraded.subscription_count == 1
        assert degraded.records[0].home_broker == "b3"
        # ...but the dead broker is not plannable.
        assert "b3" not in {spec.broker_id for spec in degraded.broker_pool}

    def test_use_cache_false_drops_silent_records(self):
        network = _star_network(3)
        croc = Croc(allocator_factory=BinPackingAllocator)
        croc.gather(network)
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b3")
        degraded = croc.gather(network, use_cache=False)
        assert degraded.silent_brokers == ["b3"]
        assert degraded.cached_brokers == []
        assert degraded.subscription_count == 0

    def test_gather_without_faults_is_not_degraded(self):
        network = _profiled_network(3)
        gathered = Croc(allocator_factory=BinPackingAllocator).gather(network)
        assert gathered.silent_brokers == []
        assert gathered.cached_brokers == []
        assert not gathered.degraded
        assert gathered.attempts == 1


# ----------------------------------------------------------------------
# Reconfigure: pre-apply abort and mid-apply rollback
# ----------------------------------------------------------------------
def _baseline_deployment():
    tree = BrokerTree("b0")
    tree.add_broker("b1", "b0")
    tree.add_broker("b2", "b1")
    return Deployment(
        tree=tree,
        subscription_placement={"s1": "b2"},
        publisher_placement={"adv-YHOO": "b0"},
        approach="baseline",
    )


def _standby_deployment():
    """A plan that moves everything onto the standby broker b3."""
    return Deployment(
        tree=BrokerTree("b3"),
        subscription_placement={"s1": "b3"},
        publisher_placement={"adv-YHOO": "b3"},
        approach="standby",
    )


def _rollback_fixture():
    """Chain b0-b1-b2 serving traffic, b3 standby, baseline applied."""
    network = make_network(4)
    network.disconnect_all()
    for first, second in (("b0", "b1"), ("b1", "b2")):
        network.connect_brokers(first, second)
    network.attach_subscriber(make_subscriber("s1"), "b2")
    network.attach_publisher(make_publisher(rate=20.0), "b0")
    network.apply_deployment(_baseline_deployment())
    network.run(3.0)
    croc = Croc(allocator_factory=BinPackingAllocator)
    real_plan = croc.plan

    def plan_onto_standby(gathered):
        report = real_plan(gathered)
        report.deployment = _standby_deployment()
        return report

    croc.plan = plan_onto_standby
    return network, croc


def _routing_snapshot(network):
    return {
        "links": sorted(network.links),
        "active": sorted(network.active_brokers),
        "srt": {bid: broker.srt_size for bid, broker in network.brokers.items()},
        "subscriber_at": network.subscribers["s1"].broker_id,
        "last_deployment": network.last_deployment,
    }


class TestReconfigureRollback:
    def test_target_dead_before_apply_abandons_plan(self):
        network, croc = _rollback_fixture()
        injector = network.install_faults(FaultPlan())
        injector.crash_now("b3")  # standby dies before CROC plans onto it
        before = _routing_snapshot(network)
        report = croc.reconfigure(network)
        assert not report.applied
        assert "before apply" in report.rollback_reason
        assert "b3" in report.rollback_reason
        after = _routing_snapshot(network)
        assert after == before  # the running overlay was never touched
        summary = network.metrics.summary(4, network.active_brokers)
        assert summary.rollbacks == 1

    def test_target_dying_mid_apply_rolls_back_to_previous(self):
        network, croc = _rollback_fixture()
        injector = network.install_faults(FaultPlan())
        before = _routing_snapshot(network)
        real_apply = network.apply_deployment

        def apply_then_crash(deployment):
            real_apply(deployment)
            if "b3" in deployment.tree.brokers:
                injector.crash_now("b3")

        network.apply_deployment = apply_then_crash
        report = croc.reconfigure(network)
        assert not report.applied
        assert "died during apply" in report.rollback_reason
        after = _routing_snapshot(network)
        # Routing tables, wiring, and attachments match the pre-plan state.
        assert after == before
        summary = network.metrics.summary(4, network.active_brokers)
        assert summary.rollbacks == 1

    def test_successful_reconfigure_reports_applied(self):
        network, croc = _rollback_fixture()
        network.install_faults(FaultPlan())
        report = croc.reconfigure(network)
        assert report.applied
        assert report.rollback_reason == ""
        assert network.active_brokers == ["b3"]
        assert network.last_deployment.approach == "standby"


# ----------------------------------------------------------------------
# Continuous reconfiguration under failures
# ----------------------------------------------------------------------
class TestContinuousUnderFailure:
    def test_churn_cycles_survive_a_crash(self):
        network = make_network(4)
        subscriber = make_subscriber("s1")
        network.attach_subscriber(subscriber, "b3")
        network.attach_publisher(make_publisher(rate=20.0), "b0")
        # The subscriber's home broker dies during cycle 0's profiling.
        network.install_faults(FaultPlan().crash(2.0, "b3"))
        croc = Croc(allocator_factory=BinPackingAllocator)
        loop = ContinuousReconfigurator(
            croc, profiling_time=5.0, measurement_time=5.0
        )
        reports = loop.run(network, cycles=2)
        assert len(reports) == 2
        assert reports[0].degraded  # planned around the silent broker
        assert reports[0].reconfigured
        # The degraded plan re-homed the subscription; delivery recovered.
        assert reports[1].summary.delivery_rate == pytest.approx(1.0)
        assert reports[1].summary.delivery_count > 0
        row = reports[0].as_row()
        assert {"degraded", "rolled_back", "delivery_rate"} <= set(row)
