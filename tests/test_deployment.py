"""Tests for BrokerTree and Deployment."""

import pytest

from repro.core.deployment import BrokerTree, Deployment

from conftest import make_directory, make_unit


def sample_tree():
    tree = BrokerTree("root")
    tree.add_broker("a", "root")
    tree.add_broker("b", "root")
    tree.add_broker("a1", "a")
    return tree


class TestBrokerTree:
    def test_membership_and_len(self):
        tree = sample_tree()
        assert len(tree) == 4
        assert "a1" in tree
        assert "nope" not in tree

    def test_parent_child_links(self):
        tree = sample_tree()
        assert tree.parent("a1") == "a"
        assert tree.parent("root") is None
        assert sorted(tree.children("root")) == ["a", "b"]
        assert tree.children("b") == []

    def test_add_duplicate_raises(self):
        tree = sample_tree()
        with pytest.raises(ValueError):
            tree.add_broker("a", "root")

    def test_add_under_unknown_parent_raises(self):
        tree = sample_tree()
        with pytest.raises(ValueError):
            tree.add_broker("x", "ghost")

    def test_depth_and_height(self):
        tree = sample_tree()
        assert tree.depth("root") == 0
        assert tree.depth("a1") == 2
        assert tree.height() == 2

    def test_leaves(self):
        assert sorted(sample_tree().leaves()) == ["a1", "b"]

    def test_path_to_root(self):
        assert sample_tree().path_to_root("a1") == ["a1", "a", "root"]

    def test_edges(self):
        edges = set(sample_tree().edges())
        assert edges == {("root", "a"), ("root", "b"), ("a", "a1")}

    def test_set_units_unknown_broker_raises(self, directory):
        tree = sample_tree()
        with pytest.raises(ValueError):
            tree.set_units("ghost", [])

    def test_subscription_placement_from_units(self, directory):
        tree = sample_tree()
        unit = make_unit({"A": [1]}, directory, sub_id="s1")
        tree.set_units("a1", [unit])
        assert tree.subscription_placement() == {"s1": "a1"}

    def test_validate_passes_for_wellformed(self):
        sample_tree().validate()


class TestDeployment:
    def test_validate_accepts_consistent_placement(self, directory):
        tree = sample_tree()
        deployment = Deployment(
            tree=tree,
            subscription_placement={"s1": "a"},
            publisher_placement={"A": "root"},
        )
        deployment.validate()

    def test_validate_rejects_placement_outside_tree(self):
        deployment = Deployment(
            tree=sample_tree(),
            subscription_placement={"s1": "ghost"},
        )
        with pytest.raises(AssertionError):
            deployment.validate()

    def test_validate_rejects_publisher_outside_tree(self):
        deployment = Deployment(
            tree=sample_tree(),
            publisher_placement={"A": "ghost"},
        )
        with pytest.raises(AssertionError):
            deployment.validate()

    def test_active_broker_count(self):
        assert Deployment(tree=sample_tree()).active_broker_count == 4
