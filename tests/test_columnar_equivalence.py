"""Bit-identity of the columnar store and sharded Phase 2.

The determinism contracts of this PR's fast paths:

* CRAM with the columnar row store on, off, or on either backend
  (numpy / pure Python) produces the same allocations, the same float
  metrics (compared via ``repr``), the same kernel counters, and the
  same observability records.
* ``ShardedCramAllocator`` returns the same result whether its shard
  tasks run serially in-process or on a 4-worker spawn pool, including
  under an active fault plan.
* Streaming ingest packs a 1M-subscription workload without ever
  holding more than ~one chunk of profile objects alive.
"""

from __future__ import annotations

import weakref
from itertools import islice

import pytest

from repro.core.columnar import ColumnarStore, numpy_available
from repro.core.cram import CramAllocator, ShardedCramAllocator
from repro.core.kernel import BitPlaneLayout, pack_profile_bits
from repro.core.units import units_from_records
from repro.experiments import parallel
from repro.experiments.runner import ExperimentRunner
from repro.obs import recorder as obs
from repro.sim.faults import FaultPlan
from repro.workloads.offline import (
    iter_offline_records,
    offline_directory,
    offline_gather,
)
from repro.workloads.scenarios import cluster_homogeneous
from repro.workloads.streaming import (
    iter_synthetic_records,
    stream_into_store,
    synthetic_directory,
)


@pytest.fixture(scope="module")
def gathered():
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=10, scale=0.1, profile_capacity=96
    )
    return offline_gather(scenario, seed=7)


def placement(result) -> list:
    """Broker → member subscription IDs, in bin order."""
    return [
        (bin_.spec.broker_id,
         tuple(r.sub_id for unit in bin_.units for r in unit.members))
        for bin_ in result.bins
    ]


def comparable(result, stats) -> dict:
    return {
        "placement": placement(result),
        "success": result.success,
        "broker_count": result.broker_count,
        "stats": repr(stats),
    }


def run_cram(gathered, **kwargs) -> dict:
    allocator = CramAllocator(metric="ios", **kwargs)
    result = allocator.allocate(
        units_from_records(gathered.records, gathered.directory),
        gathered.broker_pool,
        gathered.directory,
    )
    return comparable(result, allocator.last_stats)


class TestColumnarBitIdentity:
    def test_columnar_off_matches_on(self, gathered):
        on = run_cram(gathered, use_columnar=True)
        off = run_cram(gathered, use_columnar=False)
        assert on == off
        # Vacuity guard: the kernel really ran and batched rows.
        assert "kernel_fused_evaluations=0" not in on["stats"]
        assert "kernel_used=True" in on["stats"]

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_python_backend_matches_numpy(self, gathered, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_BACKEND", "numpy")
        numpy = run_cram(gathered, use_columnar=True)
        monkeypatch.setenv("REPRO_COLUMNAR_BACKEND", "python")
        python = run_cram(gathered, use_columnar=True)
        assert numpy == python

    def test_obs_records_identical(self, gathered):
        snapshots = []
        for use_columnar in (True, False):
            with obs.attached(obs.Recorder()) as recorder:
                run_cram(gathered, use_columnar=use_columnar)
            snapshots.append(recorder.snapshot(include_wall=False))
        assert snapshots[0] == snapshots[1]


class TestStreamingWorkloads:
    def test_iter_offline_records_matches_gather(self):
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=8, scale=0.1, profile_capacity=64
        )
        eager = offline_gather(scenario, seed=3)
        directory = offline_directory(scenario)
        assert {
            adv_id: repr(profile)
            for adv_id, profile in directory.items()
        } == {
            adv_id: repr(profile)
            for adv_id, profile in eager.directory.items()
        }
        lazy = iter_offline_records(scenario, seed=3, directory=directory)
        for expected, got in zip(eager.records, lazy, strict=True):
            assert got.sub_id == expected.sub_id
            assert got.subscriber_id == expected.subscriber_id
            assert got.profile.signature() == expected.profile.signature()

    def test_million_rows_bounded_liveness(self):
        count, chunk_size = 1_000_000, 8192
        directory = synthetic_directory(4, 64)
        layout = BitPlaneLayout.from_directory(directory, 64)
        store = ColumnarStore(layout.total_bits)

        state = {"live": 0, "peak": 0}

        def dead() -> None:
            state["live"] -= 1

        def tracked(records):
            for record in records:
                state["live"] += 1
                state["peak"] = max(state["peak"], state["live"])
                weakref.finalize(record.profile, dead)
                yield record

        summary = stream_into_store(
            tracked(iter_synthetic_records(count, 4, 64)),
            layout, store, chunk_size=chunk_size,
        )
        assert summary.rows == count
        assert summary.skipped == 0
        assert len(store) == count
        # The contract of the tentpole: peak live profiles is bounded
        # by the chunk size, not the workload size.
        assert state["peak"] <= 2 * chunk_size
        # Spot-check packed rows against the standalone packer.
        for index, record in islice(
            enumerate(iter_synthetic_records(count, 4, 64)), 0, 5
        ):
            assert store.row_bits(index) == pack_profile_bits(
                record.profile, layout
            )
        probe = count - 1
        last = next(islice(iter_synthetic_records(count, 4, 64), probe, None))
        assert store.row_bits(probe) == pack_profile_bits(last.profile, layout)


def sharded_comparable(gathered, runner) -> dict:
    allocator = ShardedCramAllocator(metric="ios", shards=4, runner=runner)
    result = allocator.allocate(
        units_from_records(gathered.records, gathered.directory),
        gathered.broker_pool,
        gathered.directory,
    )
    return comparable(result, allocator.last_stats)


class TestShardedBitIdentity:
    def test_pool_jobs4_matches_serial(self, gathered):
        serial = sharded_comparable(gathered, runner=None)
        pooled = sharded_comparable(
            gathered, runner=lambda tasks: parallel.run_shards(tasks, jobs=4)
        )
        assert serial == pooled
        # Vacuity guard: sharding engaged rather than falling back.
        assert "shard_count=4" in serial["stats"]
        assert "shard_fallbacks=0" in serial["stats"]

    def test_full_experiment_identical_under_faults(self):
        plan = FaultPlan(
            crash_fraction=0.25, crash_start=4.0, downtime=5.0,
            loss_rate=0.01, jitter=0.001, seed=5,
        )
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=8, scale=0.08,
            profile_capacity=64, measurement_time=10.0,
        )

        def run() -> dict:
            runner = ExperimentRunner(scenario, seed=11, fault_plan=plan)
            result = runner.run("cram-ios-sharded")
            row = result.as_row()
            row.pop("computation_s")
            return {
                "row": {key: repr(value) for key, value in row.items()},
                "summary": repr(result.summary),
                "cram_stats": repr(result.cram_stats),
            }

        parallel.set_default_shard_jobs(1)
        try:
            serial = run()
            parallel.set_default_shard_jobs(4)
            pooled = run()
        finally:
            parallel.set_default_shard_jobs(None)
        assert serial == pooled
        # The plan actually did something, or this test is vacuous.
        assert "broker_crashes=0" not in serial["summary"]
