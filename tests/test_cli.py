"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.runner import available_approaches
from repro.sim.faults import FaultPlan


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "homo"
        assert args.scale == 0.25

    def test_figure_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_unknown_approach_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--approach", "magic"])

    def test_approach_choices_come_from_the_registry(self):
        for approach in available_approaches():
            args = build_parser().parse_args(["run", "--approach", approach])
            assert args.approach == [approach]

    def test_faults_spec_parses_to_a_plan(self):
        args = build_parser().parse_args(
            ["run", "--faults", "crash=0.1,downtime=30,loss=0.01,seed=7"]
        )
        assert isinstance(args.faults, FaultPlan)
        assert args.faults.crash_fraction == pytest.approx(0.1)
        assert args.faults.downtime == pytest.approx(30.0)
        assert args.faults.loss_rate == pytest.approx(0.01)
        assert args.faults.seed == 7

    def test_faults_defaults_to_no_plan(self):
        assert build_parser().parse_args(["run"]).faults is None
        assert build_parser().parse_args(["run", "--faults", "none"]).faults.is_empty

    def test_bad_faults_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "crash=lots"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "meteor=1"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cram-ios" in out
        assert "message-rate" in out
        assert "scinet" in out

    def test_run_prints_table_and_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual",
            "--measurement-time", "10",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "manual" in out
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["approach"] == "manual"
        with open(json_path) as handle:
            data = json.load(handle)
        assert data[0]["approach"] == "manual"

    def test_figure_command(self, capsys):
        code = main([
            "figure", "--figure", "brokers", "--scenario", "homo",
            "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "binpacking",
            "--measurement-time", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure: brokers" in out
        assert "binpacking" in out

    def test_run_continues_past_failing_cells_and_exits_nonzero(
        self, monkeypatch, capsys
    ):
        import repro.experiments.cli as cli_module
        from repro.experiments.parallel import run_spec

        def flaky_execute_cells(specs, jobs=1, progress=None,
                                return_exceptions=False):
            results = []
            for spec in specs:
                if progress is not None:
                    progress(spec.label)
                if spec.approach == "binpacking":
                    results.append(RuntimeError("injected cell failure"))
                else:
                    results.append(run_spec(spec))
            return results

        monkeypatch.setattr(cli_module, "execute_cells", flaky_execute_cells)
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "binpacking", "--approach", "manual",
            "--measurement-time", "10",
        ])
        assert code == 2
        captured = capsys.readouterr()
        # The surviving cell still ran and printed its row...
        assert "manual" in captured.out
        # ...and the failure is reported on stderr.
        assert "1 cell(s) failed" in captured.err
        assert "injected cell failure" in captured.err

    def test_run_with_faults_reaches_the_runner(self, capsys):
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--measurement-time", "10",
            "--faults", "none",
        ])
        assert code == 0
        assert "manual" in capsys.readouterr().out
