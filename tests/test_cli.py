"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.runner import available_approaches
from repro.sim.faults import FaultPlan


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "homo"
        assert args.scale == 0.25

    def test_figure_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_unknown_approach_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--approach", "magic"])

    def test_approach_choices_come_from_the_registry(self):
        for approach in available_approaches():
            args = build_parser().parse_args(["run", "--approach", approach])
            assert args.approach == [approach]

    def test_faults_spec_parses_to_a_plan(self):
        args = build_parser().parse_args(
            ["run", "--faults", "crash=0.1,downtime=30,loss=0.01,seed=7"]
        )
        assert isinstance(args.faults, FaultPlan)
        assert args.faults.crash_fraction == pytest.approx(0.1)
        assert args.faults.downtime == pytest.approx(30.0)
        assert args.faults.loss_rate == pytest.approx(0.01)
        assert args.faults.seed == 7

    def test_faults_defaults_to_no_plan(self):
        assert build_parser().parse_args(["run"]).faults is None
        assert build_parser().parse_args(["run", "--faults", "none"]).faults.is_empty

    def test_bad_faults_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "crash=lots"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "meteor=1"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cram-ios" in out
        assert "message-rate" in out
        assert "scinet" in out

    def test_run_prints_table_and_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual",
            "--measurement-time", "10",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "manual" in out
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["approach"] == "manual"
        with open(json_path) as handle:
            data = json.load(handle)
        assert data[0]["approach"] == "manual"

    def test_figure_command(self, capsys):
        code = main([
            "figure", "--figure", "brokers", "--scenario", "homo",
            "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "binpacking",
            "--measurement-time", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure: brokers" in out
        assert "binpacking" in out

    def test_run_continues_past_failing_cells_and_exits_nonzero(
        self, monkeypatch, capsys
    ):
        import repro.experiments.cli as cli_module
        from repro.experiments.parallel import run_spec

        def flaky_execute_cells(specs, jobs=1, progress=None,
                                return_exceptions=False, profile_dir=None):
            results = []
            for spec in specs:
                if progress is not None:
                    progress(spec.label)
                if spec.approach == "binpacking":
                    results.append(RuntimeError("injected cell failure"))
                else:
                    results.append(run_spec(spec))
            return results

        monkeypatch.setattr(cli_module, "execute_cells", flaky_execute_cells)
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "binpacking", "--approach", "manual",
            "--measurement-time", "10",
        ])
        assert code == 2
        captured = capsys.readouterr()
        # The surviving cell still ran and printed its row...
        assert "manual" in captured.out
        # ...and the failure is reported on stderr.
        assert "1 cell(s) failed" in captured.err
        assert "injected cell failure" in captured.err

    def test_run_with_faults_reaches_the_runner(self, capsys):
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--measurement-time", "10",
            "--faults", "none",
        ])
        assert code == 0
        assert "manual" in capsys.readouterr().out

    def test_run_profile_dumps_pstats_per_cell(self, tmp_path, capsys):
        import pstats

        profile_dir = tmp_path / "profiles"
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "binpacking",
            "--measurement-time", "10",
            "--profile", str(profile_dir),
        ])
        assert code == 0
        dumps = sorted(path.name for path in profile_dir.glob("*.pstats"))
        assert len(dumps) == 2
        assert any("manual" in name for name in dumps)
        assert any("binpacking" in name for name in dumps)
        # Each dump is a loadable profile that saw the simulation run.
        stats = pstats.Stats(str(profile_dir / dumps[0]))
        assert stats.total_calls > 0

    def test_profile_forces_serial_and_stays_bit_identical(
        self, tmp_path, capsys
    ):
        args = [
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--measurement-time", "10",
            "--json",
        ]
        bare_json = tmp_path / "bare.json"
        assert main(args + [str(bare_json)]) == 0
        profiled_json = tmp_path / "profiled.json"
        assert main(
            args + [str(profiled_json), "--jobs", "4",
                    "--profile", str(tmp_path / "prof")]
        ) == 0
        err = capsys.readouterr().err
        assert "profiling forces serial execution" in err
        with open(bare_json) as handle:
            bare = json.load(handle)
        with open(profiled_json) as handle:
            profiled = json.load(handle)
        for row in (*bare, *profiled):
            row.pop("computation_s")  # wall-clock, not simulation output
        assert bare == profiled

    def test_figure_profile_dumps_pstats(self, tmp_path, capsys):
        profile_dir = tmp_path / "profiles"
        code = main([
            "figure", "--figure", "brokers", "--scenario", "homo",
            "--subs", "8", "--scale", "0.1", "--approach", "manual",
            "--measurement-time", "10", "--profile", str(profile_dir),
        ])
        assert code == 0
        assert list(profile_dir.glob("*.pstats"))
