"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "homo"
        assert args.scale == 0.25

    def test_figure_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_unknown_approach_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--approach", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cram-ios" in out
        assert "message-rate" in out
        assert "scinet" in out

    def test_run_prints_table_and_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        code = main([
            "run", "--scenario", "homo", "--subs", "8", "--scale", "0.1",
            "--approach", "manual",
            "--measurement-time", "10",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "manual" in out
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["approach"] == "manual"
        with open(json_path) as handle:
            data = json.load(handle)
        assert data[0]["approach"] == "manual"

    def test_figure_command(self, capsys):
        code = main([
            "figure", "--figure", "brokers", "--scenario", "homo",
            "--subs", "8", "--scale", "0.1",
            "--approach", "manual", "--approach", "binpacking",
            "--measurement-time", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure: brokers" in out
        assert "binpacking" in out
