"""Unit tests for the per-broker energy model and its metric seams.

Covers the pure arithmetic (:mod:`repro.core.energy`), the per-window
crash-downtime accounting in :class:`repro.pubsub.metrics.MetricsCollector`
(including the t=0-crash-before-first-reset regression), the
``MetricsSummary.energy_usage`` projection, and the drift-gated pool
autoscaler's sizing rule.
"""

from __future__ import annotations

import pytest

from repro.core.energy import (
    BrokerEnergy,
    EnergyAccountant,
    EnergyReport,
    EnergySpec,
    WindowUsage,
    account_window,
    combined_report,
)
from repro.core.online import OnlineSpec
from repro.experiments.continuous import AutoscaleDecision, PoolAutoscaler
from repro.pubsub.metrics import MetricsCollector, MetricsSummary


def usage(**overrides) -> WindowUsage:
    """A two-broker window with hand-checkable numbers."""
    values = dict(
        duration_s=10.0,
        pool_size=4,
        active_brokers=("B1", "B2"),
        messages={"B1": 100.0, "B2": 40.0},
        bytes_out_kb={"B1": 50.0, "B2": 20.0},
        utilization={"B1": 0.5, "B2": 0.25},
        downtime_s={},
        deliveries=80,
        mean_delay_s=0.1,
        delivery_rate=1.0,
    )
    values.update(overrides)
    return WindowUsage(**values)


class TestEnergySpec:
    def test_defaults_are_nonnegative(self):
        spec = EnergySpec()
        assert spec.idle_watts == 60.0
        assert spec.active_watts == 90.0
        assert spec.crashed_watts == 0.0

    def test_from_spec_none_disables(self):
        assert EnergySpec.from_spec("none") is None
        assert EnergySpec.from_spec(" NONE ") is None

    def test_from_spec_default_selects_defaults(self):
        assert EnergySpec.from_spec("") == EnergySpec()
        assert EnergySpec.from_spec("default") == EnergySpec()

    def test_from_spec_parses_every_key(self):
        spec = EnergySpec.from_spec(
            "idle=10,active=20,match=0.5,tx=0.25,crashed=3"
        )
        assert spec == EnergySpec(
            idle_watts=10.0,
            active_watts=20.0,
            matching_joules=0.5,
            transmission_joules_per_kb=0.25,
            crashed_watts=3.0,
        )

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown energy spec key"):
            EnergySpec.from_spec("volts=3")

    def test_from_spec_rejects_non_number(self):
        with pytest.raises(ValueError, match="needs a number"):
            EnergySpec.from_spec("idle=lots")

    def test_negative_knob_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EnergySpec(idle_watts=-1.0)


class TestAccountWindow:
    def test_hand_formula(self):
        spec = EnergySpec(
            idle_watts=10.0,
            active_watts=100.0,
            matching_joules=1.0,
            transmission_joules_per_kb=0.5,
            crashed_watts=2.0,
        )
        report = account_window(spec, usage(downtime_s={"B2": 4.0}))
        b1, b2 = report.brokers
        # B1: up=10 — idle 10*10, active 100*0.5*10, match 1*100, tx 0.5*50.
        assert b1 == BrokerEnergy(
            broker_id="B1",
            idle_joules=100.0,
            active_joules=500.0,
            matching_joules=100.0,
            transmission_joules=25.0,
            crashed_joules=0.0,
            downtime_s=0.0,
        )
        # B2: up=6, down=4 — idle 10*6, active 100*0.25*6, match 1*40,
        # tx 0.5*20, crashed 2*4.
        assert b2 == BrokerEnergy(
            broker_id="B2",
            idle_joules=60.0,
            active_joules=150.0,
            matching_joules=40.0,
            transmission_joules=10.0,
            crashed_joules=8.0,
            downtime_s=4.0,
        )
        assert report.joules == b1.joules + b2.joules
        assert report.allocated_brokers == 2
        assert report.joules_per_delivery == report.joules / 80
        assert report.mean_watts == report.joules / 10.0

    def test_deallocated_brokers_draw_nothing(self):
        report = account_window(EnergySpec(), usage())
        assert report.pool_size == 4
        assert report.allocated_brokers == 2  # the other 2 are off

    def test_downtime_clamped_to_window(self):
        report = account_window(
            EnergySpec(idle_watts=10.0, active_watts=0.0,
                       matching_joules=0.0,
                       transmission_joules_per_kb=0.0),
            usage(downtime_s={"B1": 99.0, "B2": -3.0}),
        )
        b1, b2 = report.brokers
        assert b1.downtime_s == 10.0 and b1.idle_joules == 0.0
        assert b2.downtime_s == 0.0 and b2.idle_joules == 100.0

    def test_utilization_clamped_to_unit_interval(self):
        report = account_window(
            EnergySpec(idle_watts=0.0, active_watts=10.0,
                       matching_joules=0.0,
                       transmission_joules_per_kb=0.0),
            usage(utilization={"B1": 1.8, "B2": -0.5}),
        )
        b1, b2 = report.brokers
        assert b1.active_joules == 100.0  # clamped to 1.0 × 10 W × 10 s
        assert b2.active_joules == 0.0

    def test_zero_deliveries_never_divides(self):
        report = account_window(EnergySpec(), usage(deliveries=0))
        assert report.joules_per_delivery == 0.0

    def test_row_and_export_record_shapes(self):
        report = account_window(EnergySpec(), usage())
        row = report.as_row()
        assert set(row) == {
            "allocated_brokers", "joules", "joules_per_delivery",
            "mean_watts", "downtime_s",
        }
        record = report.export_record("homo/manual", "homo", "manual")
        assert record["record"] == "energy"
        assert record["cell"] == "homo/manual"
        assert record["deliveries"] == 80
        assert record["mean_delay_ms"] == 100.0


class TestEnergyAccountant:
    def test_totals_accumulate_across_windows(self):
        accountant = EnergyAccountant(EnergySpec(idle_watts=10.0,
                                                 active_watts=0.0,
                                                 matching_joules=0.0,
                                                 transmission_joules_per_kb=0.0))
        first = accountant.observe(usage())
        second = accountant.observe(usage(duration_s=5.0, deliveries=20))
        assert accountant.windows == (first, second)
        assert accountant.total_duration_s() == 15.0
        assert accountant.total_deliveries() == 100
        assert accountant.total_joules() == first.joules + second.joules
        assert accountant.joules_per_delivery() == (
            accountant.total_joules() / 100
        )
        assert accountant.mean_watts() == accountant.total_joules() / 15.0

    def test_empty_accountant_reports_zero(self):
        accountant = EnergyAccountant(EnergySpec())
        assert accountant.total_joules() == 0.0
        assert accountant.joules_per_delivery() == 0.0
        assert accountant.mean_watts() == 0.0

    def test_combined_report_concatenates_windows(self):
        spec = EnergySpec()
        reports = [
            account_window(spec, usage(mean_delay_s=0.1)),
            account_window(spec, usage(duration_s=5.0, deliveries=40,
                                       mean_delay_s=0.4)),
        ]
        combined = combined_report(reports)
        assert combined.duration_s == 15.0
        assert combined.deliveries == 120
        assert combined.allocated_brokers == 4  # 2 brokers × 2 windows
        assert combined.joules == reports[0].joules + reports[1].joules
        # Delivery-weighted delay: (80×0.1 + 40×0.4) / 120.
        assert combined.mean_delay_s == pytest.approx(0.2)

    def test_combined_report_empty_is_none(self):
        assert combined_report([]) is None


class _FakeSim:
    def __init__(self):
        self.now = 0.0


class TestDowntimeAccounting:
    def test_crash_at_t0_before_first_reset_is_charged(self):
        """Regression: t=0 is falsy, but a t=0 crash is still a crash."""
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        metrics.on_broker_crash("B1")  # at t=0.0, before any reset
        sim.now = 4.0
        metrics.reset_window()
        sim.now = 10.0
        summary = metrics.summary(pool_size=2, active_brokers=["B1", "B2"])
        assert summary.per_broker_downtime_s == {"B1": 6.0}
        assert metrics.broker_downtime_s == 6.0
        assert summary.fault_row()["broker_downtime_s"] == 6.0

    def test_crash_and_recovery_within_window(self):
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        sim.now = 2.0
        metrics.on_broker_crash("B1")
        sim.now = 5.0
        metrics.on_broker_recovery("B1")
        sim.now = 8.0
        summary = metrics.summary(pool_size=1, active_brokers=["B1"])
        assert summary.per_broker_downtime_s == {"B1": 3.0}
        assert summary.broker_crashes == 1
        assert summary.broker_recoveries == 1

    def test_downtime_spanning_a_reset_is_charged_per_window(self):
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        sim.now = 3.0
        metrics.on_broker_crash("B1")
        sim.now = 6.0
        first = metrics.summary(pool_size=1, active_brokers=["B1"])
        assert first.per_broker_downtime_s == {"B1": 3.0}
        metrics.reset_window()  # still down; interval re-pins to t=6
        sim.now = 8.0
        metrics.on_broker_recovery("B1")
        sim.now = 9.0
        second = metrics.summary(pool_size=1, active_brokers=["B1"])
        assert second.per_broker_downtime_s == {"B1": 2.0}

    def test_double_crash_keeps_the_original_interval(self):
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        sim.now = 1.0
        metrics.on_broker_crash("B1")
        sim.now = 3.0
        metrics.on_broker_crash("B1")  # duplicate event: no re-pin
        sim.now = 5.0
        summary = metrics.summary(pool_size=1, active_brokers=["B1"])
        assert summary.per_broker_downtime_s == {"B1": 4.0}

    def test_recovery_without_crash_is_ignored(self):
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        sim.now = 5.0
        metrics.on_broker_recovery("B1")
        summary = metrics.summary(pool_size=1, active_brokers=["B1"])
        assert summary.per_broker_downtime_s == {}

    def test_anonymous_hooks_only_bump_counters(self):
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        metrics.on_broker_crash()
        metrics.on_broker_recovery()
        sim.now = 5.0
        summary = metrics.summary(pool_size=1, active_brokers=["B1"])
        assert summary.broker_crashes == 1
        assert summary.broker_recoveries == 1
        assert summary.per_broker_downtime_s == {}


class TestEnergyUsageProjection:
    def test_summary_projects_window_usage(self):
        sim = _FakeSim()
        metrics = MetricsCollector(sim)
        metrics.on_send("B1", size_kb=2.0, is_publication=True, to_client=True)
        metrics.on_receive("B1", is_publication=True)
        metrics.on_delivery(delay=0.2, hops=2)
        sim.now = 10.0
        summary = metrics.summary(
            pool_size=3, active_brokers=["B1", "B2"],
            bandwidth_by_broker={"B1": 1.0, "B2": 1.0},
        )
        projected = summary.energy_usage()
        assert projected.duration_s == summary.duration
        assert projected.pool_size == 3
        assert projected.active_brokers == ("B1", "B2")
        assert projected.messages["B1"] == pytest.approx(2.0)  # in + out
        assert projected.bytes_out_kb == {"B1": 2.0}
        assert projected.utilization["B1"] == pytest.approx(0.2)
        assert projected.deliveries == 1
        assert projected.mean_delay_s == pytest.approx(0.2)


class _StubEstimator:
    def __init__(self, loads):
        self._loads = loads

    def predicted_loads(self):
        return dict(self._loads)


class _StubScheduler:
    def __init__(self, capacities, loads):
        self._capacities = capacities
        self.estimator = _StubEstimator(loads)

    def pool_capacities(self):
        return dict(self._capacities)


class TestPoolAutoscaler:
    def scaler(self, capacities, loads, target_util=0.5, min_brokers=1):
        spec = OnlineSpec(autoscale=True, target_util=target_util)
        return PoolAutoscaler(
            _StubScheduler(capacities, loads), spec, min_brokers=min_brokers
        )

    def test_target_covers_predicted_load(self):
        # 30 kB/s over 10 kB/s brokers at 50% target: ceil(30/5) = 6.
        scaler = self.scaler(
            {f"B{i}": 10.0 for i in range(8)},
            {"B0": 12.0, "B1": 18.0},
        )
        decision = scaler.decide(cycle=1, current=4)
        assert decision == AutoscaleDecision(
            cycle=1, current=4, target=6, predicted_load=30.0,
            mean_capacity=10.0,
        )
        assert decision.delta == 2
        assert scaler.decisions == [decision]

    def test_target_clamped_to_pool_size(self):
        scaler = self.scaler({"B0": 10.0, "B1": 10.0}, {"B0": 500.0})
        assert scaler.decide(cycle=1, current=2).target == 2

    def test_idle_load_shrinks_to_min_brokers(self):
        scaler = self.scaler(
            {f"B{i}": 10.0 for i in range(8)}, {"B0": 0.0}, min_brokers=2
        )
        decision = scaler.decide(cycle=3, current=6)
        assert decision.target == 2
        assert decision.delta == -4

    def test_negative_predictions_are_floored(self):
        scaler = self.scaler(
            {f"B{i}": 10.0 for i in range(4)}, {"B0": -25.0, "B1": 12.0}
        )
        assert scaler.decide(cycle=1, current=1).predicted_load == 12.0

    def test_min_brokers_validated(self):
        with pytest.raises(ValueError, match="min_brokers"):
            self.scaler({}, {}, min_brokers=0)

    def test_target_util_validated_on_spec(self):
        with pytest.raises(ValueError, match="target_util"):
            OnlineSpec(autoscale=True, target_util=0.0)

    def test_from_spec_parses_autoscale_keys(self):
        spec = OnlineSpec.from_spec("inc_trade,autoscale=1,target=0.8")
        assert spec.autoscale is True
        assert spec.target_util == 0.8
