"""Tests for the discrete-event engine and seeded RNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import CalendarSimulator, SimulationError, Simulator
from repro.sim.rng import SeededRng, derive_seed


@pytest.fixture(params=[Simulator, CalendarSimulator], ids=["heap", "calendar"])
def sim_cls(request):
    """Both engines satisfy the same execution contract."""
    return request.param


class TestSimulator:
    def test_events_fire_in_time_order(self, sim_cls):
        sim = sim_cls()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_insertion_order(self, sim_cls):
        sim = sim_cls()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim_cls):
        sim = sim_cls()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_run_until_stops_and_advances_clock(self, sim_cls):
        sim = sim_cls()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert fired == [1, 10]

    def test_event_at_until_boundary_fires(self, sim_cls):
        sim = sim_cls()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_nested_scheduling(self, sim_cls):
        sim = sim_cls()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(1.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_cancelled_event_skipped(self, sim_cls):
        sim = sim_cls()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("no"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_negative_delay_rejected(self, sim_cls):
        sim = sim_cls()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim_cls):
        sim = sim_cls()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_max_events(self, sim_cls):
        sim = sim_cls()
        fired = []
        for index in range(5):
            sim.schedule(float(index + 1), lambda i=index: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_not_reentrant(self, sim_cls):
        sim = sim_cls()
        error = {}

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                error["raised"] = exc

        sim.schedule(1.0, reenter)
        sim.run()
        assert "raised" in error


class TestSeededRng:
    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_derive_seed_differs_per_path(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_streams_reproducible(self):
        a = SeededRng(7, "x")
        b = SeededRng(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_children_are_independent(self):
        parent = SeededRng(7)
        left = parent.child("left")
        right = parent.child("right")
        assert [left.random() for _ in range(3)] != [right.random() for _ in range(3)]

    def test_child_path_composes(self):
        direct = SeededRng(7, "a", "b")
        nested = SeededRng(7, "a").child("b")
        assert direct.random() == nested.random()

    def test_shuffled_does_not_mutate(self):
        rng = SeededRng(1)
        items = [1, 2, 3, 4]
        shuffled = rng.shuffled(items)
        assert items == [1, 2, 3, 4]
        assert sorted(shuffled) == items

    def test_sample_and_choice(self):
        rng = SeededRng(1)
        population = list(range(10))
        sample = rng.sample(population, 3)
        assert len(sample) == 3
        assert rng.choice(population) in population


@given(seed=st.integers(0, 2**31), names=st.lists(st.text(max_size=8), max_size=3))
def test_prop_derive_seed_in_64bit_range(seed, names):
    value = derive_seed(seed, *names)
    assert 0 <= value < 2**64
