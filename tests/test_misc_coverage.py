"""Final coverage batch: RNG distributions, visualization of internal
brokers, simulator event lifecycle, and report formatting corners."""

import pytest

from repro.core.deployment import BrokerTree
from repro.core.units import AllocationUnit
from repro.experiments.report import format_rows
from repro.experiments.visualize import render_tree
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng

from conftest import make_directory, make_unit


class TestRngDistributions:
    def test_gauss_mean(self):
        rng = SeededRng(0, "gauss")
        samples = [rng.gauss(5.0, 1.0) for _ in range(2000)]
        assert abs(sum(samples) / len(samples) - 5.0) < 0.1

    def test_lognormal_positive(self):
        rng = SeededRng(0, "lognorm")
        assert all(rng.lognormal(0.0, 0.5) > 0 for _ in range(100))

    def test_expovariate_positive(self):
        rng = SeededRng(0, "expo")
        samples = [rng.expovariate(2.0) for _ in range(2000)]
        assert all(sample >= 0 for sample in samples)
        assert abs(sum(samples) / len(samples) - 0.5) < 0.05

    def test_uniform_bounds(self):
        rng = SeededRng(0, "uniform")
        for _ in range(200):
            value = rng.uniform(3.0, 7.0)
            assert 3.0 <= value <= 7.0

    def test_randint_inclusive(self):
        rng = SeededRng(0, "randint")
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}


class TestSimulatorLifecycle:
    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        event.cancel()  # already fired; must not raise
        assert fired == [1]

    def test_pending_counts_cancelled_events(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_drain_empties_queue(self):
        sim = Simulator()
        for delay in (3.0, 1.0, 2.0):
            sim.schedule(delay, lambda: None)
        sim.drain()
        assert sim.pending == 0
        assert sim.events_processed == 3

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 105.0


class TestVisualizeInternals:
    def test_pseudo_units_not_counted_as_subscriptions(self):
        directory = make_directory(["A"])
        tree = BrokerTree("root")
        tree.add_broker("leaf", "root")
        real = make_unit({"A": range(32)}, directory)
        tree.set_units("leaf", [real])
        pseudo = AllocationUnit.for_child_broker("leaf", [real], directory)
        tree.set_units("root", [pseudo])
        text = render_tree(tree, directory)
        lines = text.splitlines()
        # The root holds only a stream pseudo-unit: no "subs" annotation.
        assert "subs" not in lines[0]
        assert "1 subs" in lines[1]


class TestReportFormattingCorners:
    def test_mixed_types_align(self):
        rows = [
            {"name": "a", "value": 1.23456789, "flag": True},
            {"name": "much-longer-name", "value": 2, "flag": False},
        ]
        text = format_rows(rows)
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_missing_column_renders_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_rows(rows, columns=["a", "b"])
        assert "3" in text

    def test_float_formatting_compact(self):
        text = format_rows([{"x": 0.000123456}])
        assert "0.0001235" in text or "0.0001234" in text
