"""Tests for subscriber churn under continuous reconfiguration."""

import pytest

from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.experiments.continuous import ContinuousReconfigurator, SubscriberChurn
from repro.sim.rng import SeededRng

from test_continuous import deployed_network


class TestSubscriberChurn:
    def test_rejects_bad_fractions(self):
        _s, network = deployed_network()
        with pytest.raises(ValueError):
            SubscriberChurn(network, SeededRng(0), leave_fraction=1.5)
        with pytest.raises(ValueError):
            SubscriberChurn(network, SeededRng(0), rejoin_fraction=-0.1)

    def test_leavers_detach_and_are_marked(self):
        _s, network = deployed_network()
        churn = SubscriberChurn(network, SeededRng(1), leave_fraction=0.5,
                                rejoin_fraction=0.0)
        churn(0)
        assert churn.left_total > 0
        departed = [
            subscriber
            for subscriber in network.subscribers.values()
            if subscriber.departed
        ]
        assert len(departed) == churn.left_total
        assert all(subscriber.broker_id is None for subscriber in departed)

    def test_never_empties_the_system(self):
        _s, network = deployed_network()
        churn = SubscriberChurn(network, SeededRng(1), leave_fraction=1.0,
                                rejoin_fraction=0.0)
        churn(0)
        attached = [
            subscriber
            for subscriber in network.subscribers.values()
            if subscriber.broker_id is not None
        ]
        assert attached

    def test_rejoiners_reattach_on_active_brokers(self):
        _s, network = deployed_network()
        churn = SubscriberChurn(network, SeededRng(2), leave_fraction=0.6,
                                rejoin_fraction=1.0)
        churn(0)  # some leave
        left = churn.left_total
        churn.leave_fraction = 0.0  # next cycle: pure rejoin
        churn(1)
        assert churn.rejoined_total == left
        assert not any(s.departed for s in network.subscribers.values())

    def test_departed_stay_out_across_reconfigurations(self):
        scenario, network = deployed_network()
        churn = SubscriberChurn(network, SeededRng(3), leave_fraction=0.4,
                                rejoin_fraction=0.0)
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=10.0,
            on_cycle_start=churn,
        )
        loop.run(network, cycles=2)
        departed = [
            subscriber
            for subscriber in network.subscribers.values()
            if subscriber.departed
        ]
        assert departed
        assert all(subscriber.broker_id is None for subscriber in departed)

    def test_churned_pool_shrinks_croc_input(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        network.run(scenario.derived_profiling_time())
        full = croc.gather(network).subscription_count
        churn = SubscriberChurn(network, SeededRng(4), leave_fraction=0.5,
                                rejoin_fraction=0.0)
        churn(0)
        network.run(scenario.derived_profiling_time())
        reduced = croc.gather(network).subscription_count
        assert reduced < full

    def test_rejoined_subscribers_receive_again(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        rng = SeededRng(5)
        churn = SubscriberChurn(network, rng, leave_fraction=0.5,
                                rejoin_fraction=1.0)
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=15.0,
            on_cycle_start=churn,
        )
        loop.run(network, cycles=3)  # leave, rejoin, settle
        # Everyone who is attached with a full-template subscription
        # should be receiving by the last cycle.
        before = {
            s.client_id: s.delivered
            for s in network.subscribers.values()
            if s.broker_id is not None
            and all(len(sub.predicates) == 2 for sub in s.subscriptions)
        }
        network.run(30.0)
        for client_id, count in before.items():
            assert network.subscribers[client_id].delivered > count
