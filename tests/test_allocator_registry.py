"""The allocator registry: registration contract and runner integration."""

from __future__ import annotations

import pytest

from repro.core import allocators
from repro.core.binpacking import BinPackingAllocator
from repro.experiments.runner import (
    APPROACHES,
    ExperimentRunner,
    available_approaches,
)
from repro.workloads.scenarios import cluster_homogeneous


class TestRegistryContract:
    def test_paper_allocators_in_presentation_order(self):
        assert allocators.registered_names()[:6] == (
            "fbf",
            "binpacking",
            "cram-intersect",
            "cram-xor",
            "cram-ios",
            "cram-iou",
        )

    def test_get_builds_fresh_factories(self):
        factory = allocators.get("cram-ios", failure_budget=150)
        first, second = factory(), factory()
        assert first is not second
        assert first.name == "cram-ios"

    def test_get_unknown_name_raises_with_inventory(self):
        with pytest.raises(ValueError, match="unknown allocator.*binpacking"):
            allocators.get("cram-cosine")

    def test_builders_ignore_foreign_knobs(self):
        factory = allocators.get("binpacking", rng=object(), failure_budget=1)
        assert isinstance(factory(), BinPackingAllocator)

    def test_register_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError, match="non-empty"):
            allocators.register("", lambda **_: BinPackingAllocator)
        with pytest.raises(ValueError, match="already registered"):
            allocators.register("fbf", lambda **_: BinPackingAllocator)

    def test_replace_and_unregister_roundtrip(self):
        marker = lambda **_: BinPackingAllocator  # noqa: E731
        allocators.register("toy-replaceable", marker)
        try:
            assert allocators.is_registered("toy-replaceable")
            replacement = lambda **_: BinPackingAllocator  # noqa: E731
            allocators.register("toy-replaceable", replacement, replace=True)
            assert allocators.get("toy-replaceable") is BinPackingAllocator
        finally:
            allocators.unregister("toy-replaceable")
        assert not allocators.is_registered("toy-replaceable")
        with pytest.raises(ValueError, match="not registered"):
            allocators.unregister("toy-replaceable")

    def test_aliases_are_the_same_objects(self):
        assert allocators.register_allocator is allocators.register
        assert allocators.get_allocator is allocators.get
        assert allocators.registered_allocators is allocators.registered_names


class _ToyAllocator(BinPackingAllocator):
    """A registered plugin variant (keeps the allocate() contract)."""

    name = "toy"


class TestRunnerIntegration:
    def test_approaches_snapshot_includes_registry_names(self):
        assert APPROACHES[:4] == ("manual", "automatic", "pairwise-k", "pairwise-n")
        assert set(allocators.registered_names()) <= set(APPROACHES)

    def test_available_approaches_tracks_live_registry(self):
        allocators.register("toy", lambda **_: _ToyAllocator)
        try:
            assert "toy" in available_approaches()
            assert "toy" not in APPROACHES  # import-time snapshot stays fixed
        finally:
            allocators.unregister("toy")
        assert "toy" not in available_approaches()

    def test_runner_drives_a_registered_plugin_end_to_end(self):
        allocators.register("toy", lambda **_: _ToyAllocator)
        try:
            scenario = cluster_homogeneous(
                subscriptions_per_publisher=8, scale=0.1, measurement_time=10.0
            )
            result = ExperimentRunner(scenario, seed=7).run("toy")
            assert result.approach == "toy"
            assert result.allocated_brokers >= 1
            assert result.summary.delivery_count > 0
        finally:
            allocators.unregister("toy")

    def test_runner_rejects_unregistered_approach(self):
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=8, scale=0.1, measurement_time=10.0
        )
        with pytest.raises(ValueError, match="unknown approach"):
            ExperimentRunner(scenario, seed=7).run("toy")
