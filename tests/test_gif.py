"""Tests for GIF grouping — CRAM optimization 1."""

import pytest

from repro.core.gif import Gif, build_gifs, gif_reduction_ratio
from repro.core.units import AllocationUnit

from conftest import make_directory, make_unit


@pytest.fixture
def directory():
    return make_directory(["A", "B"])


class TestBuildGifs:
    def test_groups_identical_profiles(self, directory):
        units = [
            make_unit({"A": [1, 2]}, directory),
            make_unit({"A": [1, 2]}, directory),
            make_unit({"A": [1, 3]}, directory),
        ]
        gifs = build_gifs(units)
        assert len(gifs) == 2
        sizes = sorted(gif.unit_count for gif in gifs)
        assert sizes == [1, 2]

    def test_grouping_spans_publishers(self, directory):
        units = [
            make_unit({"A": [1], "B": [2]}, directory),
            make_unit({"B": [2], "A": [1]}, directory),
        ]
        assert len(build_gifs(units)) == 1

    def test_empty_profiles_group_together(self, directory):
        units = [make_unit({}, directory), make_unit({}, directory)]
        gifs = build_gifs(units)
        assert len(gifs) == 1
        assert gifs[0].unit_count == 2

    def test_preserves_first_seen_order(self, directory):
        units = [
            make_unit({"A": [9]}, directory),
            make_unit({"A": [1]}, directory),
        ]
        gifs = build_gifs(units)
        assert gifs[0].profile.vector("A").to_list() == [9]

    def test_no_units(self):
        assert build_gifs([]) == []


class TestGif:
    def test_counts_and_bandwidth(self, directory):
        a = make_unit({"A": range(32)}, directory)  # 5 kB/s
        b = make_unit({"A": range(32)}, directory)
        gif = Gif(a.profile, [a, b])
        assert gif.unit_count == 2
        assert gif.subscription_count == 2
        assert gif.total_bandwidth == pytest.approx(10.0)

    def test_lightest_unit(self, directory):
        light = make_unit({"A": [1]}, directory)
        heavy = AllocationUnit.merged(
            [make_unit({"A": [1]}, directory), make_unit({"A": [1]}, directory)],
            directory,
        )
        gif = Gif(light.profile, [heavy, light])
        assert gif.lightest_unit() is light

    def test_lightest_unit_empty_gif_raises(self, directory):
        gif = Gif(make_unit({"A": [1]}, directory).profile, [])
        with pytest.raises(ValueError):
            gif.lightest_unit()

    def test_units_ascending_bandwidth_deterministic(self, directory):
        units = [make_unit({"A": [1]}, directory) for _ in range(3)]
        gif = Gif(units[0].profile, units)
        ordered = gif.units_ascending_bandwidth()
        assert [u.unit_id for u in ordered] == sorted(u.unit_id for u in units)

    def test_remove_and_add_units(self, directory):
        a = make_unit({"A": [1]}, directory)
        b = make_unit({"A": [1]}, directory)
        gif = Gif(a.profile, [a, b])
        gif.remove_units([a])
        assert gif.unit_count == 1
        assert not gif.is_empty()
        gif.remove_units([b])
        assert gif.is_empty()
        gif.add_unit(a)
        assert gif.unit_count == 1


class TestReductionRatio:
    def test_paper_style_reduction(self):
        """8,000 subscriptions to 3,120 GIFs ≈ the paper's 61%."""
        assert gif_reduction_ratio(8000, 3120) == pytest.approx(0.61)

    def test_zero_subscriptions(self):
        assert gif_reduction_ratio(0, 0) == 0.0

    def test_no_reduction(self):
        assert gif_reduction_ratio(10, 10) == 0.0

    def test_workload_template_subscriptions_collapse(self, directory):
        """40% identical template subs per symbol → one GIF per symbol."""
        units = [make_unit({"A": range(64)}, directory) for _ in range(10)]
        units += [make_unit({"B": range(64)}, directory) for _ in range(10)]
        gifs = build_gifs(units)
        assert len(gifs) == 2
        assert gif_reduction_ratio(len(units), len(gifs)) == pytest.approx(0.9)
