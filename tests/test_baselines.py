"""Tests for the MANUAL and AUTOMATIC baseline deployments."""

import pytest

from repro.core.baselines import automatic_deployment, manual_deployment
from repro.sim.rng import SeededRng

from conftest import make_pool, make_spec


def pool_with_tiers():
    return (
        [make_spec(f"big{i}", 100.0) for i in range(2)]
        + [make_spec(f"mid{i}", 50.0) for i in range(3)]
        + [make_spec(f"sml{i}", 25.0) for i in range(5)]
    )


class TestManual:
    def test_fanout_two_tree(self):
        pool = make_pool(7)
        deployment = manual_deployment(pool, ["s1"], ["A"], SeededRng(0, "t"))
        deployment.validate()
        tree = deployment.tree
        assert len(tree) == 7
        for broker in tree.brokers:
            assert len(tree.children(broker)) <= 2

    def test_all_brokers_in_tree(self):
        pool = make_pool(12)
        deployment = manual_deployment(pool, [], [], SeededRng(0, "t"))
        assert len(deployment.tree) == 12

    def test_homogeneous_ids_ordered_top_down(self):
        pool = make_pool(5)
        deployment = manual_deployment(pool, [], [], SeededRng(0, "t"))
        assert deployment.tree.root == "B00"

    def test_heterogeneous_puts_resourceful_on_top(self):
        pool = pool_with_tiers()
        deployment = manual_deployment(
            pool, [], [], SeededRng(0, "t"), heterogeneous=True
        )
        tree = deployment.tree
        assert tree.root.startswith("big")
        # Leaves are drawn from the weakest tier.
        assert all(leaf.startswith("sml") for leaf in tree.leaves())

    def test_heterogeneous_subscriber_placement_proportional(self):
        pool = pool_with_tiers()
        subs = [f"s{i}" for i in range(600)]
        deployment = manual_deployment(
            pool, subs, [], SeededRng(1, "t"), heterogeneous=True
        )
        counts = {"big": 0, "mid": 0, "sml": 0}
        for broker in deployment.subscription_placement.values():
            counts[broker[:3]] += 1
        per_big = counts["big"] / 2
        per_sml = counts["sml"] / 5
        assert per_big > per_sml  # 100 kB/s brokers host more than 25 kB/s

    def test_every_client_placed(self):
        pool = make_pool(4)
        deployment = manual_deployment(
            pool, ["s1", "s2"], ["A", "B"], SeededRng(0, "t")
        )
        assert set(deployment.subscription_placement) == {"s1", "s2"}
        assert set(deployment.publisher_placement) == {"A", "B"}

    def test_deterministic_under_seed(self):
        pool = make_pool(6)
        a = manual_deployment(pool, ["s1", "s2"], ["A"], SeededRng(5, "x"))
        b = manual_deployment(pool, ["s1", "s2"], ["A"], SeededRng(5, "x"))
        assert a.subscription_placement == b.subscription_placement
        assert list(a.tree.edges()) == list(b.tree.edges())

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            manual_deployment([], [], [], SeededRng(0, "t"))

    def test_custom_fanout(self):
        pool = make_pool(13)
        deployment = manual_deployment(pool, [], [], SeededRng(0, "t"), fanout=3)
        for broker in deployment.tree.brokers:
            assert len(deployment.tree.children(broker)) <= 3


class TestAutomatic:
    def test_random_tree_spans_pool(self):
        pool = make_pool(9)
        deployment = automatic_deployment(pool, ["s1"], ["A"], SeededRng(0, "t"))
        deployment.validate()
        assert len(deployment.tree) == 9

    def test_random_placement_covers_all_clients(self):
        pool = make_pool(4)
        subs = [f"s{i}" for i in range(10)]
        deployment = automatic_deployment(pool, subs, ["A"], SeededRng(0, "t"))
        assert set(deployment.subscription_placement) == set(subs)

    def test_different_seeds_give_different_overlays(self):
        pool = make_pool(10)
        edge_sets = {
            tuple(sorted(automatic_deployment(pool, [], [], SeededRng(seed, "t")).tree.edges()))
            for seed in range(5)
        }
        assert len(edge_sets) > 1

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            automatic_deployment([], [], [], SeededRng(0, "t"))
