"""Property-based tests for the predicate algebra.

The routing layer relies on two soundness properties:

* ``intersects(p, q)`` may over-approximate but must never report
  ``False`` when a value satisfying both exists (a false negative
  would silently drop subscriptions from routing paths);
* ``covers(p, q)`` may under-approximate but must never report ``True``
  unless every value matching ``q`` matches ``p`` (an unsound cover
  would suppress live subscriptions under the covering optimization).

Hypothesis hammers both with random numeric predicates and probe
values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub.predicate import Operator, Predicate, covers, intersects

NUMERIC_OPS = (Operator.LT, Operator.LE, Operator.GT, Operator.GE, Operator.EQ)

values = st.integers(min_value=-50, max_value=50).map(float)
numeric_predicates = st.builds(
    lambda op, value: Predicate("x", op, value),
    st.sampled_from(NUMERIC_OPS),
    values,
)
probes = st.one_of(
    st.integers(min_value=-60, max_value=60).map(float),
    st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
)


@given(p=numeric_predicates, q=numeric_predicates, probe=probes)
@settings(max_examples=300)
def test_prop_intersects_has_no_false_negatives(p, q, probe):
    if p.matches(probe) and q.matches(probe):
        assert intersects(p, q), f"{p} and {q} both match {probe}"


@given(p=numeric_predicates, q=numeric_predicates, probe=probes)
@settings(max_examples=300)
def test_prop_covers_is_sound(p, q, probe):
    if covers(p, q) and q.matches(probe):
        assert p.matches(probe), f"{p} claimed to cover {q} but missed {probe}"


@given(p=numeric_predicates, q=numeric_predicates)
@settings(max_examples=200)
def test_prop_intersects_symmetric(p, q):
    assert intersects(p, q) == intersects(q, p)


@given(p=numeric_predicates)
@settings(max_examples=100)
def test_prop_predicate_intersects_itself(p):
    assert intersects(p, p)


@given(p=numeric_predicates)
@settings(max_examples=100)
def test_prop_predicate_covers_itself(p):
    assert covers(p, p)


@given(p=numeric_predicates, q=numeric_predicates)
@settings(max_examples=200)
def test_prop_cover_implies_intersect_when_satisfiable(p, q):
    # If p covers a satisfiable q, the two trivially intersect.
    if covers(p, q):
        # Find a witness value for q among a coarse probe grid.
        witness = next(
            (value for value in range(-55, 56) if q.matches(float(value))), None
        )
        if witness is not None:
            assert intersects(p, q)


@given(
    op=st.sampled_from((Operator.PREFIX, Operator.SUFFIX, Operator.CONTAINS)),
    text=st.text(alphabet="abc", max_size=6),
    fragment=st.text(alphabet="abc", max_size=3),
)
@settings(max_examples=150)
def test_prop_string_predicates_consistent(op, text, fragment):
    predicate = Predicate("s", op, fragment)
    result = predicate.matches(text)
    if op is Operator.PREFIX:
        assert result == text.startswith(fragment)
    elif op is Operator.SUFFIX:
        assert result == text.endswith(fragment)
    else:
        assert result == (fragment in text)
