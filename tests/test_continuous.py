"""Tests for continuous (periodic) reconfiguration under drift."""

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.experiments.continuous import ContinuousReconfigurator, RateDrift
from repro.experiments.runner import ExperimentRunner
from repro.workloads.scenarios import cluster_homogeneous


def deployed_network(seed=17, bandwidth=25.0):
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=12,
        scale=0.15,
        broker_bandwidth_kbps=bandwidth,
        profile_capacity=96,
    )
    runner = ExperimentRunner(scenario, seed=seed)
    network = runner._build_network()
    runner._deploy_manual(network)
    return scenario, network


class TestContinuousLoop:
    def test_reports_one_per_cycle(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=BinPackingAllocator)
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=10.0,
        )
        reports = loop.run(network, cycles=2)
        assert [report.cycle for report in reports] == [0, 1]
        assert all(report.reconfigured for report in reports)
        assert reports[0].virtual_time < reports[1].virtual_time

    def test_stable_workload_keeps_small_footprint(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=10.0,
        )
        reports = loop.run(network, cycles=2)
        assert all(
            report.allocated_brokers < scenario.broker_count for report in reports
        )

    def test_footprint_grows_with_rate_burst(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        drift = RateDrift(network, factors=(1.0, 3.0))
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=10.0,
            on_cycle_start=drift,
        )
        reports = loop.run(network, cycles=2)
        quiet, burst = reports
        assert burst.reconfigured
        assert burst.allocated_brokers > quiet.allocated_brokers

    def test_footprint_shrinks_back_after_burst(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        drift = RateDrift(network, factors=(3.0, 0.5))
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=10.0,
            on_cycle_start=drift,
        )
        reports = loop.run(network, cycles=2)
        assert reports[1].allocated_brokers < reports[0].allocated_brokers

    def test_deliveries_flow_every_cycle(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=BinPackingAllocator)
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=15.0,
            on_cycle_start=RateDrift(network, factors=(1.0, 2.0, 0.5)),
        )
        reports = loop.run(network, cycles=3)
        assert all(report.summary.delivery_count > 0 for report in reports)

    def test_as_row_serializes(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=BinPackingAllocator)
        loop = ContinuousReconfigurator(
            croc,
            profiling_time=scenario.derived_profiling_time(),
            measurement_time=5.0,
        )
        (report,) = loop.run(network, cycles=1)
        row = report.as_row()
        assert row["cycle"] == 0
        assert row["reconfigured"] is True


class TestStandbyPool:
    def test_standby_brokers_return_to_pool(self):
        """Deallocated brokers remain allocatable in later cycles."""
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        network.run(scenario.derived_profiling_time())
        croc.reconfigure(network)
        assert len(network.active_brokers) < scenario.broker_count
        network.run(10.0)
        gathered = croc.gather(network)
        assert len(gathered.broker_pool) == scenario.broker_count

    def test_standby_can_be_excluded(self):
        scenario, network = deployed_network()
        croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
        network.run(scenario.derived_profiling_time())
        croc.reconfigure(network)
        network.run(10.0)
        gathered = croc.gather(network, include_standby=False)
        assert len(gathered.broker_pool) == len(network.active_brokers)


class TestRateDrift:
    def test_scales_from_base_rates(self):
        _scenario, network = deployed_network()
        base = {cid: p.rate for cid, p in network.publishers.items()}
        drift = RateDrift(network, factors=(2.0, 0.5))
        drift(0)
        assert all(
            network.publishers[cid].rate == pytest.approx(2.0 * rate)
            for cid, rate in base.items()
        )
        drift(1)
        assert all(
            network.publishers[cid].rate == pytest.approx(0.5 * rate)
            for cid, rate in base.items()
        )

    def test_factors_cycle(self):
        _scenario, network = deployed_network()
        base = {cid: p.rate for cid, p in network.publishers.items()}
        drift = RateDrift(network, factors=(1.5,))
        drift(0)
        drift(7)
        assert all(
            network.publishers[cid].rate == pytest.approx(1.5 * rate)
            for cid, rate in base.items()
        )


class TestControlPlanePriority:
    def test_gather_survives_saturated_data_plane(self):
        """BIR/BIA succeed even when publication queues are overloaded."""
        scenario, network = deployed_network(bandwidth=25.0)
        croc = Croc(allocator_factory=BinPackingAllocator)
        network.run(scenario.derived_profiling_time())
        croc.reconfigure(network)
        for publisher in network.publishers.values():
            publisher.rate *= 4.0  # saturate the consolidated brokers
        network.run(60.0)
        gathered = croc.gather(network)  # must not time out
        assert gathered.subscription_count == scenario.total_subscriptions
