"""Tests for the monitoring workload (language independence)."""

import pytest

from repro.core.cram import CramAllocator
from repro.core.profiles import PublisherProfile
from repro.core.units import SubscriptionRecord, units_from_records
from repro.pubsub.matching import matches, overlaps
from repro.pubsub.message import Publication
from repro.pubsub.predicate import Operator
from repro.sim.rng import SeededRng
from repro.workloads.monitoring import (
    METRICS,
    ROLES,
    MetricFeed,
    build_hosts,
    metric_advertisement,
    monitoring_subscriptions,
)

from conftest import make_pool


class TestMetricFeed:
    def test_schema(self):
        feed = MetricFeed("web-001", "web", SeededRng(0))
        sample = next(feed)
        assert set(sample) == {
            "class", "host", "role", "metric", "value", "severity", "seq",
        }
        assert sample["class"] == "METRIC"
        assert sample["host"] == "web-001"

    def test_values_stay_in_range(self):
        feed = MetricFeed("db-002", "db", SeededRng(1))
        for _ in range(300):
            sample = next(feed)
            low, high = METRICS[sample["metric"]]
            assert low <= sample["value"] <= high

    def test_sequence_numbers_increase(self):
        feed = MetricFeed("web-001", "web", SeededRng(2))
        seqs = [next(feed)["seq"] for _ in range(10)]
        assert seqs == list(range(1, 11))

    def test_severity_distribution_skewed_low(self):
        feed = MetricFeed("web-001", "web", SeededRng(3))
        severities = [next(feed)["severity"] for _ in range(500)]
        assert severities.count(0) > severities.count(3)
        assert 3 in severities or 2 in severities  # spikes do occur

    def test_samples_satisfy_advertisement(self):
        feed = MetricFeed("cache-003", "cache", SeededRng(4))
        advertisement = metric_advertisement("cache-003", "cache")
        for _ in range(50):
            sample = next(feed)
            for predicate in advertisement.predicates:
                assert predicate.matches(sample[predicate.attribute])

    def test_deterministic(self):
        a = [next(MetricFeed("web-001", "web", SeededRng(5))) for _ in range(3)]
        b = [next(MetricFeed("web-001", "web", SeededRng(5))) for _ in range(3)]
        assert a == b


class TestSubscriptionGenerator:
    def _hosts(self):
        return build_hosts(8, SeededRng(0))

    def test_count_and_unique_ids(self):
        subs = monitoring_subscriptions(self._hosts(), 50, SeededRng(0))
        assert len(subs) == 50
        assert len({s.sub_id for s in subs}) == 50

    def test_population_mix(self):
        subs = monitoring_subscriptions(self._hosts(), 400, SeededRng(1))
        dashboards = sum(
            1 for s in subs
            if any(p.attribute == "host" for p in s.predicates)
        )
        alerts = sum(
            1 for s in subs
            if any(p.attribute == "value" for p in s.predicates)
        )
        severity = sum(
            1 for s in subs
            if any(p.attribute == "severity" for p in s.predicates)
        )
        assert 0.2 < dashboards / 400 < 0.4
        assert 0.15 < alerts / 400 < 0.35
        assert 0.05 < severity / 400 < 0.25

    def test_threshold_alerts_are_selective(self):
        hosts = self._hosts()
        subs = monitoring_subscriptions(hosts, 200, SeededRng(2))
        feed = MetricFeed(*hosts[0], SeededRng(2))
        samples = [next(feed) for _ in range(200)]
        for subscription in subs:
            if not any(p.attribute == "value" for p in subscription.predicates):
                continue
            hits = sum(
                1
                for sample in samples
                if matches(
                    subscription,
                    Publication("adv", 1, sample, 0.0, 0.3),
                )
            )
            assert hits < len(samples)  # a threshold never matches everything

    def test_subscriptions_overlap_some_advertisement(self):
        hosts = self._hosts()
        advertisements = [metric_advertisement(h, r) for h, r in hosts]
        subs = monitoring_subscriptions(hosts, 100, SeededRng(3))
        for subscription in subs:
            assert any(overlaps(subscription, adv) for adv in advertisements)


class TestBuildHosts:
    def test_roles_round_robin(self):
        hosts = build_hosts(8, SeededRng(0))
        roles = sorted(role for _h, role in hosts)
        for role in ROLES:
            assert roles.count(role) == 2

    def test_names_unique(self):
        hosts = build_hosts(20, SeededRng(1))
        assert len({host for host, _r in hosts}) == 20


class TestAllocationOnMonitoringProfiles:
    def test_cram_clusters_monitoring_profiles(self):
        """The allocator consumes monitoring bit vectors unchanged."""
        rng = SeededRng(9)
        hosts = build_hosts(6, rng)
        subs = monitoring_subscriptions(hosts, 60, rng)
        directory = {}
        feeds = {}
        window = 96
        for host, role in hosts:
            adv_id = f"adv-{host}"
            directory[adv_id] = PublisherProfile(
                adv_id, publication_rate=2.0, bandwidth=0.6, last_message_id=window
            )
            feeds[adv_id] = [
                Publication(adv_id, i, next(MetricFeed(host, role, rng)), 0.0, 0.3)
                for i in range(1, window + 1)
            ]
        records = []
        for subscription in subs:
            from repro.core.profiles import SubscriptionProfile

            profile = SubscriptionProfile(capacity=window)
            for adv_id, publications in feeds.items():
                for publication in publications:
                    if matches(subscription, publication):
                        profile.record(adv_id, publication.message_id)
            profile.synchronize(directory)
            records.append(
                SubscriptionRecord(subscription.sub_id, subscription.subscriber_id,
                                   profile)
            )
        units = units_from_records(records, directory)
        cram = CramAllocator(metric="ios")
        result = cram.allocate(units, make_pool(10, bandwidth=20.0), directory)
        assert result.success
        assert cram.last_stats.merges > 0
        assert len(result.subscription_placement()) == 60
