"""Shared test fixtures and builders."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import pytest

from repro.core.bitvector import BitVector
from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.core.profiles import PublisherProfile, SubscriptionProfile
from repro.core.units import AllocationUnit, SubscriptionRecord

# ----------------------------------------------------------------------
# Profile / unit builders used across most core tests
# ----------------------------------------------------------------------


def make_profile(
    bits_by_adv: Dict[str, Iterable[int]], capacity: int = 64
) -> SubscriptionProfile:
    """A profile with the given publication IDs set per publisher."""
    profile = SubscriptionProfile(capacity=capacity)
    for adv_id, ids in bits_by_adv.items():
        for pub_id in sorted(ids):
            profile.record(adv_id, pub_id)
    return profile


def make_directory(
    advs: Sequence[str],
    rate: float = 10.0,
    bandwidth: float = 10.0,
    last_message_id: int = 63,
) -> Dict[str, PublisherProfile]:
    """Uniform publisher directory: each adv at the same rate/bandwidth."""
    return {
        adv_id: PublisherProfile(
            adv_id=adv_id,
            publication_rate=rate,
            bandwidth=bandwidth,
            last_message_id=last_message_id,
        )
        for adv_id in advs
    }


_record_counter = [0]


def make_record(
    bits_by_adv: Dict[str, Iterable[int]],
    capacity: int = 64,
    sub_id: Optional[str] = None,
) -> SubscriptionRecord:
    _record_counter[0] += 1
    name = sub_id or f"s{_record_counter[0]}"
    return SubscriptionRecord(
        sub_id=name,
        subscriber_id=name,
        profile=make_profile(bits_by_adv, capacity=capacity),
    )


def make_unit(
    bits_by_adv: Dict[str, Iterable[int]],
    directory: Dict[str, PublisherProfile],
    capacity: int = 64,
    sub_id: Optional[str] = None,
) -> AllocationUnit:
    record = make_record(bits_by_adv, capacity=capacity, sub_id=sub_id)
    return AllocationUnit.for_subscription(record, directory)


def make_spec(
    broker_id: str,
    bandwidth: float = 100.0,
    base_delay: float = 1e-4,
    per_sub_delay: float = 1e-6,
) -> BrokerSpec:
    return BrokerSpec(
        broker_id=broker_id,
        total_output_bandwidth=bandwidth,
        delay_function=MatchingDelayFunction(base=base_delay, per_subscription=per_sub_delay),
    )


def make_pool(count: int, bandwidth: float = 100.0) -> List[BrokerSpec]:
    return [make_spec(f"B{i:02d}", bandwidth=bandwidth) for i in range(count)]


@pytest.fixture
def directory():
    """Two publishers, 10 msg/s and 10 kB/s each, window of 64."""
    return make_directory(["A", "B"])
