"""Tests for publication/subscription/advertisement matching."""

import pytest

from repro.pubsub.matching import (
    MatchingIndex,
    matches,
    overlaps,
    subscription_covers,
)
from repro.pubsub.message import Advertisement, Publication, Subscription
from repro.pubsub.predicate import parse_predicates


def sub(sub_id, *triples):
    return Subscription(sub_id=sub_id, subscriber_id=sub_id,
                        predicates=parse_predicates(triples))


def adv(adv_id, *triples):
    return Advertisement(adv_id=adv_id, publisher_id=f"p-{adv_id}",
                         predicates=parse_predicates(triples))


def pub(**attrs):
    return Publication(adv_id="A", message_id=1, attributes=attrs,
                       publish_time=0.0, size_kb=0.5)


YHOO_PUB = dict(
    attrs={"class": "STOCK", "symbol": "YHOO", "low": 18.37, "volume": 6200}
)


class TestMatches:
    def test_full_conjunction(self):
        subscription = sub("s", ("class", "=", "STOCK"), ("symbol", "=", "YHOO"))
        assert matches(subscription, pub(**YHOO_PUB["attrs"]))

    def test_one_failed_predicate_rejects(self):
        subscription = sub("s", ("symbol", "=", "MSFT"))
        assert not matches(subscription, pub(**YHOO_PUB["attrs"]))

    def test_missing_attribute_rejects(self):
        subscription = sub("s", ("nonexistent", "=", 1))
        assert not matches(subscription, pub(**YHOO_PUB["attrs"]))

    def test_inequality_predicate(self):
        low = sub("s", ("symbol", "=", "YHOO"), ("low", "<", 20.0))
        high = sub("s", ("symbol", "=", "YHOO"), ("low", ">", 20.0))
        publication = pub(**YHOO_PUB["attrs"])
        assert matches(low, publication)
        assert not matches(high, publication)

    def test_empty_subscription_matches_everything(self):
        assert matches(sub("s"), pub(**YHOO_PUB["attrs"]))


class TestOverlaps:
    def test_matching_symbol(self):
        subscription = sub("s", ("class", "=", "STOCK"), ("symbol", "=", "YHOO"))
        advertisement = adv("a", ("class", "=", "STOCK"), ("symbol", "=", "YHOO"),
                            ("low", ">=", 0.0))
        assert overlaps(subscription, advertisement)

    def test_wrong_symbol(self):
        subscription = sub("s", ("symbol", "=", "MSFT"))
        advertisement = adv("a", ("symbol", "=", "YHOO"))
        assert not overlaps(subscription, advertisement)

    def test_unadvertised_attribute_rejects(self):
        subscription = sub("s", ("volume", ">", 100.0))
        advertisement = adv("a", ("symbol", "=", "YHOO"))
        assert not overlaps(subscription, advertisement)

    def test_range_constraint_must_be_satisfiable(self):
        subscription = sub("s", ("low", "<", 0.0))
        advertisement = adv("a", ("low", ">=", 0.0))
        assert not overlaps(subscription, advertisement)

    def test_satisfiable_range(self):
        subscription = sub("s", ("low", "<", 50.0))
        advertisement = adv("a", ("low", ">=", 0.0))
        assert overlaps(subscription, advertisement)


class TestSubscriptionCovers:
    def test_fewer_predicates_cover_more(self):
        general = sub("g", ("symbol", "=", "YHOO"))
        specific = sub("s", ("symbol", "=", "YHOO"), ("low", "<", 20.0))
        assert subscription_covers(general, specific)
        assert not subscription_covers(specific, general)

    def test_wider_threshold_covers(self):
        general = sub("g", ("symbol", "=", "YHOO"), ("low", "<", 30.0))
        specific = sub("s", ("symbol", "=", "YHOO"), ("low", "<", 20.0))
        assert subscription_covers(general, specific)

    def test_disjoint_symbols_do_not_cover(self):
        a = sub("a", ("symbol", "=", "YHOO"))
        b = sub("b", ("symbol", "=", "MSFT"))
        assert not subscription_covers(a, b)


class TestMatchingIndex:
    def test_indexes_by_equality_predicate(self):
        index = MatchingIndex()
        index.add(sub("s1", ("class", "=", "STOCK"), ("symbol", "=", "YHOO")), "dest1")
        index.add(sub("s2", ("class", "=", "STOCK"), ("symbol", "=", "MSFT")), "dest2")
        payloads = index.matching_payloads(pub(**YHOO_PUB["attrs"]))
        assert payloads == ["dest1"]

    def test_prefers_selective_attribute_over_class(self):
        index = MatchingIndex()
        index.add(sub("s1", ("class", "=", "STOCK"), ("symbol", "=", "YHOO")), "d")
        # The bucket key should be the symbol, not the shared class.
        assert ("symbol", "YHOO") in index._buckets

    def test_fallback_for_subscriptions_without_equality(self):
        index = MatchingIndex()
        index.add(sub("s1", ("low", "<", 20.0)), "d")
        assert index.matching_payloads(pub(**YHOO_PUB["attrs"])) == ["d"]

    def test_deduplicates_payloads(self):
        index = MatchingIndex()
        index.add(sub("s1", ("symbol", "=", "YHOO")), "same-broker")
        index.add(sub("s2", ("symbol", "=", "YHOO")), "same-broker")
        assert index.matching_payloads(pub(**YHOO_PUB["attrs"])) == ["same-broker"]

    def test_matching_entries_keeps_every_subscription(self):
        index = MatchingIndex()
        index.add(sub("s1", ("symbol", "=", "YHOO")), "b")
        index.add(sub("s2", ("symbol", "=", "YHOO")), "b")
        entries = index.matching_entries(pub(**YHOO_PUB["attrs"]))
        assert {s.sub_id for s, _d in entries} == {"s1", "s2"}

    def test_duplicate_add_ignored(self):
        index = MatchingIndex()
        subscription = sub("s1", ("symbol", "=", "YHOO"))
        index.add(subscription, "d")
        index.add(subscription, "d")
        assert len(index) == 1

    def test_same_subscription_two_destinations(self):
        index = MatchingIndex()
        subscription = sub("s1", ("symbol", "=", "YHOO"))
        index.add(subscription, "d1")
        index.add(subscription, "d2")
        assert len(index) == 2
        assert set(index.matching_payloads(pub(**YHOO_PUB["attrs"]))) == {"d1", "d2"}

    def test_remove_subscription(self):
        index = MatchingIndex()
        index.add(sub("s1", ("symbol", "=", "YHOO")), "d1")
        index.add(sub("s2", ("low", "<", 99.0)), "d2")
        index.remove_subscription("s1")
        index.remove_subscription("s2")
        assert len(index) == 0
        assert index.matching_payloads(pub(**YHOO_PUB["attrs"])) == []

    def test_len_counts_entries(self):
        index = MatchingIndex()
        index.add(sub("s1", ("symbol", "=", "YHOO")), "d")
        index.add(sub("s2", ("low", "<", 20.0)), "d")
        assert len(index) == 2

    def test_entries_iterates_everything(self):
        index = MatchingIndex()
        index.add(sub("s1", ("symbol", "=", "YHOO")), "d")
        index.add(sub("s2", ("low", "<", 20.0)), "d")
        assert {s.sub_id for s, _d in index.entries()} == {"s1", "s2"}
