"""Tests for the four closeness metrics (paper §IV-C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.closeness import (
    METRIC_NAMES,
    XOR_MAX,
    intersect_metric,
    ios_metric,
    iou_metric,
    make_metric,
    xor_metric,
)

from conftest import make_profile


class TestIntersect:
    def test_counts_shared_bits(self):
        a = make_profile({"A": [1, 2, 3]})
        b = make_profile({"A": [2, 3, 4]})
        assert intersect_metric(a, b) == 2.0

    def test_zero_for_empty_relation(self):
        assert intersect_metric(make_profile({"A": [1]}), make_profile({"A": [2]})) == 0.0


class TestXor:
    def test_inverse_of_xor_cardinality(self):
        a = make_profile({"A": [1, 2]})
        b = make_profile({"A": [2, 3]})
        assert xor_metric(a, b) == pytest.approx(0.5)

    def test_capped_for_identical_profiles(self):
        a = make_profile({"A": [1, 2]})
        b = make_profile({"A": [1, 2]})
        assert xor_metric(a, b) == XOR_MAX

    def test_nonzero_even_for_disjoint_profiles(self):
        """The Gryphon flaw: XOR cannot distinguish empty relations."""
        a = make_profile({"A": [1]})
        b = make_profile({"A": [2]})
        assert xor_metric(a, b) > 0.0


class TestIosIou:
    def test_paper_figure3_example(self):
        """|S1|=36, |S2|=16, |S1∩S2|=8 → IOS = 64/52 ≈ 1.23... with the
        paper's rounded numbers 8²÷60 ≈ 1.07 uses |S1|+|S2|=60 before
        removing the overlap; we verify the formula directly."""
        s1 = make_profile({"A": range(36)}, capacity=64)
        s2 = make_profile({"A": range(28, 44)}, capacity=64)  # 16 bits, 8 shared
        assert s1.cardinality == 36
        assert s2.cardinality == 16
        assert s1.intersection_cardinality(s2) == 8
        assert ios_metric(s1, s2) == pytest.approx(8 * 8 / (36 + 16))
        assert iou_metric(s1, s2) == pytest.approx(8 * 8 / 44)

    def test_zero_on_empty_relation(self):
        a = make_profile({"A": [1]})
        b = make_profile({"B": [1]})
        assert ios_metric(a, b) == 0.0
        assert iou_metric(a, b) == 0.0

    def test_favours_high_traffic_pairs(self):
        """Squaring the intersection prefers heavy overlapping pairs."""
        heavy_a = make_profile({"A": range(20)})
        heavy_b = make_profile({"A": range(20)})
        light_a = make_profile({"A": [1, 2]})
        light_b = make_profile({"A": [1, 2]})
        assert ios_metric(heavy_a, heavy_b) > ios_metric(light_a, light_b)
        assert iou_metric(heavy_a, heavy_b) > iou_metric(light_a, light_b)

    def test_penalizes_dragged_along_traffic(self):
        """Same overlap, more non-shared traffic → lower closeness."""
        base = make_profile({"A": range(10)})
        tight = make_profile({"A": range(10)})
        baggy = make_profile({"A": range(30)})
        assert ios_metric(base, tight) > ios_metric(base, baggy)
        assert iou_metric(base, tight) > iou_metric(base, baggy)


class TestRegistry:
    def test_all_four_metrics_exist(self):
        assert set(METRIC_NAMES) == {"intersect", "xor", "ios", "iou"}

    def test_prunable_flags(self):
        assert make_metric("intersect").prunable
        assert make_metric("ios").prunable
        assert make_metric("iou").prunable
        assert not make_metric("xor").prunable

    def test_case_insensitive(self):
        assert make_metric("IOS").name == "ios"

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError, match="unknown closeness metric"):
            make_metric("cosine")

    def test_evaluation_counter(self):
        metric = make_metric("ios")
        a, b = make_profile({"A": [1]}), make_profile({"A": [1]})
        metric(a, b)
        metric(a, b)
        assert metric.evaluations == 2
        metric.reset_counter()
        assert metric.evaluations == 0

    def test_fresh_gets_independent_counter(self):
        metric = make_metric("iou")
        a = make_profile({"A": [1]})
        metric(a, a)
        clone = metric.fresh()
        assert clone.evaluations == 0
        assert clone.name == "iou"


sets = st.sets(st.integers(0, 40), min_size=0, max_size=20)


@given(a=sets, b=sets)
def test_prop_metrics_symmetric(a, b):
    pa = make_profile({"A": a}, capacity=64)
    pb = make_profile({"A": b}, capacity=64)
    for name in METRIC_NAMES:
        metric = make_metric(name)
        assert metric(pa, pb) == pytest.approx(metric(pb, pa))


@given(a=sets, b=sets)
def test_prop_prunable_metrics_zero_iff_disjoint(a, b):
    pa = make_profile({"A": a}, capacity=64)
    pb = make_profile({"A": b}, capacity=64)
    disjoint = not (a & b)
    for name in ("intersect", "ios", "iou"):
        value = make_metric(name)(pa, pb)
        assert (value == 0.0) == disjoint
        assert value >= 0.0
