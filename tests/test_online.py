"""Online migration strategies: spec parsing, hysteresis, convergence."""

from __future__ import annotations

import pytest

from repro.core import allocators
from repro.core.online import (
    STRATEGIES,
    BrokerLoad,
    FijTrade,
    IncTrade,
    Migration,
    MigrationPlan,
    OnlineAllocator,
    OnlineSpec,
    SubscriptionLoad,
    make_strategy,
)


# ----------------------------------------------------------------------
# OnlineSpec parsing and validation
# ----------------------------------------------------------------------


class TestOnlineSpec:
    def test_defaults(self):
        spec = OnlineSpec()
        assert spec.strategy == "inc_trade"
        assert spec.steps == 2
        assert 0.0 < spec.util_low < spec.util_high

    def test_from_spec_full(self):
        spec = OnlineSpec.from_spec(
            "strategy=fij_trade,steps=3,high=0.8,low=0.4,drift=0.2,"
            "moves=6,window=12,horizon=5.0,gap=0.1"
        )
        assert spec == OnlineSpec(
            strategy="fij_trade", steps=3, util_high=0.8, util_low=0.4,
            drift_threshold=0.2, max_moves=6, window=12, horizon=5.0, gap=0.1,
        )

    def test_from_spec_bare_word_and_hyphens(self):
        assert OnlineSpec.from_spec("fij-trade").strategy == "fij_trade"
        assert OnlineSpec.from_spec("inc_trade").strategy == "inc_trade"

    def test_from_spec_none_disables(self):
        assert OnlineSpec.from_spec("") is None
        assert OnlineSpec.from_spec("none") is None
        assert OnlineSpec.from_spec("  NONE ") is None

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown online spec key"):
            OnlineSpec.from_spec("stepz=3")

    def test_from_spec_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="not numeric"):
            OnlineSpec.from_spec("steps=three")

    @pytest.mark.parametrize("kwargs", [
        {"strategy": "bogus"},
        {"steps": -1},
        {"util_low": 0.8, "util_high": 0.5},
        {"util_low": 0.0},
        {"drift_threshold": -0.1},
        {"max_moves": 0},
        {"window": 1},
        {"horizon": -1.0},
        {"gap": -0.01},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OnlineSpec(**kwargs)

    def test_make_strategy_dispatch(self):
        assert isinstance(make_strategy(OnlineSpec()), IncTrade)
        assert isinstance(
            make_strategy(OnlineSpec(strategy="fij_trade")), FijTrade
        )
        assert STRATEGIES == ("inc_trade", "fij_trade")


# ----------------------------------------------------------------------
# Strategy planning: the hysteresis band
# ----------------------------------------------------------------------


def _subs(broker_id, loads, prefix):
    return [
        SubscriptionLoad(sub_id=f"{prefix}{i}", broker_id=broker_id, load=load)
        for i, load in enumerate(loads)
    ]


def _apply(plan, brokers):
    """Return broker loads after executing every move of ``plan``."""
    loads = {b.broker_id: b.load for b in brokers}
    for move in plan:
        loads[move.source] -= move.load
        loads[move.target] += move.load
    return loads


@pytest.fixture(params=STRATEGIES)
def strategy(request):
    return make_strategy(OnlineSpec(strategy=request.param))


class TestHysteresisBand:
    def test_calm_cluster_plans_nothing(self, strategy):
        brokers = [
            BrokerLoad("b1", capacity=100.0, load=60.0),
            BrokerLoad("b2", capacity=100.0, load=50.0),
        ]
        subs = _subs("b1", [30.0, 30.0], "s") + _subs("b2", [25.0, 25.0], "t")
        assert strategy.plan(brokers, subs).is_empty

    def test_overload_sheds_to_underloaded(self, strategy):
        brokers = [
            BrokerLoad("hot", capacity=100.0, load=90.0),
            BrokerLoad("cold", capacity=100.0, load=10.0),
        ]
        subs = _subs("hot", [30.0, 30.0, 30.0], "s")
        plan = strategy.plan(brokers, subs)
        assert not plan.is_empty
        assert all(m.source == "hot" and m.target == "cold" for m in plan)
        after = _apply(plan, brokers)
        assert after["hot"] <= 90.0 - 30.0 + 1e-9
        assert after["cold"] <= 75.0 + 1e-9

    def test_in_band_brokers_never_accept(self, strategy):
        # The only other broker sits inside the band (0.45 ≤ u ≤ 0.75):
        # it must not take load, so the plan stays empty.
        brokers = [
            BrokerLoad("hot", capacity=100.0, load=90.0),
            BrokerLoad("mid", capacity=100.0, load=60.0),
        ]
        subs = _subs("hot", [30.0, 30.0, 30.0], "s")
        assert strategy.plan(brokers, subs).is_empty

    def test_move_never_overloads_target(self, strategy):
        brokers = [
            BrokerLoad("hot", capacity=100.0, load=95.0),
            BrokerLoad("cold", capacity=100.0, load=40.0),
        ]
        subs = _subs("hot", [20.0, 25.0, 25.0, 25.0], "s")
        plan = strategy.plan(brokers, subs)
        after = _apply(plan, brokers)
        assert after["cold"] / 100.0 <= 0.75 + 1e-9

    def test_max_moves_caps_the_batch(self, strategy):
        spec = OnlineSpec(strategy=strategy.name, max_moves=1)
        capped = make_strategy(spec)
        brokers = [
            BrokerLoad("hot", capacity=100.0, load=100.0),
            BrokerLoad("cold1", capacity=100.0, load=0.0),
            BrokerLoad("cold2", capacity=100.0, load=0.0),
        ]
        subs = _subs("hot", [20.0] * 5, "s")
        assert len(capped.plan(brokers, subs)) == 1

    def test_plan_is_deterministic(self, strategy):
        brokers = [
            BrokerLoad("b1", capacity=100.0, load=95.0),
            BrokerLoad("b2", capacity=80.0, load=20.0),
            BrokerLoad("b3", capacity=120.0, load=30.0),
        ]
        subs = (
            _subs("b1", [10.0, 15.0, 20.0, 25.0, 25.0], "a")
            + _subs("b2", [10.0, 10.0], "b")
            + _subs("b3", [15.0, 15.0], "c")
        )
        first = strategy.plan(brokers, subs)
        second = strategy.plan(list(reversed(brokers)), list(reversed(subs)))
        assert repr(first) == repr(second)


class TestConvergence:
    """A static workload must settle: no ping-pong between steps."""

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_repeated_planning_reaches_fixpoint(self, name):
        planner = make_strategy(OnlineSpec(strategy=name, max_moves=2))
        brokers = {
            "b1": BrokerLoad("b1", capacity=100.0, load=95.0),
            "b2": BrokerLoad("b2", capacity=100.0, load=30.0),
            "b3": BrokerLoad("b3", capacity=100.0, load=25.0),
        }
        location = {}
        subs = []
        for i, load in enumerate([10.0, 10.0, 15.0, 20.0, 20.0, 20.0]):
            location[f"s{i}"] = ("b1", load)
        for i, load in enumerate([15.0, 15.0]):
            location[f"u{i}"] = ("b2", load)
        location["v0"] = ("b3", 25.0)

        def current_state():
            loads = {b: 0.0 for b in brokers}
            subs = []
            for sub_id, (broker_id, load) in sorted(location.items()):
                loads[broker_id] += load
                subs.append(SubscriptionLoad(sub_id, broker_id, load))
            rows = [
                BrokerLoad(b, brokers[b].capacity, loads[b])
                for b in sorted(brokers)
            ]
            return rows, subs

        plans = []
        for _ in range(12):
            rows, subs = current_state()
            plan = planner.plan(rows, subs)
            plans.append(plan)
            if plan.is_empty:
                break
            for move in plan:
                broker_id, load = location[move.sub_id]
                assert broker_id == move.source
                location[move.sub_id] = (move.target, load)

        # Settles within the step budget, and once settled stays settled.
        assert plans[-1].is_empty
        rows, subs = current_state()
        assert planner.plan(rows, subs).is_empty
        # No subscription ever moved twice across the whole run.
        moved = [m.sub_id for plan in plans for m in plan]
        assert len(moved) == len(set(moved))


# ----------------------------------------------------------------------
# Plan and data containers
# ----------------------------------------------------------------------


class TestContainers:
    def test_broker_load_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            BrokerLoad("b1", capacity=0.0, load=1.0)
        assert BrokerLoad("b1", 50.0, 25.0).utilization == pytest.approx(0.5)

    def test_plan_aggregates(self):
        plan = MigrationPlan(strategy="inc_trade", moves=(
            Migration("s1", "a", "b", 3.0, 0.1),
            Migration("s2", "a", "c", 4.0, 0.2),
        ))
        assert len(plan) == 2 and not plan.is_empty
        assert plan.total_load == pytest.approx(7.0)
        assert plan.subscription_ids() == ("s1", "s2")
        row = plan.as_row()
        assert row["moves"] == 2
        assert row["predicted_delta"] == pytest.approx(0.3)


# ----------------------------------------------------------------------
# Registry integration: the incremental capability
# ----------------------------------------------------------------------


class TestRegistryCapabilities:
    def test_online_strategies_are_registered_incremental(self):
        for name in ("inc-trade", "fij-trade"):
            assert allocators.is_registered(name)
            assert allocators.supports(name, "incremental")
            assert allocators.supports(name, "kernel_aware")
        assert set(allocators.names_with("incremental")) == {
            "inc-trade", "fij-trade",
        }

    def test_croc_allocators_are_not_incremental(self):
        for name in ("fbf", "binpacking", "cram-ios"):
            assert not allocators.supports(name, "incremental")

    def test_factory_builds_online_allocator(self):
        allocator = allocators.get("fij-trade")()
        assert isinstance(allocator, OnlineAllocator)
        assert allocator.name == "fij-trade"
        assert allocator.spec.strategy == "fij_trade"
        assert isinstance(allocator.strategy, FijTrade)

    def test_factory_threads_online_spec_knob(self):
        spec = OnlineSpec(steps=5, max_moves=9)
        allocator = allocators.get("inc-trade", online=spec)()
        assert allocator.spec.max_moves == 9
        # The registered approach name wins over the spec's strategy.
        crossed = allocators.get("fij-trade", online=spec)()
        assert crossed.spec.strategy == "fij_trade"
        assert crossed.spec.max_moves == 9

    def test_plan_migrations_delegates_to_strategy(self):
        allocator = OnlineAllocator(strategy="inc_trade")
        brokers = [
            BrokerLoad("hot", capacity=100.0, load=90.0),
            BrokerLoad("cold", capacity=100.0, load=10.0),
        ]
        subs = _subs("hot", [30.0, 30.0, 30.0], "s")
        plan = allocator.plan_migrations(brokers, subs)
        assert plan.strategy == "inc_trade"
        assert not plan.is_empty
