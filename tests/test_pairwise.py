"""Tests for the PAIRWISE-K / PAIRWISE-N related-work derivatives."""

import pytest

from repro.core.pairwise import (
    PairwiseKAllocator,
    PairwiseNAllocator,
    pairwise_cluster,
)
from repro.sim.rng import SeededRng

from conftest import make_directory, make_pool, make_unit


@pytest.fixture
def directory():
    return make_directory([f"P{i}" for i in range(4)])


def mixed_units(directory, per_symbol=3):
    units = []
    for adv in directory:
        for width in range(per_symbol):
            units.append(make_unit({adv: range(8 * (width + 1))}, directory))
    return units


class TestPairwiseCluster:
    def test_reduces_to_requested_count(self, directory):
        units = mixed_units(directory)
        clusters = pairwise_cluster(units, 4, directory)
        assert len(clusters) == 4

    def test_single_cluster(self, directory):
        units = mixed_units(directory)
        clusters = pairwise_cluster(units, 1, directory)
        assert len(clusters) == 1
        assert clusters[0].subscription_count == len(units)

    def test_count_larger_than_units_is_noop(self, directory):
        units = mixed_units(directory)
        clusters = pairwise_cluster(units, 100, directory)
        assert len(clusters) == len(units)

    def test_preserves_all_subscriptions(self, directory):
        units = mixed_units(directory)
        clusters = pairwise_cluster(units, 3, directory)
        total = sum(cluster.subscription_count for cluster in clusters)
        assert total == len(units)

    def test_merges_closest_first(self, directory):
        """Identical profiles (XOR = cap) must merge before anything else."""
        twin_a = make_unit({"P0": range(16)}, directory)
        twin_b = make_unit({"P0": range(16)}, directory)
        loner = make_unit({"P1": range(4)}, directory)
        clusters = pairwise_cluster([twin_a, loner, twin_b], 2, directory)
        by_count = sorted(c.subscription_count for c in clusters)
        assert by_count == [1, 2]
        merged = next(c for c in clusters if c.subscription_count == 2)
        assert merged.profile.cardinality == 16

    def test_invalid_count_raises(self, directory):
        with pytest.raises(ValueError):
            pairwise_cluster(mixed_units(directory), 0, directory)


class TestPairwiseK:
    def test_allocates_k_clusters_to_random_brokers(self, directory):
        units = mixed_units(directory)
        allocator = PairwiseKAllocator(cluster_count=4, rng=SeededRng(3, "t"))
        result = allocator.allocate(units, make_pool(6), directory)
        assert result.success
        assert result.total_subscriptions() == len(units)
        assert result.broker_count <= 4

    def test_capacity_is_ignored(self, directory):
        """Pairwise is capacity-oblivious: overload simply happens."""
        units = mixed_units(directory)
        tiny_pool = make_pool(3, bandwidth=0.001)
        allocator = PairwiseKAllocator(cluster_count=2, rng=SeededRng(1, "t"))
        result = allocator.allocate(units, tiny_pool, directory)
        assert result.success  # no feasibility test at all
        assert any(
            bin_.used_bandwidth > bin_.spec.total_output_bandwidth
            for bin_ in result.bins
        )

    def test_deterministic_given_seed(self, directory):
        units = mixed_units(directory)
        pool = make_pool(6)
        a = PairwiseKAllocator(4, rng=SeededRng(9, "t")).allocate(units, pool, directory)
        b = PairwiseKAllocator(4, rng=SeededRng(9, "t")).allocate(units, pool, directory)
        assert a.subscription_placement() == b.subscription_placement()

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError):
            PairwiseKAllocator(cluster_count=0)

    def test_name(self):
        assert PairwiseKAllocator(1).name == "pairwise-k"


class TestPairwiseN:
    def test_one_cluster_per_broker(self, directory):
        units = mixed_units(directory)
        pool = make_pool(5)
        result = PairwiseNAllocator(rng=SeededRng(2, "t")).allocate(
            units, pool, directory
        )
        assert result.success
        assert result.broker_count == 5
        assert result.total_subscriptions() == len(units)

    def test_fewer_units_than_brokers(self, directory):
        units = mixed_units(directory)[:2]
        result = PairwiseNAllocator(rng=SeededRng(2, "t")).allocate(
            units, make_pool(5), directory
        )
        assert result.broker_count == 2

    def test_name(self):
        assert PairwiseNAllocator().name == "pairwise-n"
