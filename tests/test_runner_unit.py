"""Unit-level tests for the experiment runner and CROC planning."""

import pytest

from repro.core.binpacking import BinPackingAllocator
from repro.core.croc import Croc, ReconfigurationError
from repro.core.grape import GrapeRelocator
from repro.core.overlay_builder import OverlayBuilder
from repro.experiments.runner import APPROACHES, ExperimentResult, ExperimentRunner
from repro.pubsub.metrics import MetricsSummary
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous


def _summary(rate: float, pool: int = 10, active: int = 2) -> MetricsSummary:
    return MetricsSummary(
        duration=10.0,
        pool_size=pool,
        active_brokers=active,
        total_broker_messages=int(rate * 10 * pool),
        delivery_count=100,
        mean_delivery_delay=0.05,
        mean_hop_count=1.5,
        max_delivery_delay=0.2,
        avg_broker_message_rate=rate,
        avg_active_broker_message_rate=rate * pool / active,
        mean_utilization=0.5,
        max_utilization=0.9,
    )


class TestExperimentResultMath:
    def _result(self, base_rate=10.0, rate=2.0, allocated=2, pool=10):
        return ExperimentResult(
            approach="x",
            scenario="s",
            pool_size=pool,
            allocated_brokers=allocated,
            summary=_summary(rate, pool),
            baseline_summary=_summary(base_rate, pool),
            computation_seconds=0.1,
            total_subscriptions=100,
        )

    def test_message_rate_reduction(self):
        result = self._result(base_rate=10.0, rate=2.0)
        assert result.message_rate_reduction == pytest.approx(0.8)

    def test_broker_reduction(self):
        result = self._result(allocated=2, pool=10)
        assert result.broker_reduction == pytest.approx(0.8)

    def test_zero_baseline_rate(self):
        result = self._result(base_rate=0.0, rate=2.0)
        assert result.message_rate_reduction == 0.0

    def test_zero_pool(self):
        result = self._result(pool=0)
        assert result.broker_reduction == 0.0

    def test_as_row_round_trip(self):
        row = self._result().as_row()
        assert row["msg_rate_reduction_pct"] == pytest.approx(80.0)
        assert row["broker_reduction_pct"] == pytest.approx(80.0)


class TestRunnerFactories:
    @pytest.fixture
    def runner(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=8, scale=0.1)
        return ExperimentRunner(scenario, seed=1)

    def test_allocator_factory_names(self, runner):
        assert runner._allocator_factory("binpacking")().name == "binpacking"
        assert runner._allocator_factory("fbf")().name == "fbf"
        assert runner._allocator_factory("cram-iou")().name == "cram-iou"

    def test_allocator_factory_rejects_baselines(self, runner):
        with pytest.raises(ValueError):
            runner._allocator_factory("manual")

    def test_croc_for_carries_approach_name(self, runner):
        croc = runner.croc_for("cram-ios")
        assert croc.approach == "cram-ios"

    def test_croc_for_accepts_custom_overlay_builder(self, runner):
        builder = OverlayBuilder(BinPackingAllocator, takeover_children=False)
        croc = runner.croc_for("binpacking", overlay_builder=builder)
        assert croc.overlay_builder is builder

    def test_custom_grape(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=8, scale=0.1)
        grape = GrapeRelocator(objective="delay", priority=0.7)
        runner = ExperimentRunner(scenario, seed=1, grape=grape)
        assert runner.croc_for("binpacking").grape is grape


class TestCrocPlan:
    def test_plan_without_network(self):
        """CROC planning is pure computation over gathered state."""
        scenario = cluster_homogeneous(subscriptions_per_publisher=10, scale=0.1)
        gathered = offline_gather(scenario, seed=5)
        croc = Croc(allocator_factory=BinPackingAllocator)
        report = croc.plan(gathered)
        assert report.allocated_brokers >= 1
        report.deployment.validate()
        assert report.computation_seconds > 0
        assert set(report.deployment.subscription_placement) == {
            record.sub_id for record in gathered.records
        }

    def test_plan_failure_raises_with_context(self):
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=10, scale=0.1,
            broker_bandwidth_kbps=0.001,
        )
        gathered = offline_gather(scenario, seed=5)
        croc = Croc(allocator_factory=BinPackingAllocator, approach="binpacking")
        with pytest.raises(ReconfigurationError, match="binpacking"):
            croc.plan(gathered)

    def test_publishers_placed_on_active_brokers(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=10, scale=0.1)
        gathered = offline_gather(scenario, seed=5)
        croc = Croc(allocator_factory=BinPackingAllocator)
        report = croc.plan(gathered)
        for adv_id, broker_id in report.deployment.publisher_placement.items():
            assert broker_id in report.deployment.tree

    def test_every_approach_name_resolvable(self):
        scenario = cluster_homogeneous(subscriptions_per_publisher=8, scale=0.1)
        runner = ExperimentRunner(scenario, seed=1)
        for approach in APPROACHES:
            if approach in ("manual", "automatic", "pairwise-k", "pairwise-n"):
                continue
            croc = runner.croc_for(approach)
            assert croc.approach == approach
