"""Whole-program model for reprolint's multi-pass analyses.

A :class:`Project` parses every target file once, derives each file's
dotted module name from its path (``src/repro/core/croc.py`` →
``repro.core.croc``), and extracts the project-internal import edges —
the facts the per-file rule engine cannot see.  Project *passes*
(:data:`ProjectPass`) consume the model and report
:class:`~repro.tools.engine.Finding` objects through the same pipeline
as the per-file rules, so suppression comments, baselines, and output
formats apply uniformly.

The model is deterministic by construction: modules are keyed and
iterated in sorted dotted-name order and edges are sorted, so the
graph — and therefore every pass's findings — is identical no matter
in which order the files were visited (pinned by a Hypothesis property
in the test suite).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.tools.engine import (
    Finding,
    LintError,
    Module,
    iter_python_files,
)

#: The project root package every dotted name hangs off.
ROOT_PACKAGE = "repro"


@dataclass(frozen=True)
class ParseFailure:
    """A file the project could not parse (reported, never skipped silently)."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


@dataclass(frozen=True)
class ImportEdge:
    """One project-internal import, attributed to its source line.

    ``lazy`` marks imports nested inside a function or method body:
    they do not execute at interpreter start-up, so they cannot form
    import-time cycles — but they still create a dependency, so the
    layering pass counts them.
    """

    source: str
    target: str
    lineno: int
    lazy: bool
    names: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed file plus its project-level identity."""

    name: str
    path: str
    module: Module
    sha256: str
    imports: List[ImportEdge] = field(default_factory=list)

    @property
    def package(self) -> str:
        """Top-level subpackage below ``repro`` (``core``, ``sim``, …).

        Modules directly inside the root package (``repro/__init__.py``,
        ``repro/__main__.py``) report ``"<root>"``; files outside any
        ``repro`` tree report ``"<external>"``.
        """
        return _package_of(self.name) if self.name.startswith(ROOT_PACKAGE) \
            else "<external>"


def module_name_for(path: Union[str, Path]) -> str:
    """Dotted module name for a file path.

    The name is anchored at the last ``repro`` directory in the path,
    so both the real tree (``src/repro/core/croc.py``) and test
    fixtures (``tests/data/lint/layering/src/repro/core/bad.py``)
    resolve naturally.  Files outside a ``repro`` tree get a name
    derived from their trailing path (used for the usage index only).
    """
    parts = Path(path).parts
    anchor = None
    for index, part in enumerate(parts):
        if part == ROOT_PACKAGE:
            anchor = index
    if anchor is None:
        stem_parts = [p for p in parts[-2:] if p not in ("/",)]
        dotted = ".".join(stem_parts)
        return dotted[:-3] if dotted.endswith(".py") else dotted
    rel = parts[anchor:]
    if rel[-1] == "__init__.py":
        rel = rel[:-1]
    else:
        rel = rel[:-1] + (rel[-1][:-3] if rel[-1].endswith(".py") else rel[-1],)
    return ".".join(rel)


def _is_type_checking_guard(node: ast.AST) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _extract_imports(info: ModuleInfo) -> List[ImportEdge]:
    """Project-internal import edges of one module, in source order."""
    edges: List[ImportEdge] = []

    def visit(node: ast.AST, lazy: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_lazy = lazy or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) or _is_type_checking_guard(child)
            if isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name == ROOT_PACKAGE or alias.name.startswith(
                        ROOT_PACKAGE + "."
                    ):
                        edges.append(
                            ImportEdge(info.name, alias.name, child.lineno, lazy)
                        )
            elif isinstance(child, ast.ImportFrom):
                target = child.module or ""
                if child.level:
                    base = info.name.split(".")
                    if Path(info.path).name != "__init__.py":
                        base = base[:-1]
                    base = base[: len(base) - (child.level - 1)]
                    target = ".".join(base + ([target] if target else []))
                if target == ROOT_PACKAGE or target.startswith(ROOT_PACKAGE + "."):
                    names = tuple(alias.name for alias in child.names)
                    edges.append(
                        ImportEdge(info.name, target, child.lineno, lazy, names)
                    )
            visit(child, child_lazy)

    visit(info.module.tree, False)
    return edges


class Project:
    """Every parsed module, keyed by dotted name, plus the import graph."""

    def __init__(self, modules: Sequence[ModuleInfo],
                 usage_modules: Sequence[ModuleInfo] = ()):
        self.modules: Dict[str, ModuleInfo] = {
            info.name: info for info in sorted(modules, key=lambda m: m.name)
        }
        self.usage_modules: Dict[str, ModuleInfo] = {
            info.name: info
            for info in sorted(usage_modules, key=lambda m: m.name)
        }
        for info in list(self.modules.values()) + list(self.usage_modules.values()):
            info.imports = _extract_imports(info)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        paths: Iterable[Union[str, Path]],
        usage_paths: Iterable[Union[str, Path]] = (),
    ) -> Tuple["Project", List[ParseFailure]]:
        """Parse all files under ``paths``; collect failures, never skip.

        ``usage_paths`` (tests, benchmarks, examples) are parsed into a
        separate usage index consulted by the dead-export check; they
        are not linted.
        """
        failures: List[ParseFailure] = []

        def load_tree(roots: Iterable[Union[str, Path]]) -> List[ModuleInfo]:
            infos: List[ModuleInfo] = []
            for file_path in iter_python_files(roots):
                try:
                    text = file_path.read_text(encoding="utf-8")
                except OSError as exc:
                    failures.append(ParseFailure(str(file_path), str(exc)))
                    continue
                try:
                    module = Module(text, str(file_path))
                except LintError as exc:
                    failures.append(ParseFailure(str(file_path), str(exc)))
                    continue
                infos.append(
                    ModuleInfo(
                        name=module_name_for(file_path),
                        path=str(file_path),
                        module=module,
                        sha256=hashlib.sha256(text.encode("utf-8")).hexdigest(),
                    )
                )
            return infos

        return cls(load_tree(paths), load_tree(usage_paths)), failures

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def resolve_target(self, dotted: str) -> Optional[str]:
        """Map an imported dotted name to a project module, if present.

        ``repro.core.units`` resolves to that module; ``from
        repro.core import x`` targets the package, which resolves to
        ``repro.core`` (its ``__init__``) when loaded.  Unknown targets
        (not part of the analyzed tree) resolve to ``None``.
        """
        if dotted in self.modules:
            return dotted
        parent = dotted.rsplit(".", 1)[0] if "." in dotted else None
        if parent and parent in self.modules:
            return parent
        return None

    def resolve_edge_targets(self, edge: ImportEdge) -> List[str]:
        """Project modules one import edge actually reaches.

        ``from repro.obs import recorder`` targets the *submodule*
        ``repro.obs.recorder``, not the package — treating it as a
        package edge would manufacture a cycle with every package
        ``__init__`` that re-exports its own submodules.  Names that
        are plain attributes fall back to the package itself.
        """
        resolved: List[str] = []
        fallback = False
        for name in edge.names:
            submodule = f"{edge.target}.{name}"
            if submodule in self.modules:
                resolved.append(submodule)
            else:
                fallback = True
        if fallback or not edge.names:
            package = self.resolve_target(edge.target)
            if package is not None:
                resolved.append(package)
        return sorted(set(resolved))

    def module_edges(self, include_lazy: bool = True) -> List[Tuple[str, str]]:
        """Sorted, deduplicated module-level edges within the project."""
        edges: Set[Tuple[str, str]] = set()
        for info in self.modules.values():
            for edge in info.imports:
                if not include_lazy and edge.lazy:
                    continue
                for resolved in self.resolve_edge_targets(edge):
                    if resolved != info.name:
                        edges.add((info.name, resolved))
        return sorted(edges)

    def package_edges(self) -> Dict[Tuple[str, str], List[ImportEdge]]:
        """Package-level projection: (source pkg, target pkg) → edges."""
        projected: Dict[Tuple[str, str], List[ImportEdge]] = {}
        for name in sorted(self.modules):
            info = self.modules[name]
            for edge in info.imports:
                resolved_targets = self.resolve_edge_targets(edge) or [edge.target]
                source_pkg = info.package
                for resolved in resolved_targets:
                    target_pkg = _package_of(resolved)
                    if source_pkg == target_pkg:
                        continue
                    projected.setdefault((source_pkg, target_pkg), []).append(edge)
        return projected

    def import_cycles(self) -> List[List[str]]:
        """Import-time cycles: SCCs of the non-lazy module graph.

        Lazy (function-nested) imports are excluded — they cannot
        deadlock interpreter start-up — but they still count for
        layering.  Returned cycles are canonicalized (rotated to start
        at the smallest name) and sorted for deterministic output.
        """
        edges = self.module_edges(include_lazy=False)
        adjacency: Dict[str, List[str]] = {name: [] for name in self.modules}
        for source, target in edges:
            adjacency[source].append(target)

        # Tarjan's algorithm, iterative for deep graphs.
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(adjacency[root]))]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(adjacency[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(component)
                    elif (component[0], component[0]) in edges:
                        sccs.append(component)

        for name in sorted(self.modules):
            if name not in index_of:
                strongconnect(name)

        canonical = []
        for component in sccs:
            pivot = component.index(min(component))
            canonical.append(component[pivot:] + component[:pivot])
        return sorted(canonical)

    # ------------------------------------------------------------------
    # Cross-module name resolution (used by the contract pass)
    # ------------------------------------------------------------------
    def resolve_name(
        self, module_name: str, name: str, _depth: int = 0
    ) -> Optional[Tuple[str, ast.AST]]:
        """Resolve ``name`` in ``module_name`` to its defining AST node.

        Follows ``from x import y`` chains through the project (bounded
        depth), returning ``(defining_module, node)`` where node is a
        FunctionDef / AsyncFunctionDef / ClassDef / Assign-value.
        Returns ``None`` for builtins, externals, and anything the
        static approximation cannot see.
        """
        if _depth > 8 or module_name not in self.modules:
            return None
        info = self.modules[module_name]
        for node in info.module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name == name:
                    return (module_name, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return (module_name, node.value)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == name
                    and node.value is not None
                ):
                    return (module_name, node.value)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if bound != name or alias.name == "*":
                        continue
                    target = self.resolve_target(node.module or "")
                    if target is None:
                        return None
                    return self.resolve_name(target, alias.name, _depth + 1)
        return None


def _package_of(dotted: str) -> str:
    if not dotted.startswith(ROOT_PACKAGE):
        return "<external>"
    parts = dotted.split(".")
    if len(parts) == 1 or parts[1] == "__main__":
        return "<root>"
    return parts[1]


# ----------------------------------------------------------------------
# Pass registry (mirrors the per-file rule registry in engine.py)
# ----------------------------------------------------------------------
PassCheck = Callable[[Project], List[Finding]]


@dataclass(frozen=True)
class ProjectPass:
    """A named whole-program check."""

    name: str
    summary: str
    check: PassCheck


_PASS_REGISTRY: Dict[str, ProjectPass] = {}


def project_pass(name: str, summary: str) -> Callable[[PassCheck], PassCheck]:
    """Register a whole-program pass under ``name``."""

    def decorate(check: PassCheck) -> PassCheck:
        if name in _PASS_REGISTRY:
            raise ValueError(f"duplicate pass name {name!r}")
        _PASS_REGISTRY[name] = ProjectPass(name, summary, check)
        return check

    return decorate


def _load_builtin_passes() -> None:
    # Imported lazily — the pass modules need the decorator above.
    from repro.tools import contracts, layering, taint  # noqa: F401  # reprolint: disable=unused-import (registration side effect)


def all_passes() -> List[ProjectPass]:
    """Every registered pass, in stable name order."""
    _load_builtin_passes()
    return [_PASS_REGISTRY[name] for name in sorted(_PASS_REGISTRY)]


def resolve_passes(names: Optional[Iterable[str]] = None) -> List[ProjectPass]:
    """Map a ``--passes`` list to passes; ``None`` means all of them."""
    available = {pass_.name: pass_ for pass_ in all_passes()}
    if names is None:
        return list(available.values())
    selected: List[ProjectPass] = []
    for name in names:
        if name not in available:
            known = ", ".join(sorted(available))
            raise LintError(f"unknown pass {name!r} (known passes: {known})")
        selected.append(available[name])
    return selected


def run_passes(
    project: Project, passes: Optional[Sequence[ProjectPass]] = None
) -> List[Finding]:
    """Run whole-program passes, honouring per-line suppressions."""
    findings: List[Finding] = []
    by_path = {info.path: info for info in project.modules.values()}
    for pass_ in passes if passes is not None else all_passes():
        for finding in pass_.check(project):
            owner = by_path.get(finding.path)
            if owner is not None and owner.module.suppressed(finding):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda finding: finding.sort_key)
