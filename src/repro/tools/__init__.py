"""Repo-specific correctness tooling.

:mod:`repro.tools.lint` (``python -m repro.tools.lint``) is *reprolint*,
an AST-based static-analysis pass enforcing the invariants the
reproduction's headline numbers depend on:

* **determinism** — all randomness flows through
  :class:`repro.sim.rng.SeededRng`, and no wall-clock reads leak into
  the allocator, simulator, or workload paths;
* **unit-safety** — float-typed capacity/bandwidth/rate quantities are
  never compared with ``==``/``!=``; the tolerance helpers in
  :mod:`repro.core.units` are mandatory;
* **interchangeability** — every allocator registered in
  :mod:`repro.core` keeps the common ``allocate(units, pool,
  directory)`` signature so schemes stay swappable in experiments.

See the "Static analysis & invariants" section of the README for the
full rule list and the suppression syntax.
"""

from __future__ import annotations

from repro.tools.engine import (
    Finding,
    LintError,
    Module,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule,
)

__all__ = [
    "Finding",
    "LintError",
    "Module",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule",
]
