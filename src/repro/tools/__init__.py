"""Repo-specific correctness tooling.

:mod:`repro.tools.lint` (``python -m repro.tools lint``) is *reprolint*,
an AST-based static analyzer with two planes:

**Per-file rules** enforce the invariants the reproduction's headline
numbers depend on:

* **determinism** — all randomness flows through
  :class:`repro.core.rng.SeededRng`, and no wall-clock reads leak into
  the allocator, simulator, or workload paths;
* **unit-safety** — float-typed capacity/bandwidth/rate quantities are
  never compared with ``==``/``!=``; the tolerance helpers in
  :mod:`repro.core.units` are mandatory;
* **hygiene** — future annotations everywhere, no unused imports.

**Whole-program passes** (:mod:`repro.tools.project` and friends) see
the project import graph at once:

* **layering** — the package DAG ``core → sim → pubsub → workloads →
  experiments`` (with ``obs``/``tools`` as leaves) has no cycles and no
  upward imports;
* **determinism-taint** — set-iteration order, ``os.environ``,
  wall-clock reads, and unmanaged randomness are tracked through
  assignments and cross-module calls until they reach allocation
  decisions or exported output;
* **contracts** — every registered allocator honours the
  ``allocate(units, pool, directory)`` signature, builders stay
  picklable, and ``__all__`` lists stay honest.

See the "Static analysis & invariants" section of the README for the
rule list, pass descriptions, baseline format, and suppression syntax.
"""

from __future__ import annotations

from repro.tools.baseline import BaselineEntry, apply_baseline, load_baseline
from repro.tools.engine import (
    Finding,
    LintError,
    Module,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule,
)
from repro.tools.lint import LintRun, run_lint
from repro.tools.project import (
    ImportEdge,
    ModuleInfo,
    ParseFailure,
    Project,
    ProjectPass,
    all_passes,
    project_pass,
    run_passes,
)

__all__ = [
    "BaselineEntry",
    "Finding",
    "ImportEdge",
    "LintError",
    "LintRun",
    "Module",
    "ModuleInfo",
    "ParseFailure",
    "Project",
    "ProjectPass",
    "Rule",
    "all_passes",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "project_pass",
    "rule",
    "run_lint",
    "run_passes",
]
