"""The built-in *reprolint* rules.

Each rule guards one invariant the reproduction's results depend on
(determinism, unit-safety, allocator interchangeability) or one Python
footgun that has historically produced irreproducible numbers
elsewhere (mutable defaults, bare excepts).  Rules are deliberately
repo-specific: they know the package layout (``core/``, ``sim/``,
``workloads/``) and the sanctioned escape hatches
(:mod:`repro.sim.rng`, the tolerance helpers in
:mod:`repro.core.units`).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.tools.engine import Finding, Module, rule

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _identifier_tokens(node: ast.AST) -> Set[str]:
    """Lower-cased underscore-split tokens of a Name/Attribute operand."""
    if isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Name):
        terminal = node.id
    else:
        return set()
    return {token for token in terminal.lower().split("_") if token}


# ----------------------------------------------------------------------
# Rule 1 — determinism: all randomness flows through SeededRng
# ----------------------------------------------------------------------

#: The one module allowed to touch the stdlib RNG.
_RNG_HOME = ("core", "rng.py")


@rule(
    "unmanaged-random",
    "random / numpy.random may only be used inside core/rng.py; draw from SeededRng",
)
def check_unmanaged_random(module: Module) -> Iterator[Finding]:
    if module.is_module(*_RNG_HOME):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("numpy.random"):
                    yield module.finding(
                        node,
                        "unmanaged-random",
                        f"import of {alias.name!r} outside core/rng.py; "
                        "route randomness through repro.sim.rng.SeededRng",
                    )
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            imports_random = source in ("random", "numpy.random") or (
                source == "numpy"
                and any(alias.name == "random" for alias in node.names)
            )
            if imports_random:
                yield module.finding(
                    node,
                    "unmanaged-random",
                    f"import from {source!r} outside core/rng.py; "
                    "route randomness through repro.sim.rng.SeededRng",
                )
        elif isinstance(node, ast.Attribute) and node.attr == "random":
            if isinstance(node.value, ast.Name) and node.value.id in ("numpy", "np"):
                yield module.finding(
                    node,
                    "unmanaged-random",
                    "numpy.random accessed outside core/rng.py; "
                    "route randomness through repro.sim.rng.SeededRng",
                )


# ----------------------------------------------------------------------
# Rule 2 — determinism: no wall-clock reads in replayable paths
# ----------------------------------------------------------------------

#: Dotted call targets that read the wall clock.  Monotonic timers
#: (``time.perf_counter``) are handled separately by the
#: ``wall-clock-output`` rule below: they are legal only in the audited
#: modules that keep their readings out of deterministic outputs.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}

#: Subpackages whose behaviour must be a pure function of (config, seed).
_REPLAYABLE_PACKAGES = ("core", "sim", "workloads")


@rule(
    "wall-clock",
    "no time.time()/datetime.now() in core/, sim/, or workloads/ — wall clock breaks replay",
)
def check_wall_clock(module: Module) -> Iterator[Finding]:
    if not module.in_package(*_REPLAYABLE_PACKAGES):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            yield module.finding(
                node,
                "wall-clock",
                f"{dotted}() reads the wall clock; replayable paths must derive "
                "time from the simulator clock or an explicit base date "
                "(see workloads/stocks.py)",
            )


# ----------------------------------------------------------------------
# Rule 3 — unit-safety: no exact equality on float-typed quantities
# ----------------------------------------------------------------------

#: Identifier tokens that mark a float-typed physical quantity.
_UNIT_TOKENS = {
    "bandwidth",
    "rate",
    "capacity",
    "utilization",
    "closeness",
    "tolerance",
    "epsilon",
}


def _is_unit_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    return bool(_identifier_tokens(node) & _UNIT_TOKENS)


@rule(
    "float-equality",
    "no ==/!= on float capacity/bandwidth/rate expressions; use "
    "approx_eq/approx_zero from repro.core.units",
)
def check_float_equality(module: Module) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_unit_operand(left) or _is_unit_operand(right):
                yield module.finding(
                    node,
                    "float-equality",
                    "exact ==/!= on a float-typed quantity; use the tolerance "
                    "helpers in repro.core.units (approx_eq, approx_zero)",
                )
                break


# ----------------------------------------------------------------------
# Rule 4 — no mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_ATTR_CALLS = {"defaultdict", "OrderedDict", "Counter", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS | _MUTABLE_ATTR_CALLS
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _MUTABLE_ATTR_CALLS
    return False


@rule("mutable-default", "no mutable default arguments (shared across calls)")
def check_mutable_default(module: Module) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                name = getattr(node, "name", "<lambda>")
                yield module.finding(
                    default,
                    "mutable-default",
                    f"mutable default argument in {name!r}; default to None "
                    "and construct inside the function",
                )


# ----------------------------------------------------------------------
# Rule 5 — postponed annotations everywhere
# ----------------------------------------------------------------------


@rule(
    "future-annotations",
    "every repro module must start with `from __future__ import annotations`",
)
def check_future_annotations(module: Module) -> Iterator[Finding]:
    if not module.tree.body:
        return
    for node in module.tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
        ):
            return
    yield module.finding(
        1,
        "future-annotations",
        "missing `from __future__ import annotations` "
        "(keeps annotations lazy and forward-reference-safe)",
    )


# ----------------------------------------------------------------------
# Rule 6 — public core functions carry return annotations
# ----------------------------------------------------------------------


def _public_functions(
    module: Module,
) -> Iterator[Tuple[ast.AST, str]]:
    """Module-level and class-body functions with public names.

    Nested closures are an implementation detail and are skipped.
    """

    def from_body(body: list) -> Iterator[Tuple[ast.AST, str]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield node, node.name
            elif isinstance(node, ast.ClassDef):
                yield from from_body(node.body)

    yield from from_body(module.tree.body)


@rule(
    "return-annotation",
    "public functions in core/ must declare a return type",
)
def check_return_annotation(module: Module) -> Iterator[Finding]:
    if not module.in_package("core"):
        return
    for node, name in _public_functions(module):
        if getattr(node, "returns", None) is None:
            yield module.finding(
                node,
                "return-annotation",
                f"public core function {name!r} has no return annotation",
            )


# ----------------------------------------------------------------------
# Rule 7 — no bare except
# ----------------------------------------------------------------------


@rule("bare-except", "no bare `except:` — it swallows KeyboardInterrupt and typos alike")
def check_bare_except(module: Module) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield module.finding(
                node,
                "bare-except",
                "bare `except:`; catch a specific exception "
                "(or `Exception` at the very least)",
            )


# ----------------------------------------------------------------------
# Rule 8 — allocators stay interchangeable
# ----------------------------------------------------------------------

#: The common allocator entry-point signature every scheme must keep so
#: experiments can swap allocators by name (see experiments.runner).
_ALLOCATE_PARAMS = ("self", "units", "pool", "directory")

#: The registry module whose import marks a file as defining allocators.
_REGISTRY_MODULE = "repro.core.allocators"


def _imports_allocator_registry(module: Module) -> bool:
    """Whether the module imports :mod:`repro.core.allocators`.

    Any module that registers an allocator must import the registry, so
    this is how the rule reaches registered factories living outside
    ``core/`` (plugins, experiment-local variants, tests).
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == _REGISTRY_MODULE for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == _REGISTRY_MODULE:
                return True
            if node.module == "repro.core" and any(
                alias.name == "allocators" for alias in node.names
            ):
                return True
    return False


@rule(
    "allocator-signature",
    "core allocator classes must keep allocate(self, units, pool, directory)",
)
def check_allocator_signature(module: Module) -> Iterator[Finding]:
    if not module.in_package("core") and not _imports_allocator_registry(module):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "allocate"
            ):
                args = item.args
                names = tuple(arg.arg for arg in args.posonlyargs + args.args)
                irregular = (
                    names != _ALLOCATE_PARAMS
                    or args.vararg is not None
                    or args.kwarg is not None
                    or args.kwonlyargs
                )
                if irregular:
                    yield module.finding(
                        item,
                        "allocator-signature",
                        f"{node.name}.allocate has signature {names}; the "
                        "interchangeable-scheme contract is "
                        "allocate(self, units, pool, directory)",
                    )


# ----------------------------------------------------------------------
# Rule 9 — process-pool workers must be spawn-picklable
# ----------------------------------------------------------------------

#: Pool methods whose first positional argument is the worker callable.
_POOL_SUBMIT_METHODS = {
    "submit",
    "apply_async",
    "map_async",
    "imap",
    "imap_unordered",
}

#: Pool/process constructors and the keyword that carries a callable
#: shipped to the child process.
_POOL_CALLABLE_KWARGS = {
    "ProcessPoolExecutor": ("initializer",),
    "Pool": ("initializer",),
    "Process": ("target",),
}


class _LocalCallableScan(ast.NodeVisitor):
    """Names in a module that name a callable pickle cannot ship.

    Spawned workers unpickle callables *by module reference*
    (``module.qualname``), so lambdas and functions defined inside
    another function fail at submit time with an opaque pool crash.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.nested: Set[str] = set()
        self.lambda_names: Set[str] = set()

    def _visit_def(self, node: ast.AST) -> None:
        if self.depth:
            self.nested.add(node.name)  # type: ignore[attr-defined]
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.lambda_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.value, ast.Lambda) and isinstance(node.target, ast.Name):
            self.lambda_names.add(node.target.id)
        self.generic_visit(node)


def _unpicklable_reason(node: ast.AST, scan: _LocalCallableScan) -> Optional[str]:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Name):
        if node.id in scan.nested:
            return f"locally defined function {node.id!r}"
        if node.id in scan.lambda_names:
            return f"lambda-valued name {node.id!r}"
    return None


@rule(
    "unpicklable-worker",
    "callables handed to a process pool must be module-level "
    "(spawn pickles workers by reference)",
)
def check_unpicklable_worker(module: Module) -> Iterator[Finding]:
    scan = _LocalCallableScan()
    scan.visit(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_SUBMIT_METHODS
            and node.args
        ):
            reason = _unpicklable_reason(node.args[0], scan)
            if reason:
                yield module.finding(
                    node,
                    "unpicklable-worker",
                    f"{reason} passed to .{func.attr}(); spawned pool workers "
                    "unpickle callables by module reference — pass a "
                    "module-level function",
                )
        if isinstance(func, ast.Attribute):
            callee = func.attr
        elif isinstance(func, ast.Name):
            callee = func.id
        else:
            continue
        callable_kwargs = _POOL_CALLABLE_KWARGS.get(callee)
        if not callable_kwargs:
            continue
        for keyword in node.keywords:
            if keyword.arg in callable_kwargs:
                reason = _unpicklable_reason(keyword.value, scan)
                if reason:
                    yield module.finding(
                        node,
                        "unpicklable-worker",
                        f"{reason} passed as {callee}({keyword.arg}=...); it "
                        "cannot be pickled into a spawned child process — "
                        "pass a module-level function",
                    )


# ----------------------------------------------------------------------
# Rule 10 — determinism: monotonic timers only in the wall-time allowlist
# ----------------------------------------------------------------------

#: Dotted call targets that read a monotonic host timer.  Harmless by
#: themselves, but the reading is wall time: the moment it lands in a
#: row, export, or simulation decision, runs stop being comparable.
_MONOTONIC_TIMER_CALLS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: Modules audited to keep monotonic readings out of deterministic
#: outputs: the obs recorder segregates them behind ``include_wall``,
#: and croc.py / runner.py only feed the excluded-by-contract
#: ``computation_s`` measurement.
_WALL_TIME_ALLOWLIST = (
    ("core", "croc.py"),
    ("experiments", "runner.py"),
)


@rule(
    "wall-clock-output",
    "time.perf_counter()/monotonic() only in the audited wall-time "
    "allowlist (obs/, core/croc.py, experiments/runner.py) — elsewhere "
    "the reading leaks into deterministic outputs",
)
def check_wall_clock_output(module: Module) -> Iterator[Finding]:
    if module.in_package("obs"):
        return
    if any(module.is_module(*relative) for relative in _WALL_TIME_ALLOWLIST):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted in _MONOTONIC_TIMER_CALLS:
            yield module.finding(
                node,
                "wall-clock-output",
                f"{dotted}() outside the wall-time allowlist; deterministic "
                "outputs must not carry host timings — record wall time "
                "through repro.obs spans (wall_s) or the computation_s "
                "pattern, in an allowlisted module",
            )


# ----------------------------------------------------------------------
# Rule 11 — no unused imports (autofixable)
# ----------------------------------------------------------------------


def _import_bound_name(alias: ast.alias) -> str:
    """The name an import statement binds in the module namespace."""
    if alias.asname:
        return alias.asname
    return alias.name.split(".")[0]


def _used_names(module: Module) -> Set[str]:
    """Identifiers the module can observably use.

    Counts Name loads/stores (a store means the import is shadowed, but
    flagging shadowed imports is rule-creep), ``__all__`` string
    entries, and names mentioned in string annotations.
    """
    used: Set[str] = set()
    annotation_roots: List[ast.expr] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            annotation_roots.append(node.annotation)
        elif isinstance(node, ast.AnnAssign):
            annotation_roots.append(node.annotation)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.returns is not None:
            annotation_roots.append(node.returns)
    # Quoted forward references ("ClosenessKernel") hide their names in
    # string constants; parse every string found inside an annotation.
    pending = list(annotation_roots)
    while pending:
        root = pending.pop()
        for node in ast.walk(root):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval")
                except SyntaxError:
                    continue
                used.update(
                    inner.id
                    for inner in ast.walk(parsed)
                    if isinstance(inner, ast.Name)
                )
    exports = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                exports.add(elt.value)
    return used | exports


def unused_import_aliases(
    module: Module,
) -> List[Tuple[ast.stmt, ast.alias]]:
    """(import statement, alias) pairs bound but never used.

    Shared by the ``unused-import`` rule and the ``--fix`` rewriter so
    the two can never disagree about what is removable.  Skips
    ``__future__`` imports, star imports, explicit re-exports
    (``import x as x`` / ``from m import n as n``), and ``__init__.py``
    files without an ``__all__`` (their imports *are* the API).
    """
    is_init = module.path.endswith("__init__.py")
    has_all = any(
        isinstance(node, ast.Assign)
        and any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        )
        for node in module.tree.body
    )
    if is_init and not has_all:
        return []
    used = _used_names(module)
    unused: List[Tuple[ast.stmt, ast.alias]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = _import_bound_name(alias)
                if alias.asname == alias.name:
                    continue  # explicit re-export convention
                if bound not in used:
                    unused.append((node, alias))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue  # explicit re-export convention
                bound = alias.asname or alias.name
                if bound not in used:
                    unused.append((node, alias))
    return unused


@rule(
    "unused-import",
    "imported names must be used, exported via __all__, or re-exported "
    "with the `as` convention (autofixable with --fix)",
)
def check_unused_import(module: Module) -> Iterator[Finding]:
    for node, alias in unused_import_aliases(module):
        bound = alias.asname or alias.name
        yield module.finding(
            node,
            "unused-import",
            f"unused import {bound!r}; remove it (or re-export it as "
            f"`{alias.name} as {alias.name}` / list it in __all__)",
        )
