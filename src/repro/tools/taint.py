"""The ``determinism-taint`` pass: flow-sensitive nondeterminism tracking.

The bit-identity suites prove determinism *after* the fact; this pass
explains it statically.  Four taint kinds model the ways a value can
come to depend on something other than (config, seed):

* ``set-order`` — the value derives from the iteration order of a
  ``set``/``frozenset`` (hash-seed and insertion-history dependent);
* ``env`` — the value derives from ``os.environ``;
* ``wall-clock`` — the value derives from a host clock reading;
* ``randomness`` — the value derives from stdlib/numpy randomness that
  did not flow through :class:`repro.core.rng.SeededRng`.

The lattice per variable is the powerset of taint kinds plus an
``unordered`` bit marking set-typed values (a *clean* set exists; only
its iteration order is tainted).  Taint propagates flow-sensitively
through assignments, expressions, loops, branches, and function calls
(cross-module, via import-graph-resolved return summaries computed to
a small fixpoint).  ``sorted()`` — and the other order-insensitive
reductions ``len``/``min``/``max``/``any``/``all`` — sanitize
``set-order``; nothing sanitizes ``env``, ``wall-clock``, or
``randomness``.

A finding fires when a tainted value reaches a *sink*: an output or
export call (``print``, ``repr``, ``json.dump[s]``, ``.write*``,
``write_*(...)``), the return value of an ``allocate()`` method (an
allocation decision), or the return value of a metrics-row builder
(``as_row``/``*_row``/``rows``).  The audited allowlist below excuses
specific (module, kind) pairs the repo has proven safe by other means,
mirroring the per-file ``wall-clock-output`` rule; everything else is
a defect or a justified baseline entry.

Known approximations (all conservative in the safe direction for this
codebase, and documented in DESIGN.md): attribute stores are not
tracked, implicit flows (control dependence) are ignored, and unknown
calls propagate argument taint without generating any.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.tools.engine import Finding, Module
from repro.tools.project import ModuleInfo, Project, project_pass

# ----------------------------------------------------------------------
# Lattice
# ----------------------------------------------------------------------

#: One taint fact: (kind, origin line in the defining module).
Taint = Tuple[str, int]

KIND_SET_ORDER = "set-order"
KIND_ENV = "env"
KIND_WALL_CLOCK = "wall-clock"
KIND_RANDOMNESS = "randomness"


@dataclass(frozen=True)
class VarState:
    """Abstract value: carried taints plus the unordered-collection bit."""

    taints: FrozenSet[Taint] = frozenset()
    unordered: bool = False

    def union(self, other: "VarState") -> "VarState":
        if not other.taints and not other.unordered:
            return self
        return VarState(self.taints | other.taints, self.unordered or other.unordered)

    def with_taint(self, kind: str, lineno: int) -> "VarState":
        return VarState(self.taints | {(kind, lineno)}, self.unordered)

    def sanitized(self) -> "VarState":
        """Order-insensitive reduction: drop set-order, keep the rest."""
        return VarState(
            frozenset(t for t in self.taints if t[0] != KIND_SET_ORDER), False
        )


CLEAN = VarState()

#: Builtins whose result cannot depend on the iteration order of their
#: argument (sorted output, cardinality, extrema, boolean reductions).
_SANITIZERS = {"sorted", "len", "min", "max", "any", "all"}

#: Builtins that materialize an iteration order.
_ORDER_MATERIALIZERS = {"list", "tuple", "iter", "enumerate", "reversed"}

#: Wall-clock reading calls (both absolute and monotonic timers).
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow", "date.today",
    "datetime.date.today",
}

#: Unmanaged randomness call prefixes (SeededRng methods resolve through
#: object attributes and are never dotted ``random.*`` module calls).
_RANDOM_PREFIXES = ("random.", "numpy.random.", "np.random.")

#: Output / export call sinks.
_OUTPUT_NAME_CALLS = {"print", "repr"}
_OUTPUT_DOTTED_CALLS = {"json.dump", "json.dumps"}
_OUTPUT_METHODS = {"write", "writerow", "writelines"}

#: Return-value sinks, by function name.
_ALLOCATION_SINKS = {"allocate"}


def _is_row_builder(name: str) -> bool:
    return name in {"as_row", "to_row", "rows"} or name.endswith("_row")


#: Audited allowlist: (package, filename or "*") → kinds excused there.
#: Every entry must cite the mechanism that makes the taint harmless.
ALLOWLIST: Dict[Tuple[str, str], FrozenSet[str]] = {
    # The obs recorder segregates wall readings behind include_wall;
    # bit-identity attached vs. detached is pinned by
    # tests/test_obs_equivalence.py.
    ("obs", "*"): frozenset({KIND_WALL_CLOCK}),
    # croc.py and runner.py feed only the excluded-by-contract
    # computation_s measurement (see the wall-clock-output rule).
    ("core", "croc.py"): frozenset({KIND_WALL_CLOCK}),
    ("experiments", "runner.py"): frozenset({KIND_WALL_CLOCK}),
}


def _excused(info: ModuleInfo, kind: str) -> bool:
    parts = info.module.package_parts
    if not parts:
        return False
    package = parts[0]
    filename = parts[-1]
    for (pkg, name), kinds in ALLOWLIST.items():
        if pkg == package and (name == "*" or name == filename):
            if kind in kinds:
                return True
    return False


# ----------------------------------------------------------------------
# Per-function flow-sensitive interpreter
# ----------------------------------------------------------------------

SummaryKey = Tuple[str, str]  # (module name, function qualname)


class _Analyzer:
    """Interprets one function (or a module body) over the taint lattice."""

    def __init__(
        self,
        project: Project,
        info: ModuleInfo,
        summaries: Dict[SummaryKey, VarState],
        module_env: Dict[str, VarState],
        class_name: Optional[str] = None,
        func_name: Optional[str] = None,
        collect: Optional[List[Finding]] = None,
    ):
        self.project = project
        self.info = info
        self.summaries = summaries
        self.module_env = module_env
        self.class_name = class_name
        self.func_name = func_name
        self.collect = collect
        self.env: Dict[str, VarState] = {}
        self.return_state = CLEAN

    # -- helpers -------------------------------------------------------
    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def _lookup(self, name: str) -> VarState:
        if name in self.env:
            return self.env[name]
        return self.module_env.get(name, CLEAN)

    def _summary_for_call(self, func: ast.AST) -> Optional[VarState]:
        """Return-state summary of a resolvable project-internal callee."""
        if isinstance(func, ast.Name):
            resolved = self.project.resolve_name(self.info.name, func.id)
            if resolved is not None and isinstance(
                resolved[1], (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return self.summaries.get((resolved[0], resolved[1].name))
            return None
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.class_name is not None
            ):
                return self.summaries.get(
                    (self.info.name, f"{self.class_name}.{func.attr}")
                )
            dotted = self._dotted(func.value)
            if dotted is not None:
                # ``alias.f()`` where alias names a project module.
                target = self._module_alias(dotted)
                if target is not None:
                    return self.summaries.get((target, func.attr))
        return None

    def _module_alias(self, dotted: str) -> Optional[str]:
        """Resolve a local name/dotted prefix to a project module name."""
        for edge in self.info.imports:
            resolved = self.project.resolve_target(edge.target)
            if resolved is None:
                continue
            if edge.names:
                for name in edge.names:
                    if name == dotted:
                        candidate = self.project.resolve_target(
                            f"{edge.target}.{name}"
                        )
                        if candidate and candidate != resolved:
                            return candidate
            elif edge.target == dotted or edge.target.endswith("." + dotted):
                return resolved
        return None

    def _report(self, node: ast.AST, state: VarState, sink: str) -> None:
        if self.collect is None or not state.taints:
            return
        kinds = sorted({t[0] for t in state.taints})
        live = [k for k in kinds if not _excused(self.info, k)]
        if not live:
            return
        origins = {
            kind: min(line for k, line in state.taints if k == kind)
            for kind in live
        }
        detail = ", ".join(
            f"{kind} (from line {origins[kind]})" for kind in live
        )
        self.collect.append(
            Finding(
                self.info.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                "determinism-taint",
                f"value tainted by {detail} reaches {sink}; sort/sanitize "
                "before it lands in a deterministic output "
                "(sorted() clears set-order; env/clock/randomness need a "
                "seam or a justified baseline entry)",
            )
        )

    # -- expression evaluation -----------------------------------------
    def eval(self, node: Optional[ast.AST]) -> VarState:
        if node is None or isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, (ast.Set,)):
            state = _union(self.eval(e) for e in node.elts)
            return VarState(state.taints, True)
        if isinstance(node, (ast.List, ast.Tuple)):
            return _union(self.eval(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            parts = [self.eval(k) for k in node.keys if k is not None]
            parts += [self.eval(v) for v in node.values]
            return _union(parts)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            merged = left.union(right)
            if (left.unordered or right.unordered) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
            ):
                return VarState(merged.taints, True)
            return VarState(merged.taints, False)
        if isinstance(node, ast.BoolOp):
            return _union(self.eval(v) for v in node.values)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            merged = _union(
                [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
            )
            # Membership and equality are order-insensitive.
            return merged.sanitized()
        if isinstance(node, ast.IfExp):
            return self.eval(node.body).union(self.eval(node.orelse))
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            dotted = self._dotted(node.value)
            if dotted in ("os.environ",):
                base = base.with_taint(KIND_ENV, node.lineno)
            return VarState(base.taints | self.eval(node.slice).taints, False)
        if isinstance(node, ast.Attribute):
            dotted = self._dotted(node)
            if dotted == "os.environ":
                return VarState(
                    frozenset({(KIND_ENV, node.lineno)}), False
                )
            return VarState(self.eval(node.value).taints, False)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.JoinedStr,)):
            return _union(self.eval(v) for v in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comp(node, [node.elt], unordered=False)
        if isinstance(node, ast.SetComp):
            return self._eval_comp(node, [node.elt], unordered=True)
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node, [node.key, node.value], unordered=False)
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, (ast.Await, ast.YieldFrom, ast.Yield)):
            return self.eval(getattr(node, "value", None))
        if isinstance(node, ast.NamedExpr):
            state = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = state
            return state
        return CLEAN

    def _element_state(self, iterable: VarState, lineno: int) -> VarState:
        state = VarState(iterable.taints, False)
        if iterable.unordered:
            state = state.with_taint(KIND_SET_ORDER, lineno)
        return state

    def _eval_comp(
        self, node: ast.AST, results: Sequence[ast.AST], unordered: bool
    ) -> VarState:
        saved = dict(self.env)
        for comp in node.generators:  # type: ignore[attr-defined]
            iter_state = self.eval(comp.iter)
            element = self._element_state(iter_state, comp.iter.lineno)
            self._bind(comp.target, element)
            for test in comp.ifs:
                self.eval(test)
        state = _union(self.eval(r) for r in results)
        self.env = saved
        if unordered:
            return VarState(state.sanitized().taints, True)
        return state

    def _eval_call(self, node: ast.Call) -> VarState:
        args = [self.eval(a) for a in node.args]
        args += [self.eval(k.value) for k in node.keywords]
        merged = _union(args)
        func = node.func
        dotted = self._dotted(func)

        if isinstance(func, ast.Name):
            name = func.id
            if name in _SANITIZERS:
                return merged.sanitized()
            if name in ("set", "frozenset"):
                return VarState(merged.sanitized().taints, True)
            if name in _ORDER_MATERIALIZERS:
                if any(a.unordered for a in args):
                    merged = merged.with_taint(KIND_SET_ORDER, node.lineno)
                return VarState(merged.taints, False)
            if name == "getattr" and merged.taints:
                return merged

        if dotted is not None:
            if dotted in _CLOCK_CALLS:
                return merged.with_taint(KIND_WALL_CLOCK, node.lineno)
            if dotted in ("os.getenv", "os.environ.get"):
                return merged.with_taint(KIND_ENV, node.lineno)
            if dotted.startswith(_RANDOM_PREFIXES):
                return merged.with_taint(KIND_RANDOMNESS, node.lineno)

        # Output sinks.
        if isinstance(func, ast.Name) and func.id in _OUTPUT_NAME_CALLS:
            self._check_args(node, args, f"{func.id}()")
        elif dotted in _OUTPUT_DOTTED_CALLS:
            self._check_args(node, args, f"{dotted}()")
        elif isinstance(func, ast.Attribute) and func.attr in _OUTPUT_METHODS:
            self._check_args(node, args, f".{func.attr}()")
        elif isinstance(func, ast.Name) and func.id.startswith("write_"):
            self._check_args(node, args, f"{func.id}()")

        # Set-method algebra keeps the unordered bit.
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value)
            if func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference", "copy",
            ) and receiver.unordered:
                return VarState(merged.union(receiver).taints, True)
            if func.attr == "pop" and receiver.unordered:
                return merged.union(receiver).with_taint(
                    KIND_SET_ORDER, node.lineno
                )
            merged = merged.union(VarState(receiver.taints, False))

        summary = self._summary_for_call(func)
        if summary is not None:
            return VarState(
                merged.taints | summary.taints,
                summary.unordered,
            )
        return VarState(merged.taints, False)

    def _check_args(
        self, node: ast.Call, args: Sequence[VarState], sink: str
    ) -> None:
        merged = _union(args)
        if merged.taints:
            self._report(node, merged, sink)

    # -- statements ----------------------------------------------------
    def _bind(self, target: ast.AST, state: VarState) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = state
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = VarState(state.taints, False)
            for item in target.elts:
                self._bind(item, element)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, state)
        # Attribute / Subscript stores are not tracked (documented).

    def exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def _merge_env(self, *envs: Dict[str, VarState]) -> Dict[str, VarState]:
        merged: Dict[str, VarState] = {}
        for env in envs:
            for name, state in env.items():
                merged[name] = merged.get(name, CLEAN).union(state)
        return merged

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            state = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            state = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self._lookup(stmt.target.id).union(
                    state
                )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            state = self.eval(stmt.value)
            self.return_state = self.return_state.union(state)
            self._check_return(stmt, state)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self.exec_block(stmt.orelse)
            self.env = self._merge_env(then_env, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_state = self.eval(stmt.iter)
            element = self._element_state(iter_state, stmt.iter.lineno)
            before = dict(self.env)
            for _ in range(2):  # loop-carried taint needs one extra sweep
                self._bind(stmt.target, element)
                self.exec_block(stmt.body)
            self.env = self._merge_env(before, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            before = dict(self.env)
            for _ in range(2):
                self.eval(stmt.test)
                self.exec_block(stmt.body)
            self.env = self._merge_env(before, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                state = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, state)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.exec_block(stmt.body)
            body_env = self.env
            handler_envs = []
            for handler in stmt.handlers:
                self.env = self._merge_env(before, body_env)
                self.exec_block(handler.body)
                handler_envs.append(self.env)
            self.env = self._merge_env(body_env, *handler_envs)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # analyzed separately with their own scope
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc)
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test)
        # Import / Global / Pass / Break / Continue: no taint effect.

    def _check_return(self, stmt: ast.Return, state: VarState) -> None:
        if self.func_name is None or not state.taints:
            return
        if self.func_name in _ALLOCATION_SINKS:
            self._report(stmt, state, "an allocation decision (allocate() return)")
        elif _is_row_builder(self.func_name):
            self._report(
                stmt, state, f"a metrics row ({self.func_name}() return)"
            )


def _union(states) -> VarState:
    merged = CLEAN
    for state in states:
        merged = merged.union(state)
    return merged


# ----------------------------------------------------------------------
# Module / project drivers
# ----------------------------------------------------------------------


def _iter_functions(
    module: Module,
) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """(class name or None, function node) for all module/class functions."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, item


def _module_env(
    project: Project,
    info: ModuleInfo,
    summaries: Dict[SummaryKey, VarState],
) -> Dict[str, VarState]:
    """Abstract state of module-level names (globals functions read)."""
    analyzer = _Analyzer(project, info, summaries, {})
    analyzer.exec_block(info.module.tree.body)
    return analyzer.env


def _analyze_module(
    project: Project,
    info: ModuleInfo,
    summaries: Dict[SummaryKey, VarState],
    collect: Optional[List[Finding]],
) -> bool:
    """One analysis sweep over a module; True when a summary changed."""
    module_env = _module_env(project, info, summaries)
    changed = False
    for class_name, node in _iter_functions(info.module):
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        analyzer = _Analyzer(
            project, info, summaries, module_env,
            class_name=class_name, func_name=node.name, collect=collect,
        )
        analyzer.exec_block(node.body)  # type: ignore[attr-defined]
        key = (info.name, qualname)
        previous = summaries.get(key, CLEAN)
        updated = previous.union(analyzer.return_state)
        if updated != previous:
            summaries[key] = updated
            changed = True
        # Plain function-name summaries let Name-calls resolve methods
        # registered without their class (rare; harmless over-approx).
        if class_name is None:
            summaries.setdefault(key, updated)
    return changed


@project_pass(
    "determinism-taint",
    "set-iteration/env/clock/randomness taint must not reach allocation "
    "decisions, metrics rows, or exports (sorted() sanitizes set-order)",
)
def check_determinism_taint(project: Project) -> List[Finding]:
    summaries: Dict[SummaryKey, VarState] = {}
    # Fixpoint over call summaries (bounded; the lattice is tiny and
    # union-monotone, so three sweeps settle real codebases).
    for _ in range(3):
        changed = False
        for name in sorted(project.modules):
            changed |= _analyze_module(project, project.modules[name], summaries, None)
        if not changed:
            break
    findings: List[Finding] = []
    for name in sorted(project.modules):
        _analyze_module(project, project.modules[name], summaries, findings)
    return findings
