"""The *reprolint* rule framework.

The engine is deliberately small: a :class:`Module` wraps one parsed
source file, a :class:`Rule` is a named check producing
:class:`Finding` objects, and a module-level registry maps rule names
to implementations (populated by the :func:`rule` decorator in
:mod:`repro.tools.rules`).

Suppressions
------------
Two comment forms silence findings, mirroring the familiar
``# noqa`` / ``# type: ignore`` convention:

* ``# reprolint: disable=RULE[,RULE...]`` on the flagged line silences
  those rules for that line only (``disable=all`` silences every rule);
* ``# reprolint: disable-file=RULE[,RULE...]`` anywhere in the file
  silences those rules for the whole file.

Suppressions attach to the *reported* line, which for multi-line
statements is the line carrying the flagged expression.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

#: Matches one suppression pragma; a line may carry several.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)

#: Directory names never descended into when scanning a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


class LintError(Exception):
    """A file could not be linted (unreadable or unparsable)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class Module:
    """One parsed source file plus its suppression table."""

    def __init__(self, text: str, path: str):
        self.text = text
        self.path = path
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:  # pragma: no cover - exercised via CLI
            raise LintError(f"{path}: {exc.msg} (line {exc.lineno})") from exc
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _SUPPRESS_RE.finditer(line):
                scope, names = match.groups()
                rules = {name.strip() for name in names.split(",") if name.strip()}
                if scope == "disable-file":
                    self.file_suppressions |= rules
                else:
                    self.line_suppressions.setdefault(lineno, set()).update(rules)

    @classmethod
    def from_file(cls, path: Path) -> "Module":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: {exc}") from exc
        return cls(text, str(path))

    # ------------------------------------------------------------------
    # Location helpers used by rules
    # ------------------------------------------------------------------
    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Path segments below the ``repro`` package, e.g. ``('core', 'poset.py')``.

        Falls back to the bare filename when the path does not pass
        through a ``repro`` directory (fixture files in tests).
        """
        parts = Path(self.path).parts
        for index, part in enumerate(parts):
            if part == "repro":
                return parts[index + 1:]
        return parts[-1:] if parts else ()

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives under one of the given subpackages."""
        parts = self.package_parts
        return bool(parts) and parts[0] in packages

    def is_module(self, *relative: str) -> bool:
        """Exact match against a path below ``repro``, e.g. ``('sim', 'rng.py')``."""
        return self.package_parts == relative

    def finding(self, node: Union[ast.AST, int], rule_name: str, message: str) -> Finding:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(self.path, line, col, rule_name, message)

    def suppressed(self, finding: Finding) -> bool:
        names = self.line_suppressions.get(finding.line, set()) | self.file_suppressions
        return finding.rule in names or "all" in names


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
RuleCheck = Callable[[Module], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """A named check over one module."""

    name: str
    summary: str
    check: RuleCheck


_REGISTRY: Dict[str, Rule] = {}


def rule(name: str, summary: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule implementation under ``name``."""

    def decorate(check: RuleCheck) -> RuleCheck:
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name {name!r}")
        _REGISTRY[name] = Rule(name, summary, check)
        return check

    return decorate


def _load_builtin_rules() -> None:
    # Imported lazily: rules.py needs the decorator above, so a
    # module-level import here would be circular.
    from repro.tools import rules as _rules  # noqa: F401  # reprolint: disable=unused-import (registration side effect)


def all_rules() -> List[Rule]:
    """Every registered rule, in stable name order."""
    _load_builtin_rules()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    """Map a ``--select`` list to rules; ``None`` means all of them."""
    available = {rule_.name: rule_ for rule_ in all_rules()}
    if names is None:
        return list(available.values())
    selected: List[Rule] = []
    for name in names:
        if name not in available:
            known = ", ".join(sorted(available))
            raise LintError(f"unknown rule {name!r} (known rules: {known})")
        selected.append(available[name])
    return selected


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_rules(module: Module, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Apply rules to one module, honouring suppression comments."""
    findings: List[Finding] = []
    for rule_ in rules if rules is not None else all_rules():
        for finding in rule_.check(module):
            if not module.suppressed(finding):
                findings.append(finding)
    return sorted(findings, key=lambda finding: finding.sort_key)


def lint_source(
    text: str,
    path: str = "<fixture>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint an in-memory source string (the test-suite entry point)."""
    return run_rules(Module(text, path), rules)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files and directory trees into a sorted list of ``.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (_SKIP_DIRS & set(candidate.parts))
                and not any(part.endswith(".egg-info") for part in candidate.parts)
            )
        elif path.suffix == ".py" and path.exists():
            candidates = [path]
        elif not path.exists():
            raise LintError(f"{path}: no such file or directory")
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint files/trees; returns (findings, files_checked)."""
    selected = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        findings.extend(run_rules(Module.from_file(path), selected))
        checked += 1
    return sorted(findings, key=lambda finding: finding.sort_key), checked
