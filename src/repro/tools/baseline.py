"""Committed baseline for incremental adoption of new analyses.

A baseline file lists findings the repo has *audited and accepted*, so
a newly grown pass can gate CI from day one without first fixing every
historical hit.  The format keeps the audit honest:

* every entry MUST carry a written ``justification`` — an entry
  without one is a hard error, not a suppression;
* the ``layering`` pass accepts no baseline entries at all: layer
  violations are fixed by moving code, never grandfathered;
* entries that no longer match anything become ``stale-baseline``
  findings, so the file shrinks as defects are fixed instead of
  accreting dead weight.

Matching is by (rule, path, message substring) — line numbers drift
with every edit and are deliberately not part of the key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.tools.engine import Finding, LintError

BASELINE_VERSION = 1

#: Passes that must reach zero findings without suppression.
NO_BASELINE_PASSES = ("layering",)


@dataclass(frozen=True)
class BaselineEntry:
    """One audited, justified suppression."""

    rule: str
    path: str
    contains: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and self.contains in finding.message
        )

    def describe(self) -> str:
        return f"{self.rule} @ {self.path} ~ {self.contains!r}"


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse and validate a baseline file (strict: bad entries raise)."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"{path}: cannot read baseline: {exc}") from exc
    except ValueError as exc:
        raise LintError(f"{path}: baseline is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise LintError(
            f"{path}: expected a baseline object with version={BASELINE_VERSION}"
        )
    entries_raw = raw.get("entries")
    if not isinstance(entries_raw, list):
        raise LintError(f"{path}: baseline 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for index, item in enumerate(entries_raw):
        if not isinstance(item, dict):
            raise LintError(f"{path}: entry {index} is not an object")
        missing = [
            key
            for key in ("rule", "path", "contains", "justification")
            if not isinstance(item.get(key), str) or not item.get(key).strip()
        ]
        if missing:
            raise LintError(
                f"{path}: entry {index} missing/empty {', '.join(missing)} — "
                "every baseline entry needs a written justification"
            )
        if item["rule"] in NO_BASELINE_PASSES:
            raise LintError(
                f"{path}: entry {index} suppresses the {item['rule']!r} pass; "
                "layering violations are fixed, not baselined"
            )
        entries.append(
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                contains=item["contains"],
                justification=item["justification"],
            )
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
    baseline_path: str,
) -> Tuple[List[Finding], int]:
    """Filter baselined findings; stale entries become findings.

    Returns (remaining findings incl. stale-baseline ones, suppressed
    count).
    """
    remaining: List[Finding] = []
    used = [False] * len(entries)
    suppressed = 0
    for finding in findings:
        matched = False
        for index, entry in enumerate(entries):
            if entry.matches(finding):
                used[index] = True
                matched = True
        if matched:
            suppressed += 1
        else:
            remaining.append(finding)
    for index, entry in enumerate(entries):
        if not used[index]:
            remaining.append(
                Finding(
                    baseline_path,
                    1,
                    0,
                    "stale-baseline",
                    f"baseline entry no longer matches any finding — delete "
                    f"it: {entry.describe()}",
                )
            )
    return sorted(remaining, key=lambda f: f.sort_key), suppressed
