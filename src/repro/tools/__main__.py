"""``python -m repro.tools`` — subcommand dispatch for the dev tooling.

``lint`` is the only subcommand today; the package entry point exists
so future tools (``graph``, ``fix`` as first-class verbs) slot in
without another module path to remember.  ``python -m
repro.tools.lint`` keeps working unchanged.
"""

from __future__ import annotations

import sys

from repro.tools.lint import EXIT_ERROR, main as lint_main

_USAGE = """\
usage: python -m repro.tools COMMAND [options]

commands:
  lint    run reprolint (per-file rules + whole-program passes);
          see `python -m repro.tools lint --help`
"""


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = args[0], args[1:]
    if command == "lint":
        return lint_main(rest)
    print(f"repro.tools: unknown command {command!r}\n{_USAGE}",
          end="", file=sys.stderr)
    return EXIT_ERROR


if __name__ == "__main__":
    raise SystemExit(main())
