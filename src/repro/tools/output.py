"""Output renderers: text, JSON, and SARIF 2.1.0.

SARIF is the interchange format CI code-scanning UIs ingest; the
emitter here covers the subset those UIs read (tool driver with rule
metadata, one result per finding with a physical location).  Output is
deterministic: findings arrive pre-sorted and no timestamps or
absolute paths are embedded.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.tools.engine import Finding
from repro.tools.project import ParseFailure

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(
    findings: Sequence[Finding],
    parse_failures: Sequence[ParseFailure],
    checked: int,
    suppressed: int = 0,
) -> str:
    lines = [str(failure) + " [parse-error]" for failure in parse_failures]
    lines += [str(finding) for finding in findings]
    status = "clean" if not findings and not parse_failures else (
        f"{len(findings)} finding(s)"
        + (f", {len(parse_failures)} parse failure(s)" if parse_failures else "")
    )
    suffix = f", {suppressed} baselined" if suppressed else ""
    lines.append(f"reprolint: {checked} file(s) checked, {status}{suffix}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    parse_failures: Sequence[ParseFailure],
    checked: int,
    rule_names: Sequence[str],
    pass_names: Sequence[str],
    suppressed: int = 0,
) -> str:
    return json.dumps(
        {
            "checked_files": checked,
            "rules": list(rule_names),
            "passes": list(pass_names),
            "suppressed_by_baseline": suppressed,
            "parse_failures": [
                {"path": failure.path, "message": failure.message}
                for failure in parse_failures
            ],
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    findings: Sequence[Finding],
    parse_failures: Sequence[ParseFailure],
    rule_metadata: Dict[str, str],
) -> str:
    """SARIF log with one run; parse failures become tool notifications."""
    rule_ids = sorted(
        set(rule_metadata) | {finding.rule for finding in findings}
    )
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": rule_metadata.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    index_of = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    results: List[Dict[str, object]] = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index_of[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    notifications = [
        {
            "level": "error",
            "message": {"text": failure.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": failure.path.replace("\\", "/")}
                    }
                }
            ],
        }
        for failure in parse_failures
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/tools"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not parse_failures,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
