"""The ``api-contract`` pass: the pluggable-allocator surface, enforced.

Several families of checks, all whole-program:

* **Registered allocators** — every ``register(...)`` call that
  resolves to :func:`repro.core.allocators.register` (directly or via
  an alias) is located repo-wide; its *builder* argument must resolve,
  through the import graph, to a module-level function or class (or an
  instance of a module-level class), because process-pool workers
  replay registrations by pickling builders by reference.  This
  supersedes the per-file unpicklable-worker heuristic for builders:
  resolution follows ``from x import y`` chains instead of guessing
  from local syntax.  Every allocator class reachable from a builder
  must keep the interchangeable-scheme signature
  ``allocate(self, units, pool, directory)``.

* **AllocatorSpec shapes** — ``AllocatorSpec(...)`` records built
  outside the registry module get the same builder resolution check as
  ``register`` calls, and any *literal* capability collection (on a
  spec or a ``register(..., capabilities=...)`` call) may only use the
  known capability vocabulary.  A typo'd capability never errors at
  runtime — ``supports``/``names_with`` gates just silently never
  select the allocator — so the pass catches it statically.

* **``__all__`` consistency** — every name a module exports must be
  bound at module level (a typo in ``__all__`` breaks
  ``from m import *`` and silently lies to readers).

* **Dead exports** — a name in a non-``__init__`` module's ``__all__``
  that no other module (including the tests/benchmarks usage index)
  references is dead surface: either delete it or move it where its
  users live.  Package ``__init__`` files are exempt — their
  ``__all__`` is the public API for downstream users, not for this
  repo.  The reference scan is name-based (any load/attribute/import
  of the name anywhere counts), so it errs toward keeping exports.

* **Shard-merge ordering** — a function whose name marks it as a
  shard merge/collection helper (``shard`` plus one of ``merge`` /
  ``combine`` / ``collect`` / ``gather``) must not iterate a dict view
  (``.values()`` / ``.items()`` / ``.keys()``) or ``set(...)`` of one
  of its parameters.  The sharded Phase-2 contract
  (:func:`repro.core.cram.merge_shard_outcomes`) is that shard results
  are consumed in *submission order*; hash-order iteration over the
  caller's container silently breaks that bit-identity guarantee, so
  the pass catches the shape statically.

* **Energy float comparisons** — a function whose name marks it as
  part of the energy model (``energy`` / ``watts``) and whose return
  annotation is ``float`` must not compare with raw operators
  (``<`` ``<=`` ``>`` ``>=`` ``==`` ``!=``): joule and watt totals are
  sums of float products, so ordering/equality decisions must go
  through the :mod:`repro.core.floats` helpers (``approx_le``,
  ``approx_ge``, ``approx_eq``, ``approx_zero``) or the Pareto ranking
  silently flips on accumulation noise.

* **Engine queue encapsulation** — ``heapq`` imports and ``heapq.*``
  calls are allowed only in :mod:`repro.sim.engine`.  The event queue
  is the engine's private structure; a heap maintained anywhere else
  bypasses the ``REPRO_ENGINE`` heap/calendar toggle and the engine's
  determinism contract (tie order, cancellation accounting,
  same-timestamp batching).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.tools.engine import Finding
from repro.tools.project import ModuleInfo, Project, project_pass

#: The registry module and the callables that bind builders.
REGISTRY_MODULE = "repro.core.allocators"
_REGISTER_NAMES = {"register", "register_allocator"}

#: The interchangeable-scheme entry-point signature.
ALLOCATE_PARAMS = ("self", "units", "pool", "directory")

#: The registry's record class, checked wherever it is constructed.
_SPEC_CLASS_NAME = "AllocatorSpec"

#: Mirror of ``repro.core.allocators.KNOWN_CAPABILITIES``.  The tools
#: layer is an import leaf (it may not import repro.core), so the
#: vocabulary is duplicated here; ``tests/test_reprolint.py`` pins the
#: two sets equal so they cannot drift apart.
KNOWN_CAPABILITIES = frozenset(
    {"incremental", "sharded", "kernel_aware", "energy_aware"}
)


# ----------------------------------------------------------------------
# __all__ handling
# ----------------------------------------------------------------------


def module_exports(info: ModuleInfo) -> Optional[Tuple[int, List[str]]]:
    """(lineno, names) of a module's literal ``__all__``, if present."""
    for node in info.module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        names = [
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
                        return node.lineno, names
    return None


def _module_level_bindings(info: ModuleInfo) -> Set[str]:
    """Names bound at module scope (including conditional branches)."""
    bound: Set[str] = set()

    def scan(body: List[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    _bind_target(target, bound)
            elif isinstance(node, ast.AnnAssign):
                _bind_target(node.target, bound)
            elif isinstance(node, ast.AugAssign):
                _bind_target(node.target, bound)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        bound.add("*")
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                scan(node.body)
                scan(getattr(node, "orelse", []))
                for handler in getattr(node, "handlers", []):
                    scan(handler.body)
                scan(getattr(node, "finalbody", []))
            elif isinstance(node, (ast.For, ast.While, ast.With)):
                if isinstance(node, ast.For):
                    _bind_target(node.target, bound)
                elif isinstance(node, ast.With):
                    for item in node.items:
                        if item.optional_vars is not None:
                            _bind_target(item.optional_vars, bound)
                scan(node.body)
                scan(node.orelse if hasattr(node, "orelse") else [])

    scan(info.module.tree.body)
    return bound


def _bind_target(target: ast.AST, bound: Set[str]) -> None:
    if isinstance(target, ast.Name):
        bound.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind_target(elt, bound)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, bound)


def _referenced_names(info: ModuleInfo) -> Set[str]:
    """Every identifier a module loads, accesses, imports, or re-exports."""
    names: Set[str] = set()
    for node in ast.walk(info.module.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # __all__ re-export lists in aggregating modules.
            if node.value.isidentifier():
                names.add(node.value)
    return names


# ----------------------------------------------------------------------
# Registered-builder resolution
# ----------------------------------------------------------------------


def _is_register_call(
    project: Project, info: ModuleInfo, node: ast.Call
) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id not in _REGISTER_NAMES:
            return False
        resolved = project.resolve_name(info.name, func.id)
        if resolved is not None:
            return resolved[0] == REGISTRY_MODULE
        # Inside the registry module itself the def resolves locally.
        return info.name == REGISTRY_MODULE
    if isinstance(func, ast.Attribute) and func.attr in _REGISTER_NAMES:
        base = func.value
        parts: List[str] = []
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            parts.append(base.id)
            dotted = ".".join(reversed(parts))
            return dotted.endswith("allocators") or dotted == REGISTRY_MODULE
    return False


def _builder_argument(node: ast.Call) -> Optional[ast.AST]:
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "builder":
            return keyword.value
    return None


def _iter_register_calls(
    project: Project,
) -> Iterator[Tuple[ModuleInfo, ast.Call, ast.AST]]:
    for name in sorted(project.modules):
        info = project.modules[name]
        for node in ast.walk(info.module.tree):
            if isinstance(node, ast.Call) and _is_register_call(project, info, node):
                builder = _builder_argument(node)
                if builder is not None:
                    yield info, node, builder


def _classes_reached(
    project: Project, module_name: str, root: ast.AST
) -> Iterator[Tuple[str, ast.ClassDef]]:
    """Class definitions referenced (by name) inside ``root``."""
    seen: Set[Tuple[str, str]] = set()
    for node in ast.walk(root):
        if not isinstance(node, ast.Name):
            continue
        resolved = project.resolve_name(module_name, node.id)
        if resolved is None or not isinstance(resolved[1], ast.ClassDef):
            continue
        key = (resolved[0], resolved[1].name)
        if key not in seen:
            seen.add(key)
            yield resolved[0], resolved[1]


def _allocate_signature_findings(
    project: Project, module_name: str, cls: ast.ClassDef
) -> Iterator[Finding]:
    for item in cls.body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "allocate"
        ):
            args = item.args
            names = tuple(arg.arg for arg in args.posonlyargs + args.args)
            irregular = (
                names != ALLOCATE_PARAMS
                or args.vararg is not None
                or args.kwarg is not None
                or bool(args.kwonlyargs)
            )
            if irregular:
                yield Finding(
                    project.modules[module_name].path,
                    item.lineno,
                    item.col_offset,
                    "api-contract",
                    f"registered allocator {cls.name}.allocate has signature "
                    f"{names}; the registry contract is "
                    "allocate(self, units, pool, directory)",
                )


def _builder_findings(
    project: Project, info: ModuleInfo, call: ast.Call, builder: ast.AST
) -> Iterator[Finding]:
    def finding(message: str) -> Finding:
        return Finding(
            info.path, call.lineno, call.col_offset, "api-contract", message
        )

    if isinstance(builder, ast.Lambda):
        yield finding(
            "allocator builder is a lambda; spawned pool workers replay "
            "registrations by pickling builders by reference — register a "
            "module-level function or class instance"
        )
        body_module, body = info.name, builder
    elif isinstance(builder, ast.Name):
        resolved = project.resolve_name(info.name, builder.id)
        if resolved is None:
            yield finding(
                f"allocator builder {builder.id!r} does not resolve to a "
                "module-level definition in the analyzed tree; builders "
                "must be statically resolvable for pickling by reference"
            )
            return
        body_module, body = resolved
        if isinstance(body, ast.Lambda):
            yield finding(
                f"allocator builder {builder.id!r} is a lambda-valued name; "
                "pickling by reference needs a module-level def or class"
            )
    elif isinstance(builder, ast.Call) and isinstance(builder.func, ast.Name):
        resolved = project.resolve_name(info.name, builder.func.id)
        if resolved is None:
            yield finding(
                f"allocator builder {ast.dump(builder.func)} is not "
                "statically resolvable"
            )
            return
        body_module, body = resolved
        if isinstance(body, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield finding(
                f"allocator builder {builder.func.id}(...) is produced by a "
                "function call — the closure it returns cannot be pickled "
                "by reference; register an instance of a module-level "
                "class instead"
            )
    else:
        yield finding(
            "allocator builder expression is not statically resolvable "
            "(expected a module-level name, class instance, or def)"
        )
        return

    for class_module, cls in _classes_reached(project, body_module, body):
        yield from _allocate_signature_findings(project, class_module, cls)


# ----------------------------------------------------------------------
# AllocatorSpec shapes
# ----------------------------------------------------------------------


def _dotted_suffix(func: ast.Attribute) -> Optional[str]:
    """``a.b.c`` rendered as a dotted string, when statically plain."""
    parts: List[str] = [func.attr]
    base = func.value
    while isinstance(base, ast.Attribute):
        parts.append(base.attr)
        base = base.value
    if isinstance(base, ast.Name):
        parts.append(base.id)
        return ".".join(reversed(parts))
    return None


def _is_spec_call(project: Project, info: ModuleInfo, node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id != _SPEC_CLASS_NAME:
            return False
        resolved = project.resolve_name(info.name, func.id)
        # Unresolved names keep the distinctive class name's intent.
        return resolved is None or resolved[0] == REGISTRY_MODULE
    if isinstance(func, ast.Attribute) and func.attr == _SPEC_CLASS_NAME:
        dotted = _dotted_suffix(func)
        if dotted is None:
            return False
        prefix = dotted[: -len(_SPEC_CLASS_NAME) - 1]
        return prefix.endswith("allocators") or prefix == REGISTRY_MODULE
    return False


def _iter_spec_calls(project: Project) -> Iterator[Tuple[ModuleInfo, ast.Call]]:
    for name in sorted(project.modules):
        if name == REGISTRY_MODULE:
            # The shim inside the registry builds specs from its own
            # parameters; its call sites are checked where they occur.
            continue
        info = project.modules[name]
        for node in ast.walk(info.module.tree):
            if isinstance(node, ast.Call) and _is_spec_call(project, info, node):
                yield info, node


def _call_argument(
    node: ast.Call, position: Optional[int], keyword: str
) -> Optional[ast.AST]:
    """Positional-or-keyword lookup (``position=None`` = keyword-only)."""
    if position is not None and len(node.args) > position:
        return node.args[position]
    for item in node.keywords:
        if item.arg == keyword:
            return item.value
    return None


def _capability_literals(node: ast.AST) -> Optional[List[str]]:
    """The literal capability strings, or ``None`` when not static."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"frozenset", "set", "tuple", "list"}
        and len(node.args) == 1
        and not node.keywords
    ):
        return _capability_literals(node.args[0])
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                values.append(elt.value)
            else:
                return None
        return values
    return None


def _capability_findings(
    info: ModuleInfo, call: ast.Call, capabilities: Optional[ast.AST]
) -> Iterator[Finding]:
    if capabilities is None:
        return
    literals = _capability_literals(capabilities)
    if literals is None:
        return
    for capability in literals:
        if capability not in KNOWN_CAPABILITIES:
            yield Finding(
                info.path,
                call.lineno,
                call.col_offset,
                "api-contract",
                f"allocator capability {capability!r} is not in the known "
                f"vocabulary {sorted(KNOWN_CAPABILITIES)}; capability gates "
                "(supports / names_with) would silently never select it",
            )


# ----------------------------------------------------------------------
# Shard-merge ordering
# ----------------------------------------------------------------------

#: Name fragments that, combined with ``shard``, mark a merge helper.
_SHARD_MERGE_HINTS = ("merge", "combine", "collect", "gather")

#: Dict views whose iteration order is the dict's, not the caller's.
_UNORDERED_VIEWS = frozenset({"values", "items", "keys"})


def _is_shard_merge_function(name: str) -> bool:
    lowered = name.lower()
    return "shard" in lowered and any(
        hint in lowered for hint in _SHARD_MERGE_HINTS
    )


def _function_params(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    args = func.args
    params = {
        arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs
    }
    if args.vararg is not None:
        params.add(args.vararg.arg)
    if args.kwarg is not None:
        params.add(args.kwarg.arg)
    params.discard("self")
    params.discard("cls")
    return params


def _unordered_param_iterable(
    expr: ast.expr, params: Set[str]
) -> Optional[str]:
    """Describe ``expr`` if it is an unordered view over a parameter."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _UNORDERED_VIEWS
        and isinstance(func.value, ast.Name)
        and func.value.id in params
        and not expr.args
        and not expr.keywords
    ):
        return f"{func.value.id}.{func.attr}()"
    if (
        isinstance(func, ast.Name)
        and func.id in {"set", "frozenset"}
        and len(expr.args) == 1
        and not expr.keywords
        and isinstance(expr.args[0], ast.Name)
        and expr.args[0].id in params
    ):
        return f"{func.id}({expr.args[0].id})"
    return None


def _iteration_sites(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[ast.expr]:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                yield generator.iter


def _shard_merge_findings(info: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(info.module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_shard_merge_function(node.name):
            continue
        params = _function_params(node)
        for iterable in _iteration_sites(node):
            described = _unordered_param_iterable(iterable, params)
            if described is not None:
                yield Finding(
                    info.path,
                    iterable.lineno,
                    iterable.col_offset,
                    "api-contract",
                    f"shard-merge function {node.name!r} iterates "
                    f"{described}; shard outcomes must be consumed in "
                    "submission order, and dict/set iteration order is "
                    "not the submission order",
                )


# ----------------------------------------------------------------------
# Energy float comparisons
# ----------------------------------------------------------------------

#: Name fragments that mark a function as part of the energy model.
_ENERGY_HINTS = ("energy", "watts")

#: The raw comparison operators the energy model may not use directly.
_RAW_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _is_energy_float_function(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> bool:
    lowered = func.name.lower()
    if not any(hint in lowered for hint in _ENERGY_HINTS):
        return False
    returns = func.returns
    if isinstance(returns, ast.Name):
        return returns.id == "float"
    if isinstance(returns, ast.Constant):  # string annotation
        return returns.value == "float"
    return False


def _energy_comparison_findings(info: ModuleInfo) -> Iterator[Finding]:
    seen_sites: Set[Tuple[int, int]] = set()
    for node in ast.walk(info.module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_energy_float_function(node):
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Compare):
                continue
            if not any(isinstance(op, _RAW_COMPARE_OPS) for op in inner.ops):
                continue
            site = (inner.lineno, inner.col_offset)
            if site in seen_sites:  # nested matching defs walk twice
                continue
            seen_sites.add(site)
            yield Finding(
                info.path,
                inner.lineno,
                inner.col_offset,
                "api-contract",
                f"energy-model function {node.name!r} (returns float) "
                "uses a raw comparison operator; joule/watt totals are "
                "float accumulations — route the comparison through "
                "repro.core.floats (approx_le / approx_ge / approx_eq "
                "/ approx_zero)",
            )


# ----------------------------------------------------------------------
# Engine queue encapsulation
# ----------------------------------------------------------------------

#: The one module allowed to use ``heapq``: the simulation engine owns
#: the event-queue structure.  Everything else schedules through
#: ``SimulatorCore``, so the heap/calendar engines stay interchangeable
#: (``REPRO_ENGINE``) — a private heap elsewhere would silently bypass
#: that toggle and the engine's determinism contract (tie order,
#: cancellation accounting, same-timestamp batching).
_QUEUE_OWNER = "repro.sim.engine"


def _heapq_findings(info: ModuleInfo) -> Iterator[Finding]:
    if info.name == _QUEUE_OWNER:
        return

    def finding(node: ast.AST, what: str) -> Finding:
        return Finding(
            info.path,
            node.lineno,
            node.col_offset,
            "api-contract",
            f"{what} outside {_QUEUE_OWNER}: the event queue belongs to "
            "the engine — schedule through SimulatorCore so the "
            "heap/calendar toggle and the determinism contract apply",
        )

    for node in ast.walk(info.module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "heapq" or alias.name.startswith("heapq."):
                    yield finding(node, "direct 'import heapq'")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "heapq" and node.level == 0:
                names = ", ".join(alias.name for alias in node.names)
                yield finding(node, f"direct 'from heapq import {names}'")
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "heapq"
        ):
            yield finding(node, f"direct heapq.{node.func.attr}() call")


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------


@project_pass(
    "api-contract",
    "registered allocator builders must be picklable module-level "
    "callables keeping allocate(self, units, pool, directory); __all__ "
    "must be consistent and free of dead exports; shard-merge helpers "
    "must not iterate dict views or sets of their inputs; energy-model "
    "float functions must compare via repro.core.floats; heapq stays "
    "encapsulated in repro.sim.engine",
)
def check_api_contract(project: Project) -> List[Finding]:
    findings: List[Finding] = []

    # A class reached from several register calls would repeat its
    # signature finding; dedupe on the full finding identity.
    seen: Set[Tuple[str, int, int, str]] = set()

    def emit(found: Finding) -> None:
        key = (found.path, found.line, found.col, found.message)
        if key not in seen:
            seen.add(key)
            findings.append(found)

    for info, call, builder in _iter_register_calls(project):
        for found in _builder_findings(project, info, call, builder):
            emit(found)
        for found in _capability_findings(
            info, call, _call_argument(call, None, "capabilities")
        ):
            emit(found)

    for info, call in _iter_spec_calls(project):
        builder = _call_argument(call, 1, "builder")
        if builder is not None:
            for found in _builder_findings(project, info, call, builder):
                emit(found)
        for found in _capability_findings(
            info, call, _call_argument(call, 2, "capabilities")
        ):
            emit(found)

    for name in sorted(project.modules):
        findings.extend(_shard_merge_findings(project.modules[name]))
        findings.extend(_energy_comparison_findings(project.modules[name]))
        findings.extend(_heapq_findings(project.modules[name]))

    # Name-reference index for the dead-export scan: everything any
    # *other* module (or the usage index) references.
    references: Dict[str, Set[str]] = {}
    all_infos = list(project.modules.values()) + list(
        project.usage_modules.values()
    )
    for info in all_infos:
        references[info.name] = _referenced_names(info)

    for name in sorted(project.modules):
        info = project.modules[name]
        exports = module_exports(info)
        if exports is None:
            continue
        lineno, exported = exports
        bound = _module_level_bindings(info)
        star_imports = "*" in bound
        for export in exported:
            if export not in bound and not star_imports:
                findings.append(
                    Finding(
                        info.path,
                        lineno,
                        0,
                        "api-contract",
                        f"__all__ exports {export!r} which is not bound at "
                        "module level",
                    )
                )
        if info.path.endswith("__init__.py"):
            continue  # public API surface: exempt from dead-export
        for export in exported:
            used = any(
                export in refs
                for other, refs in references.items()
                if other != info.name
            )
            if not used:
                findings.append(
                    Finding(
                        info.path,
                        lineno,
                        0,
                        "api-contract",
                        f"dead export: __all__ lists {export!r} but no other "
                        "module (src, tests, or benchmarks) references it",
                    )
                )
    return findings
