"""The ``layering`` pass: the declared package DAG, enforced.

The repo's packages form a strict layering, declared here once and
gated on every run::

    core → sim → pubsub → workloads → experiments      (bottom → top)

A layer may import strictly lower layers, itself, and the utility
leaves.  ``obs`` and ``tools`` are *leaves*: they import nothing from
any other ``repro`` package (``obs`` is the instrumentation seam every
layer may call into; ``tools`` is this analyzer and is importable by
nobody).  The root package (``repro/__init__.py``, ``__main__.py``) is
the public surface and may import everything except ``tools``.

Both eager and lazy (function-nested) imports count as layering edges:
a lazy upward import is still a dependency, just a deferred one — the
exact trick that used to hide ``obs → experiments``.  Import-time
*cycles*, by contrast, are only possible through eager imports, so the
cycle check runs on the eager subgraph.

There is deliberately no baseline escape hatch for this pass (see
:mod:`repro.tools.baseline`): a layering violation is fixed by moving
code down the stack, not grandfathered.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.tools.engine import Finding
from repro.tools.project import Project, project_pass

#: The layered packages, bottom (index 0) to top.
LAYERS: Tuple[str, ...] = ("core", "sim", "pubsub", "workloads", "experiments")

#: Leaf packages: importable per the table below, importing nothing.
LEAVES: Tuple[str, ...] = ("obs", "tools")

#: Pseudo-package for repro/__init__.py and repro/__main__.py.
ROOT = "<root>"


def allowed_imports(package: str) -> Set[str]:
    """The set of packages ``package`` may import (besides itself).

    Unknown packages (a new directory nobody declared) get an empty
    allowance, which surfaces as an ``undeclared package`` finding on
    each of their project-internal imports.
    """
    if package == ROOT:
        return set(LAYERS) | {"obs"}
    if package in LEAVES:
        return set()
    if package in LAYERS:
        rank = LAYERS.index(package)
        return set(LAYERS[:rank]) | {"obs"}
    return set()


@project_pass(
    "layering",
    "package imports must follow the declared DAG "
    "(core < sim < pubsub < workloads < experiments; obs/tools leaves)",
)
def check_layering(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    declared = set(LAYERS) | set(LEAVES) | {ROOT}

    for (source_pkg, target_pkg), edges in sorted(project.package_edges().items()):
        if target_pkg == "<external>":
            continue
        for edge in edges:
            info = project.modules[edge.source]
            if source_pkg not in declared:
                findings.append(
                    Finding(
                        info.path,
                        edge.lineno,
                        0,
                        "layering",
                        f"package {source_pkg!r} is not declared in the "
                        "layering DAG (repro.tools.layering.LAYERS/LEAVES); "
                        "declare its layer before importing "
                        f"{edge.target!r}",
                    )
                )
                continue
            if target_pkg == ROOT:
                findings.append(
                    Finding(
                        info.path,
                        edge.lineno,
                        0,
                        "layering",
                        f"{edge.source} imports the root package "
                        f"({edge.target}); subpackages must import concrete "
                        "modules, not the public facade (import cycle at "
                        "interpreter start-up)",
                    )
                )
                continue
            if target_pkg not in allowed_imports(source_pkg):
                lazy_note = " (lazy import — still a dependency)" if edge.lazy else ""
                findings.append(
                    Finding(
                        info.path,
                        edge.lineno,
                        0,
                        "layering",
                        f"{source_pkg} may not import {target_pkg} "
                        f"({edge.source} → {edge.target}){lazy_note}; allowed "
                        f"targets for {source_pkg}: "
                        f"{_fmt(allowed_imports(source_pkg)) or '(none)'}",
                    )
                )

    for cycle in project.import_cycles():
        info = project.modules[cycle[0]]
        findings.append(
            Finding(
                info.path,
                1,
                0,
                "layering",
                "import-time cycle: " + " → ".join(cycle + [cycle[0]]),
            )
        )
    return findings


def _fmt(packages: Set[str]) -> str:
    return ", ".join(sorted(packages))


def graph_report(project: Project) -> str:
    """The ``--graph`` listing: layers, edges, and any cycles."""
    lines = ["package layering (bottom → top): " + " → ".join(LAYERS)]
    lines.append("leaves (import nothing): " + ", ".join(LEAVES))
    lines.append("")
    counts: Dict[Tuple[str, str], int] = {}
    for (source_pkg, target_pkg), edges in project.package_edges().items():
        if target_pkg == "<external>":
            continue
        counts[(source_pkg, target_pkg)] = len(edges)
    lines.append("package edges (modules importing across packages):")
    for (source_pkg, target_pkg) in sorted(counts):
        marker = (
            "ok   "
            if target_pkg in allowed_imports(source_pkg)
            else "VIOLATION "
        )
        lines.append(
            f"  {marker}{source_pkg:12s} → {target_pkg:12s} "
            f"({counts[(source_pkg, target_pkg)]} import(s))"
        )
    if not counts:
        lines.append("  (none)")
    cycles = project.import_cycles()
    lines.append("")
    if cycles:
        lines.append("import-time cycles:")
        for cycle in cycles:
            lines.append("  " + " → ".join(cycle + [cycle[0]]))
    else:
        lines.append("import-time cycles: none")
    return "\n".join(lines)
