"""``python -m repro.tools.lint`` — the *reprolint* command line.

Usage::

    python -m repro.tools.lint [PATH ...] [--format text|json]
                               [--select RULE[,RULE...]] [--list-rules]

Exit codes: 0 — clean; 1 — findings reported; 2 — usage, I/O, or
parse error.  Default target is ``src`` when run from the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.tools.engine import LintError, all_rules, lint_paths, resolve_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="reprolint — determinism, unit-safety, and allocation invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, else the cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only the named rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_ in all_rules():
            print(f"{rule_.name:22s} {rule_.summary}")
        return EXIT_CLEAN

    try:
        selected = resolve_rules(
            options.select.split(",") if options.select else None
        )
        findings, checked = lint_paths(options.paths or _default_paths(), selected)
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if options.format == "json":
        print(
            json.dumps(
                {
                    "checked_files": checked,
                    "rules": [rule_.name for rule_ in selected],
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding)
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"reprolint: {checked} file(s) checked, {status}")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main())
