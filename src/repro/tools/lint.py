"""``python -m repro.tools lint`` — the *reprolint* v2 command line.

Usage::

    python -m repro.tools lint [PATH ...]
        [--format text|json|sarif] [--output FILE]
        [--select RULE[,RULE...]] [--passes PASS[,PASS...]|none]
        [--usage PATH ...] [--baseline FILE|none] [--cache FILE]
        [--graph] [--fix] [--list-rules] [--list-passes]

(``python -m repro.tools.lint`` remains an equivalent entry point.)

Exit codes: 0 — clean; 1 — findings reported; 2 — usage error, I/O
error, or one or more files failed to parse.  Parse failures never
silently skip a file: every unparsable file is reported and forces
exit 2 even when there are no findings, so a syntax error cannot
masquerade as a clean run.  Default target is ``src`` when run from
the repo root.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.tools import autofix as autofix_mod
from repro.tools import baseline as baseline_mod
from repro.tools.cache import LintCache, project_signature, rules_signature
from repro.tools.engine import (
    Finding,
    LintError,
    all_rules,
    iter_python_files,
    resolve_rules,
    run_rules,
)
from repro.tools.output import render_json, render_sarif, render_text
from repro.tools.project import (
    ParseFailure,
    Project,
    all_passes,
    resolve_passes,
    run_passes,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Conventional baseline filename (applied only when --baseline names it:
#: a baseline silently inherited from the cwd would change results of
#: unrelated scoped runs).
DEFAULT_BASELINE = "reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools lint",
        description=(
            "reprolint v2 — per-file invariants plus whole-program layering, "
            "determinism-taint, and API-contract analysis"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, else the cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only the named per-file rules",
    )
    parser.add_argument(
        "--passes",
        metavar="PASS[,PASS...]",
        help="run only the named whole-program passes ('none' disables them)",
    )
    parser.add_argument(
        "--usage",
        metavar="PATH",
        action="append",
        default=[],
        help=(
            "extra trees (tests, benchmarks) indexed for the dead-export "
            "scan but not linted; may repeat"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            f"audited-findings baseline (the repo commits {DEFAULT_BASELINE}; "
            "no baseline is applied unless this flag is given)"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help="content-hash result cache file (off unless given)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="print the package import graph and layering verdicts, then exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=(
            "rewrite files to fix the mechanically safe rules "
            "(missing future annotations, unused imports) before linting"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered per-file rules and exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered whole-program passes and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


@dataclass
class LintRun:
    """Everything one invocation produced (the programmatic API)."""

    findings: List[Finding] = field(default_factory=list)
    parse_failures: List[ParseFailure] = field(default_factory=list)
    checked: int = 0
    suppressed: int = 0
    rule_names: List[str] = field(default_factory=list)
    pass_names: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def exit_code(self) -> int:
        if self.parse_failures:
            return EXIT_ERROR
        if self.findings:
            return EXIT_FINDINGS
        return EXIT_CLEAN


def run_lint(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
    passes: Optional[Sequence[str]] = None,
    usage_paths: Sequence[str] = (),
    baseline_path: Optional[Path] = None,
    cache_path: Optional[Path] = None,
) -> LintRun:
    """The full pipeline: rules + passes + baseline + cache."""
    selected_rules = resolve_rules(select)
    selected_passes = resolve_passes(passes)

    project, parse_failures = Project.load(paths, usage_paths)
    run = LintRun(
        parse_failures=parse_failures,
        checked=len(project.modules),
        rule_names=[rule_.name for rule_ in selected_rules],
        pass_names=[pass_.name for pass_ in selected_passes],
    )

    cache = LintCache(cache_path) if cache_path is not None else None
    rules_sig = rules_signature(run.rule_names)

    findings: List[Finding] = []
    for name in sorted(project.modules):
        info = project.modules[name]
        cached = (
            cache.get_file(info.path, info.sha256, rules_sig)
            if cache is not None
            else None
        )
        if cached is None:
            file_findings = run_rules(info.module, selected_rules)
            if cache is not None:
                cache.put_file(info.path, info.sha256, rules_sig, file_findings)
        else:
            file_findings = cached
        findings.extend(file_findings)

    if selected_passes:
        hashes = [
            (info.path, info.sha256)
            for info in list(project.modules.values())
            + list(project.usage_modules.values())
        ]
        project_sig = project_signature(hashes, run.pass_names)
        cached_pass = (
            cache.get_project(project_sig) if cache is not None else None
        )
        if cached_pass is None:
            pass_findings = run_passes(project, selected_passes)
            if cache is not None:
                cache.put_project(project_sig, pass_findings)
        else:
            pass_findings = cached_pass
        findings.extend(pass_findings)

    if baseline_path is not None:
        entries = baseline_mod.load_baseline(baseline_path)
        findings, run.suppressed = baseline_mod.apply_baseline(
            findings, entries, str(baseline_path)
        )

    if cache is not None:
        cache.save()
        run.cache_hits = cache.hits
        run.cache_misses = cache.misses

    run.findings = sorted(findings, key=lambda finding: finding.sort_key)
    return run


def _rule_metadata() -> Dict[str, str]:
    metadata = {rule_.name: rule_.summary for rule_ in all_rules()}
    metadata.update({pass_.name: pass_.summary for pass_ in all_passes()})
    metadata["stale-baseline"] = "baseline entries must match a live finding"
    return metadata


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_ in all_rules():
            print(f"{rule_.name:22s} {rule_.summary}")
        return EXIT_CLEAN
    if options.list_passes:
        for pass_ in all_passes():
            print(f"{pass_.name:22s} {pass_.summary}")
        return EXIT_CLEAN

    paths = options.paths or _default_paths()

    try:
        if options.graph:
            from repro.tools.layering import graph_report

            project, parse_failures = Project.load(paths, options.usage)
            print(graph_report(project))
            for failure in parse_failures:
                print(f"parse failure: {failure}", file=sys.stderr)
            return EXIT_ERROR if parse_failures else EXIT_CLEAN

        if options.fix:
            files = list(iter_python_files(paths))
            results = autofix_mod.fix_paths(files)
            fixed = [result for result in results if result.changed]
            for result in fixed:
                details = []
                if result.added_future:
                    details.append("added future annotations")
                if result.removed_imports:
                    details.append(
                        f"removed {result.removed_imports} unused import(s)"
                    )
                print(f"fixed {result.path}: {', '.join(details)}")
            if fixed:
                print(f"reprolint --fix: rewrote {len(fixed)} file(s)")

        baseline_path: Optional[Path]
        if options.baseline and options.baseline != "none":
            baseline_path = Path(options.baseline)
        else:
            baseline_path = None

        pass_names: Optional[Sequence[str]]
        if options.passes is None:
            pass_names = None
        elif options.passes == "none":
            pass_names = []
        else:
            pass_names = options.passes.split(",")

        run = run_lint(
            paths,
            select=options.select.split(",") if options.select else None,
            passes=pass_names,
            usage_paths=options.usage,
            baseline_path=baseline_path,
            cache_path=Path(options.cache) if options.cache else None,
        )
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if options.format == "json":
        report = render_json(
            run.findings,
            run.parse_failures,
            run.checked,
            run.rule_names,
            run.pass_names,
            run.suppressed,
        )
    elif options.format == "sarif":
        report = render_sarif(run.findings, run.parse_failures, _rule_metadata())
    else:
        report = render_text(
            run.findings, run.parse_failures, run.checked, run.suppressed
        )

    if options.output:
        Path(options.output).write_text(report + "\n", encoding="utf-8")
        if options.format == "text":
            print(report.splitlines()[-1])
    else:
        print(report)
    return run.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
