"""``--fix``: mechanical rewrites for the two provably safe rules.

Only two rules are mechanically safe to fix — adding the missing
``from __future__ import annotations`` and deleting unused imports —
because neither can change runtime behaviour of a module that imports
cleanly.  Everything else stays a human decision.

Idempotency is not assumed, it is *asserted*: after rewriting a file
the fixer re-lints the result with the same two rules and re-runs
itself; any remaining finding or second-round change raises
:class:`FixError` and the original file content is restored.  That
fix-then-relint loop is what lets ``--fix`` run unattended in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.tools.engine import LintError, Module, resolve_rules, run_rules
from repro.tools.rules import unused_import_aliases

#: The rules --fix may touch, by name.
FIXABLE_RULES = ("future-annotations", "unused-import")


class FixError(LintError):
    """A fix did not converge (non-idempotent or still findings after)."""


@dataclass
class FixResult:
    """What happened to one file."""

    path: str
    changed: bool
    removed_imports: int
    added_future: bool


def _has_future_annotations(tree: ast.Module) -> bool:
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
        ):
            return True
    return False


def _future_insert_line(text: str, tree: ast.Module) -> int:
    """0-based line index where the future import belongs.

    After the module docstring when there is one, otherwise after the
    leading comment block (shebang, coding cookie, licence header).
    """
    if (
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    ):
        return tree.body[0].end_lineno or tree.body[0].lineno
    lines = text.splitlines()
    index = 0
    while index < len(lines) and (
        lines[index].startswith("#") or not lines[index].strip()
    ):
        index += 1
    return index


def _rebuild_import(node: ast.stmt, keep: List[ast.alias], indent: str) -> str:
    parts = [
        alias.name + (f" as {alias.asname}" if alias.asname else "")
        for alias in keep
    ]
    if isinstance(node, ast.ImportFrom):
        prefix = "." * node.level + (node.module or "")
        statement = f"{indent}from {prefix} import " + ", ".join(parts)
    else:
        statement = f"{indent}import " + ", ".join(parts)
    if len(statement) <= 88:
        return statement
    if isinstance(node, ast.ImportFrom):
        inner = "".join(f"{indent}    {part},\n" for part in parts)
        return (
            f"{indent}from {'.' * node.level}{node.module or ''} import (\n"
            f"{inner}{indent})"
        )
    return statement  # long plain imports stay on one line


def fix_source(text: str, path: str = "<fixture>") -> Tuple[str, FixResult]:
    """One fixing sweep over a source string (no idempotency check)."""
    module = Module(text, path)
    lines = text.splitlines(keepends=True)
    result = FixResult(path=path, changed=False, removed_imports=0,
                       added_future=False)

    # Unused imports first: deletions, applied bottom-up so line
    # numbers stay valid.  Suppressed findings must survive --fix:
    # side-effect imports (rule/pass registration) carry an inline
    # disable comment, and deleting them would change behaviour.
    unused = [
        (node, alias)
        for node, alias in unused_import_aliases(module)
        if not module.suppressed(
            module.finding(node, "unused-import", "candidate")
        )
    ]
    by_node: dict = {}
    for node, alias in unused:
        by_node.setdefault(id(node), (node, []))[1].append(alias)
    edits = sorted(
        by_node.values(), key=lambda pair: pair[0].lineno, reverse=True
    )
    for node, dead_aliases in edits:
        keep = [alias for alias in node.names if alias not in dead_aliases]
        start = node.lineno - 1
        end = (node.end_lineno or node.lineno) - 1
        indent = lines[start][: len(lines[start]) - len(lines[start].lstrip())]
        if keep:
            replacement = _rebuild_import(node, keep, indent) + "\n"
            lines[start : end + 1] = [replacement]
        else:
            del lines[start : end + 1]
        result.removed_imports += len(dead_aliases)
        result.changed = True

    new_text = "".join(lines)

    # Missing future import: insertion (re-parse after deletions so the
    # docstring location is exact).
    reparsed = ast.parse(new_text, filename=path)
    if new_text.strip() and not _has_future_annotations(reparsed):
        insert_at = _future_insert_line(new_text, reparsed)
        new_lines = new_text.splitlines(keepends=True)
        statement = "from __future__ import annotations\n"
        padding: List[str] = []
        if insert_at > 0:
            padding = ["\n"]
        if insert_at < len(new_lines) and new_lines[insert_at].strip():
            statement = statement + "\n"
        new_lines[insert_at:insert_at] = padding + [statement]
        new_text = "".join(new_lines)
        result.added_future = True
        result.changed = True

    return new_text, result


def fix_source_checked(text: str, path: str = "<fixture>") -> Tuple[str, FixResult]:
    """Fix, then assert the fix converged (relint clean + idempotent)."""
    fixed, result = fix_source(text, path)
    rules = resolve_rules(FIXABLE_RULES)
    remaining = run_rules(Module(fixed, path), rules)
    if remaining:
        raise FixError(
            f"{path}: findings remain after --fix (fixer bug): "
            + "; ".join(str(finding) for finding in remaining)
        )
    refixed, second = fix_source(fixed, path)
    if second.changed or refixed != fixed:
        raise FixError(f"{path}: --fix is not idempotent (fixer bug)")
    return fixed, result


def fix_paths(paths: List[Path]) -> List[FixResult]:
    """Fix files in place; convergence failures restore the original."""
    results: List[FixResult] = []
    for file_path in paths:
        original = file_path.read_text(encoding="utf-8")
        fixed, result = fix_source_checked(original, str(file_path))
        if result.changed:
            file_path.write_text(fixed, encoding="utf-8")
        results.append(result)
    return results
