"""Content-hash result cache keeping full-repo analysis fast.

Two cache planes, one JSON file:

* **per-file** — findings of the per-file rules, keyed by the file's
  SHA-256 and the rule signature.  A file that did not change re-uses
  its findings without re-parsing the rules over it.
* **whole-program** — findings of the project passes, keyed by the
  hash of *every* analyzed file (sources and the usage index): any
  edit anywhere invalidates them, because a pass's verdict can depend
  on any module.

Both keys fold in a *tool signature* — the SHA-256 of the analyzer's
own sources — so editing reprolint invalidates everything (the classic
stale-linter-cache trap).  Corrupt or incompatible cache files are
discarded silently: the cache is an accelerator, never a source of
truth, and a warm run must produce byte-for-byte the findings of a
cold run (pinned by a test).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tools.engine import Finding

_CACHE_VERSION = 1

_tool_signature: Optional[str] = None


def tool_signature() -> str:
    """SHA-256 over the analyzer's own source files (cached per process)."""
    global _tool_signature
    if _tool_signature is None:
        digest = hashlib.sha256()
        tools_dir = Path(__file__).resolve().parent
        for source in sorted(tools_dir.glob("*.py")):
            digest.update(source.name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(source.read_bytes())
        _tool_signature = digest.hexdigest()
    return _tool_signature


def _finding_to_list(finding: Finding) -> List[object]:
    return [finding.path, finding.line, finding.col, finding.rule, finding.message]


def _finding_from_list(raw: Sequence[object]) -> Finding:
    path, line, col, rule_name, message = raw
    return Finding(str(path), int(line), int(col), str(rule_name), str(message))


class LintCache:
    """The on-disk cache; load once, consult, save once."""

    def __init__(self, path: Path):
        self.path = path
        self._files: Dict[str, Dict[str, object]] = {}
        self._project: Dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("version") != _CACHE_VERSION:
            return
        if raw.get("tool") != tool_signature():
            return  # the analyzer changed: every cached verdict is suspect
        files = raw.get("files")
        project = raw.get("project")
        if isinstance(files, dict):
            self._files = files
        if isinstance(project, dict):
            self._project = project

    def save(self) -> None:
        payload = {
            "version": _CACHE_VERSION,
            "tool": tool_signature(),
            "files": self._files,
            "project": self._project,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a cache that cannot persist is just a cold cache

    # -- per-file plane -------------------------------------------------
    def file_key(self, sha256: str, rules_sig: str) -> str:
        return f"{sha256}:{rules_sig}"

    def get_file(
        self, path: str, sha256: str, rules_sig: str
    ) -> Optional[List[Finding]]:
        entry = self._files.get(path)
        if not isinstance(entry, dict):
            self.misses += 1
            return None
        if entry.get("key") != self.file_key(sha256, rules_sig):
            self.misses += 1
            return None
        findings = entry.get("findings")
        if not isinstance(findings, list):
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_list(raw) for raw in findings]

    def put_file(
        self, path: str, sha256: str, rules_sig: str, findings: Sequence[Finding]
    ) -> None:
        self._files[path] = {
            "key": self.file_key(sha256, rules_sig),
            "findings": [_finding_to_list(f) for f in findings],
        }

    # -- whole-program plane -------------------------------------------
    def get_project(self, project_sig: str) -> Optional[List[Finding]]:
        if self._project.get("key") != project_sig:
            self.misses += 1
            return None
        findings = self._project.get("findings")
        if not isinstance(findings, list):
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_list(raw) for raw in findings]

    def put_project(self, project_sig: str, findings: Sequence[Finding]) -> None:
        self._project = {
            "key": project_sig,
            "findings": [_finding_to_list(f) for f in findings],
        }


def rules_signature(rule_names: Sequence[str]) -> str:
    digest = hashlib.sha256(tool_signature().encode("utf-8"))
    for name in sorted(rule_names):
        digest.update(b"\0")
        digest.update(name.encode("utf-8"))
    return digest.hexdigest()


def project_signature(
    file_hashes: Sequence[Tuple[str, str]], pass_names: Sequence[str]
) -> str:
    """Hash over every (path, sha256) pair plus the selected passes."""
    digest = hashlib.sha256(tool_signature().encode("utf-8"))
    for path, sha in sorted(file_hashes):
        digest.update(b"\0")
        digest.update(path.encode("utf-8"))
        digest.update(b"=")
        digest.update(sha.encode("utf-8"))
    for name in sorted(pass_names):
        digest.update(b"\1")
        digest.update(name.encode("utf-8"))
    return digest.hexdigest()
