"""The simulated overlay network tying brokers, clients, and links together.

Owns the simulator, the metrics collector, the broker pool, and the
client population, and implements deployment execution: the paper
re-instantiates every broker and re-connects the original clients to
the new instances; :meth:`PubSubNetwork.apply_deployment` does the
equivalent by resetting brokers to a clean state, rewiring the links of
the new tree, and re-attaching every client at its assigned broker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.bitvector import DEFAULT_CAPACITY
from repro.core.capacity import BrokerSpec
from repro.core.config import delivery_batch_from_env
from repro.core.deployment import Deployment
from repro.pubsub.broker import BROKER, Broker, CLIENT, Destination
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.faults import FaultInjector
from repro.pubsub.message import Publication
from repro.pubsub.metrics import MetricsCollector
from repro.sim.engine import SimulatorCore, make_simulator
from repro.sim.faults import FaultPlan

#: One-way link latency inside the data center (seconds).
DEFAULT_LINK_LATENCY = 0.0005

#: Virtual seconds a broker waits for its downstream BIA aggregation
#: before answering a BIR with whatever reports arrived.  This is the
#: per-broker timeout that keeps CROC's gather phase live when a
#: subtree contains a crashed broker.
DEFAULT_BIR_TIMEOUT = 2.0


class _FanoutBatch:
    """One batched publication fan-out, drained by a single event.

    ``entries`` holds ``(arrival, client_id)`` pairs in arrival order
    (the sender's FIFO output lane makes them non-decreasing).  The
    network schedules :meth:`fire` at the *last* arrival; deliveries
    carry their own arrival time, so every per-delivery observable
    (delay, hop count, subscriber bookkeeping) is the value the
    per-destination schedule would have produced.
    """

    __slots__ = ("_network", "message", "entries", "index")

    def __init__(self, network: "PubSubNetwork", message: Publication,
                 entries: List[Tuple[float, str]]):
        self._network = network
        self.message = message
        self.entries = entries
        self.index = 0

    def drain(self, until: float) -> None:
        """Deliver every not-yet-delivered entry with arrival <= until.

        Inlined subscriber delivery: batches exist only on the
        fault-free, untraced path, and publications are matched out of
        the SRT, so no entry can name a control client — the full
        :meth:`PubSubNetwork._deliver_to_client` dispatch would re-test
        both per subscriber.
        """
        network = self._network
        subscribers = network.subscribers
        on_delivery = network.metrics.on_delivery
        message = self.message
        publish_time = message.publish_time
        hops = message.hops
        entries = self.entries
        index = self.index
        size = len(entries)
        while index < size:
            arrival, client_id = entries[index]
            if arrival > until:
                break
            index += 1
            subscriber = subscribers.get(client_id)
            if subscriber is None:
                continue  # migrated away mid-flight
            on_delivery(arrival - publish_time, hops)
            subscriber.receive(message, arrival)
        self.index = index

    def fire(self) -> None:
        """Drain the whole batch at its final arrival time."""
        self.drain(float("inf"))
        self._network._pending_batches.remove(self)


class PubSubNetwork:
    """A complete simulated publish/subscribe deployment."""

    def __init__(
        self,
        sim: Optional[SimulatorCore] = None,
        link_latency: float = DEFAULT_LINK_LATENCY,
        profile_capacity: int = DEFAULT_CAPACITY,
        enable_covering: bool = False,
        bir_timeout: float = DEFAULT_BIR_TIMEOUT,
    ):
        self.sim = sim if sim is not None else make_simulator()
        self.metrics = MetricsCollector(self.sim)
        self.link_latency = link_latency
        self.profile_capacity = profile_capacity
        self.enable_covering = enable_covering
        self.bir_timeout = bir_timeout
        self.faults: Optional[FaultInjector] = None
        #: Optional :class:`repro.obs.timeline.TimelineSampler`; when
        #: set, :meth:`run` drives the engine through it so run
        #: timelines get sampled (chunked ``sim.run`` calls — the event
        #: order is exactly the unsampled one).
        self.obs_sampler = None
        #: The most recently applied deployment — CROC's rollback target.
        self.last_deployment: Optional[Deployment] = None
        self.brokers: Dict[str, Broker] = {}
        self.publishers: Dict[str, PublisherClient] = {}
        self.subscribers: Dict[str, SubscriberClient] = {}
        #: Fan-out fast path: per-broker bound ``receive`` methods and
        #: interned source tuples, reused across the millions of repeat
        #: (publisher, broker) hops instead of re-allocated per message.
        self._receive_of: Dict[str, Any] = {}
        self._broker_sources: Dict[str, Destination] = {}
        self._client_sources: Dict[str, Destination] = {}
        self._subscriber_of_sub: Dict[str, str] = {}
        self._links: set = set()
        self._active_brokers: Optional[List[str]] = None
        self._control_clients: Dict[str, Any] = {}
        #: Optional repro.pubsub.tracing.MessageTracer; brokers and the
        #: network record publication trace events while it is set.
        self.tracer = None
        #: Fan-out batching knob (:data:`REPRO_DELIVERY_BATCH`) and the
        #: batches whose final-arrival event has not fired yet.
        self._delivery_batching = delivery_batch_from_env()
        self._pending_batches: List[_FanoutBatch] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_broker(self, spec: BrokerSpec) -> Broker:
        if spec.broker_id in self.brokers:
            raise ValueError(f"broker {spec.broker_id!r} already exists")
        broker = Broker(spec, self, self.profile_capacity,
                        covering_enabled=self.enable_covering)
        self.brokers[spec.broker_id] = broker
        self._receive_of[spec.broker_id] = broker.receive
        self._broker_sources[spec.broker_id] = (BROKER, spec.broker_id)
        return broker

    def connect_brokers(self, first: str, second: str) -> None:
        if first == second:
            raise ValueError("cannot link a broker to itself")
        self.brokers[first].add_neighbor(second)
        self.brokers[second].add_neighbor(first)
        self._links.add(frozenset((first, second)))

    def disconnect_all(self) -> None:
        for broker in self.brokers.values():
            broker.neighbors.clear()
        self._links.clear()

    @property
    def links(self) -> List[Tuple[str, str]]:
        return [tuple(sorted(link)) for link in sorted(self._links, key=sorted)]

    @property
    def active_brokers(self) -> List[str]:
        """Brokers in the current deployment (all, before any deployment)."""
        if self._active_brokers is None:
            return list(self.brokers)
        return list(self._active_brokers)

    def broker_pool(self) -> List[BrokerSpec]:
        return [broker.spec for broker in self.brokers.values()]

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan, seed: int = 0) -> FaultInjector:
        """Attach a :class:`FaultInjector` executing ``plan`` to this network.

        Installing an *empty* plan is a strict no-op for the data path
        (pinned by ``tests/test_fault_equivalence.py``).  A network
        accepts at most one injector for its lifetime.
        """
        if self.faults is not None:
            raise ValueError("fault injector already installed on this network")
        injector = FaultInjector(self, plan, seed=seed)
        injector.install()
        self.faults = injector
        return injector

    def broker_is_down(self, broker_id: str) -> bool:
        """True while the fault layer holds ``broker_id`` crashed."""
        return self.faults is not None and self.faults.broker_down(broker_id)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def register_publisher(self, publisher: PublisherClient) -> None:
        """Make the client known without attaching it to a broker yet."""
        self.publishers[publisher.client_id] = publisher

    def register_subscriber(self, subscriber: SubscriberClient) -> None:
        self.subscribers[subscriber.client_id] = subscriber
        for subscription in subscriber.subscriptions:
            self._subscriber_of_sub[subscription.sub_id] = subscriber.client_id

    def attach_publisher(self, publisher: PublisherClient, broker_id: str) -> None:
        if publisher.client_id in self.publishers and publisher.broker_id is not None:
            raise ValueError(f"publisher {publisher.client_id!r} already attached")
        self.register_publisher(publisher)
        self.brokers[broker_id].attach_client(publisher.client_id)
        publisher.attached(self, broker_id)

    def attach_subscriber(self, subscriber: SubscriberClient, broker_id: str) -> None:
        if subscriber.client_id in self.subscribers and subscriber.broker_id is not None:
            raise ValueError(f"subscriber {subscriber.client_id!r} already attached")
        self.register_subscriber(subscriber)
        self.brokers[broker_id].attach_client(subscriber.client_id)
        subscriber.attached(self, broker_id)

    def subscriber_for(self, sub_id: str) -> Optional[str]:
        """Client id owning ``sub_id`` (``None`` for unknown ids).

        Public read-only view of the subscription→subscriber map, used
        by deployment execution internally and by the online scheduler
        to turn planned subscription moves into client migrations.
        """
        return self._subscriber_of_sub.get(sub_id)

    def detach_all_clients(self) -> None:
        for publisher in self.publishers.values():
            if publisher.broker_id is not None:
                self.brokers[publisher.broker_id].detach_client(publisher.client_id)
                publisher.detached()
        for subscriber in self.subscribers.values():
            if subscriber.broker_id is not None:
                self.brokers[subscriber.broker_id].detach_client(subscriber.client_id)
                subscriber.detached()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def client_send(self, client_id: str, broker_id: str, message: Any,
                    size_kb: float) -> None:
        """A client injects a message at its broker (one link latency)."""
        if self.tracer is not None and isinstance(message, Publication):
            self.tracer.record(self.sim.now, "publish", client_id,
                               message.adv_id, message.message_id,
                               detail=f"-> {broker_id}")
        source = self._client_sources.get(client_id)
        if source is None:
            source = self._client_sources[client_id] = (CLIENT, client_id)
        delay = self.link_latency
        if self.faults is not None:
            if self.faults.broker_down(broker_id) or self.faults.drop_in_transit():
                self.metrics.on_fault_drop(isinstance(message, Publication))
                return
            delay += self.faults.extra_latency()
            self.sim.schedule(
                delay, lambda: self._arrive_at_broker(broker_id, message, source)
            )
            return
        # Fault-free fast path: no broker can be down at arrival, so the
        # down-at-arrival indirection is skipped and the broker's bound
        # receive method is reused directly.
        receive = self._receive_of[broker_id]
        self.sim.schedule(delay, lambda: receive(message, source))

    @property
    def delivery_batching(self) -> bool:
        """Whether client fan-outs may be drained by one batched event.

        Batching must be observably identical to the per-destination
        schedule, so it switches off whenever something watches or
        perturbs individual deliveries: a tracer records per-delivery
        events at ``sim.now``, and a fault plan with loss or jitter
        draws from the transit RNG once per scheduled delivery.  Crash
        and link fault events never touch client deliveries, so an
        otherwise-degradation-free plan keeps the fast path.
        """
        if not self._delivery_batching or self.tracer is not None:
            return False
        faults = self.faults
        if faults is None:
            return True
        plan = faults.plan
        return plan.loss_rate <= 0.0 and plan.jitter <= 0.0

    def deliver_fanout(self, sender_broker: str, message: Publication,
                       sends: List[Tuple[float, str]]) -> None:
        """Complete a whole client fan-out with one scheduled event.

        ``sends`` is the per-subscriber ``(sent_at, client_id)`` list
        in transmission order.  One-destination fan-outs keep the plain
        per-destination schedule; larger ones register a
        :class:`_FanoutBatch` that fires at the last arrival and is
        partially drained by :meth:`flush_deliveries` at run
        boundaries.
        """
        latency = self.link_latency
        if len(sends) == 1:
            sent_at, client_id = sends[0]
            arrival = sent_at + latency
            self.sim.schedule_at(
                arrival, lambda: self._deliver_to_client(client_id, message, arrival)
            )
            return
        entries = [(sent_at + latency, client_id) for sent_at, client_id in sends]
        batch = _FanoutBatch(self, message, entries)
        self._pending_batches.append(batch)
        self.sim.schedule_at(entries[-1][0], batch.fire)

    def flush_deliveries(self, until: float) -> None:
        """Deliver batched entries due by ``until`` whose batch event
        is still in the future.

        Called at the end of :meth:`run` so window boundaries see every
        delivery with arrival <= ``until``, exactly like the
        per-destination schedule would.  Batches are never emptied
        here: their last entry arrives at the batch event's own time,
        which is past ``until`` or the event would already have fired.
        """
        for batch in self._pending_batches:
            batch.drain(until)

    def deliver(self, sender_broker: str, destination: Destination, message: Any,
                sent_at: float) -> None:
        """Complete a broker transmission after serialization + latency."""
        arrival = sent_at + self.link_latency
        kind, identifier = destination
        if self.faults is not None:
            if kind == BROKER and self.faults.link_down(sender_broker, identifier):
                self.metrics.on_fault_drop(isinstance(message, Publication))
                return
            if self.faults.drop_in_transit():
                self.metrics.on_fault_drop(isinstance(message, Publication))
                return
            arrival += self.faults.extra_latency()
            if kind == BROKER:
                source = self._broker_sources[sender_broker]
                self.sim.schedule_at(
                    arrival, lambda: self._arrive_at_broker(
                        identifier, message, source)
                )
            else:
                self.sim.schedule_at(
                    arrival, lambda: self._deliver_to_client(identifier, message)
                )
            return
        if kind == BROKER:
            # Fault-free fast path: reuse the interned source tuple and
            # the receiving broker's bound method for this repeat hop.
            receive = self._receive_of[identifier]
            source = self._broker_sources[sender_broker]
            self.sim.schedule_at(arrival, lambda: receive(message, source))
        else:
            self.sim.schedule_at(
                arrival, lambda: self._deliver_to_client(identifier, message)
            )

    def _arrive_at_broker(self, broker_id: str, message: Any,
                          source: Destination) -> None:
        """Hand a message to a broker at its arrival time.

        The down-check happens *at arrival*, not at send time: a broker
        that crashes while a message is on the wire still loses it.
        """
        if self.broker_is_down(broker_id):
            self.metrics.on_fault_drop(isinstance(message, Publication))
            return
        self.brokers[broker_id].receive(message, source)

    def register_control_client(self, client_id: str, callback) -> None:
        """Register an out-of-band client (e.g. CROC) with a message callback."""
        self._control_clients[client_id] = callback

    def unregister_control_client(self, client_id: str) -> None:
        """Drop a control client; late replies to it are discarded."""
        self._control_clients.pop(client_id, None)

    def _deliver_to_client(self, client_id: str, message: Any,
                           arrival: Optional[float] = None) -> None:
        control = self._control_clients.get(client_id)
        if control is not None:
            control(message)
            return
        subscriber = self.subscribers.get(client_id)
        if subscriber is None:
            return  # publisher clients, or client migrated away mid-flight
        if isinstance(message, Publication):
            # Batched deliveries pass their own arrival time (the batch
            # event runs at the *last* arrival); per-destination events
            # run exactly at arrival, so the clock is the same thing.
            now = self.sim.now if arrival is None else arrival
            if self.tracer is not None:
                self.tracer.record(now, "deliver", client_id,
                                   message.adv_id, message.message_id,
                                   detail=f"hops={message.hops}")
            self.metrics.on_delivery(now - message.publish_time, message.hops)
            subscriber.receive(message, now)

    # ------------------------------------------------------------------
    # Deployment execution
    # ------------------------------------------------------------------
    def apply_deployment(self, deployment: Deployment) -> None:
        """Tear down and redeploy per the given layout (paper §VI-A).

        Clients keep their identity (publishers keep their message-ID
        counters), brokers restart from a clean state, and the new
        overlay is wired from the deployment's tree.  Control traffic
        (advertisements, subscriptions) replays through the new overlay;
        run the simulator briefly afterwards to let it quiesce.
        """
        deployment.validate()
        unknown = [
            broker_id
            for broker_id in deployment.tree.brokers
            if broker_id not in self.brokers
        ]
        if unknown:
            raise ValueError(
                f"deployment names brokers not in this network: {sorted(unknown)}"
            )
        self.detach_all_clients()
        for broker in self.brokers.values():
            broker.reset()
        self._links.clear()
        for parent, child in deployment.tree.edges():
            self.connect_brokers(parent, child)
        self._active_brokers = list(deployment.tree.brokers)
        for sub_id, broker_id in deployment.subscription_placement.items():
            client_id = self._subscriber_of_sub.get(sub_id)
            if client_id is None:
                continue
            subscriber = self.subscribers[client_id]
            if subscriber.departed:
                continue
            if subscriber.broker_id is None:
                self.brokers[broker_id].attach_client(client_id)
                subscriber.attached(self, broker_id)
        # Any subscriber not named by the plan (e.g. its subscriptions
        # recorded no traffic) falls back to the root.
        for subscriber in self.subscribers.values():
            if subscriber.departed:
                continue
            if subscriber.broker_id is None:
                root = deployment.tree.root
                self.brokers[root].attach_client(subscriber.client_id)
                subscriber.attached(self, root)
        for publisher in self.publishers.values():
            broker_id = deployment.publisher_placement.get(
                publisher.adv_id, deployment.tree.root
            )
            self.brokers[broker_id].attach_client(publisher.client_id)
            publisher.attached(self, broker_id)
        self.last_deployment = deployment

    def run(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        until = self.sim.now + duration
        if self.obs_sampler is not None:
            self.obs_sampler.run(until)
        else:
            self.sim.run(until=until)
        if self._pending_batches:
            self.flush_deliveries(until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PubSubNetwork(brokers={len(self.brokers)}, "
            f"publishers={len(self.publishers)}, "
            f"subscribers={len(self.subscribers)})"
        )
