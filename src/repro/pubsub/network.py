"""The simulated overlay network tying brokers, clients, and links together.

Owns the simulator, the metrics collector, the broker pool, and the
client population, and implements deployment execution: the paper
re-instantiates every broker and re-connects the original clients to
the new instances; :meth:`PubSubNetwork.apply_deployment` does the
equivalent by resetting brokers to a clean state, rewiring the links of
the new tree, and re-attaching every client at its assigned broker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.bitvector import DEFAULT_CAPACITY
from repro.core.capacity import BrokerSpec
from repro.core.deployment import Deployment
from repro.pubsub.broker import BROKER, Broker, CLIENT, Destination
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.message import Publication
from repro.pubsub.metrics import MetricsCollector
from repro.sim.engine import Simulator

#: One-way link latency inside the data center (seconds).
DEFAULT_LINK_LATENCY = 0.0005


class PubSubNetwork:
    """A complete simulated publish/subscribe deployment."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        link_latency: float = DEFAULT_LINK_LATENCY,
        profile_capacity: int = DEFAULT_CAPACITY,
        enable_covering: bool = False,
    ):
        self.sim = sim if sim is not None else Simulator()
        self.metrics = MetricsCollector(self.sim)
        self.link_latency = link_latency
        self.profile_capacity = profile_capacity
        self.enable_covering = enable_covering
        self.brokers: Dict[str, Broker] = {}
        self.publishers: Dict[str, PublisherClient] = {}
        self.subscribers: Dict[str, SubscriberClient] = {}
        self._subscriber_of_sub: Dict[str, str] = {}
        self._links: set = set()
        self._active_brokers: Optional[List[str]] = None
        self._control_clients: Dict[str, Any] = {}
        #: Optional repro.pubsub.tracing.MessageTracer; brokers and the
        #: network record publication trace events while it is set.
        self.tracer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_broker(self, spec: BrokerSpec) -> Broker:
        if spec.broker_id in self.brokers:
            raise ValueError(f"broker {spec.broker_id!r} already exists")
        broker = Broker(spec, self, self.profile_capacity,
                        covering_enabled=self.enable_covering)
        self.brokers[spec.broker_id] = broker
        return broker

    def connect_brokers(self, first: str, second: str) -> None:
        if first == second:
            raise ValueError("cannot link a broker to itself")
        self.brokers[first].add_neighbor(second)
        self.brokers[second].add_neighbor(first)
        self._links.add(frozenset((first, second)))

    def disconnect_all(self) -> None:
        for broker in self.brokers.values():
            broker.neighbors.clear()
        self._links.clear()

    @property
    def links(self) -> List[Tuple[str, str]]:
        return [tuple(sorted(link)) for link in sorted(self._links, key=sorted)]

    @property
    def active_brokers(self) -> List[str]:
        """Brokers in the current deployment (all, before any deployment)."""
        if self._active_brokers is None:
            return list(self.brokers)
        return list(self._active_brokers)

    def broker_pool(self) -> List[BrokerSpec]:
        return [broker.spec for broker in self.brokers.values()]

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def register_publisher(self, publisher: PublisherClient) -> None:
        """Make the client known without attaching it to a broker yet."""
        self.publishers[publisher.client_id] = publisher

    def register_subscriber(self, subscriber: SubscriberClient) -> None:
        self.subscribers[subscriber.client_id] = subscriber
        for subscription in subscriber.subscriptions:
            self._subscriber_of_sub[subscription.sub_id] = subscriber.client_id

    def attach_publisher(self, publisher: PublisherClient, broker_id: str) -> None:
        if publisher.client_id in self.publishers and publisher.broker_id is not None:
            raise ValueError(f"publisher {publisher.client_id!r} already attached")
        self.register_publisher(publisher)
        self.brokers[broker_id].attach_client(publisher.client_id)
        publisher.attached(self, broker_id)

    def attach_subscriber(self, subscriber: SubscriberClient, broker_id: str) -> None:
        if subscriber.client_id in self.subscribers and subscriber.broker_id is not None:
            raise ValueError(f"subscriber {subscriber.client_id!r} already attached")
        self.register_subscriber(subscriber)
        self.brokers[broker_id].attach_client(subscriber.client_id)
        subscriber.attached(self, broker_id)

    def detach_all_clients(self) -> None:
        for publisher in self.publishers.values():
            if publisher.broker_id is not None:
                self.brokers[publisher.broker_id].detach_client(publisher.client_id)
                publisher.detached()
        for subscriber in self.subscribers.values():
            if subscriber.broker_id is not None:
                self.brokers[subscriber.broker_id].detach_client(subscriber.client_id)
                subscriber.detached()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def client_send(self, client_id: str, broker_id: str, message: Any,
                    size_kb: float) -> None:
        """A client injects a message at its broker (one link latency)."""
        if self.tracer is not None and isinstance(message, Publication):
            self.tracer.record(self.sim.now, "publish", client_id,
                               message.adv_id, message.message_id,
                               detail=f"-> {broker_id}")
        broker = self.brokers[broker_id]
        self.sim.schedule(
            self.link_latency, lambda: broker.receive(message, (CLIENT, client_id))
        )

    def deliver(self, sender_broker: str, destination: Destination, message: Any,
                sent_at: float) -> None:
        """Complete a broker transmission after serialization + latency."""
        arrival = sent_at + self.link_latency
        kind, identifier = destination
        if kind == BROKER:
            target = self.brokers[identifier]
            self.sim.schedule_at(
                arrival, lambda: target.receive(message, (BROKER, sender_broker))
            )
        else:
            self.sim.schedule_at(
                arrival, lambda: self._deliver_to_client(identifier, message)
            )

    def register_control_client(self, client_id: str, callback) -> None:
        """Register an out-of-band client (e.g. CROC) with a message callback."""
        self._control_clients[client_id] = callback

    def _deliver_to_client(self, client_id: str, message: Any) -> None:
        control = self._control_clients.get(client_id)
        if control is not None:
            control(message)
            return
        subscriber = self.subscribers.get(client_id)
        if subscriber is None:
            return  # publisher clients, or client migrated away mid-flight
        if isinstance(message, Publication):
            now = self.sim.now
            if self.tracer is not None:
                self.tracer.record(now, "deliver", client_id,
                                   message.adv_id, message.message_id,
                                   detail=f"hops={message.hops}")
            self.metrics.on_delivery(now - message.publish_time, message.hops)
            subscriber.receive(message, now)

    # ------------------------------------------------------------------
    # Deployment execution
    # ------------------------------------------------------------------
    def apply_deployment(self, deployment: Deployment) -> None:
        """Tear down and redeploy per the given layout (paper §VI-A).

        Clients keep their identity (publishers keep their message-ID
        counters), brokers restart from a clean state, and the new
        overlay is wired from the deployment's tree.  Control traffic
        (advertisements, subscriptions) replays through the new overlay;
        run the simulator briefly afterwards to let it quiesce.
        """
        deployment.validate()
        unknown = [
            broker_id
            for broker_id in deployment.tree.brokers
            if broker_id not in self.brokers
        ]
        if unknown:
            raise ValueError(
                f"deployment names brokers not in this network: {sorted(unknown)}"
            )
        self.detach_all_clients()
        for broker in self.brokers.values():
            broker.reset()
        self._links.clear()
        for parent, child in deployment.tree.edges():
            self.connect_brokers(parent, child)
        self._active_brokers = list(deployment.tree.brokers)
        for sub_id, broker_id in deployment.subscription_placement.items():
            client_id = self._subscriber_of_sub.get(sub_id)
            if client_id is None:
                continue
            subscriber = self.subscribers[client_id]
            if subscriber.departed:
                continue
            if subscriber.broker_id is None:
                self.brokers[broker_id].attach_client(client_id)
                subscriber.attached(self, broker_id)
        # Any subscriber not named by the plan (e.g. its subscriptions
        # recorded no traffic) falls back to the root.
        for subscriber in self.subscribers.values():
            if subscriber.departed:
                continue
            if subscriber.broker_id is None:
                root = deployment.tree.root
                self.brokers[root].attach_client(subscriber.client_id)
                subscriber.attached(self, root)
        for publisher in self.publishers.values():
            broker_id = deployment.publisher_placement.get(
                publisher.adv_id, deployment.tree.root
            )
            self.brokers[broker_id].attach_client(publisher.client_id)
            publisher.attached(self, broker_id)

    def run(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PubSubNetwork(brokers={len(self.brokers)}, "
            f"publishers={len(self.publishers)}, "
            f"subscribers={len(self.subscribers)})"
        )
