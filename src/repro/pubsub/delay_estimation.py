"""Measuring a broker's matching-delay function.

The BIA message carries "a linear function that models the matching
delay as a function of the number of subscriptions" (paper §III-A).  A
real broker does not *know* that function — it measures it: every
processed message yields a sample ``(routing-table size, service
time)``, and an ordinary-least-squares fit over the recent samples
recovers the line's base and per-subscription coefficients.

:class:`DelayModelEstimator` is that machinery.  The simulated brokers
feed it from their processing path, and the CBC reports the fitted
:class:`~repro.core.capacity.MatchingDelayFunction` once enough samples
across enough distinct table sizes have accumulated (falling back to
the configured spec before that).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.capacity import MatchingDelayFunction

#: Samples retained for the sliding-window fit.
DEFAULT_WINDOW = 512

#: Minimum samples — and distinct x values — before a fit is trusted.
MIN_SAMPLES = 16
MIN_DISTINCT_SIZES = 2


class DelayModelEstimator:
    """Sliding-window OLS fit of ``delay = base + k · table_size``."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._samples: Deque[Tuple[int, float]] = deque(maxlen=window)

    def record(self, table_size: int, service_time: float) -> None:
        """Add one observation of a message's matching service time."""
        if service_time < 0:
            raise ValueError(f"service time cannot be negative: {service_time}")
        self._samples.append((table_size, service_time))

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def distinct_sizes(self) -> int:
        return len({size for size, _delay in self._samples})

    def fit(self) -> Optional[MatchingDelayFunction]:
        """Least-squares line through the samples, if determinable.

        Returns ``None`` until there are :data:`MIN_SAMPLES` samples
        spanning at least :data:`MIN_DISTINCT_SIZES` distinct table
        sizes (a vertical cloud cannot identify the slope).  Negative
        fitted coefficients are clamped to zero — measurement noise
        must never produce a delay model that promises speedups from
        *adding* subscriptions.
        """
        if len(self._samples) < MIN_SAMPLES:
            return None
        if self.distinct_sizes() < MIN_DISTINCT_SIZES:
            return None
        n = len(self._samples)
        sum_x = sum(size for size, _d in self._samples)
        sum_y = sum(delay for _s, delay in self._samples)
        sum_xx = sum(size * size for size, _d in self._samples)
        sum_xy = sum(size * delay for size, delay in self._samples)
        denominator = n * sum_xx - sum_x * sum_x
        if denominator == 0:
            return None
        slope = (n * sum_xy - sum_x * sum_y) / denominator
        intercept = (sum_y - slope * sum_x) / n
        return MatchingDelayFunction(
            base=max(0.0, intercept),
            per_subscription=max(0.0, slope),
        )

    def reset(self) -> None:
        self._samples.clear()
