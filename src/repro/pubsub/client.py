"""Publisher and subscriber clients.

Publishers own an advertisement and a feed of attribute dictionaries
(the stock-quote generator in the experiments); they publish at a fixed
rate and keep a monotonically increasing message ID that *survives
reconfigurations* — the profiles' bit vectors are keyed on it.

Subscribers own a set of subscriptions and record delivery statistics.
Both client kinds can detach and re-attach to a different broker, which
is how CROC executes client migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.pubsub.message import (
    Advertisement,
    CONTROL_MESSAGE_KB,
    Publication,
    Subscription,
    Unsubscription,
)

FeedFactory = Callable[[], Iterator[Dict[str, Any]]]


class PublisherClient:
    """A publisher attached to (at most) one broker."""

    def __init__(
        self,
        client_id: str,
        advertisement: Advertisement,
        feed: Iterator[Dict[str, Any]],
        rate: float,
        size_kb: float = 0.5,
    ):
        if rate <= 0:
            raise ValueError(f"publication rate must be positive, got {rate}")
        self.client_id = client_id
        self.advertisement = advertisement
        self._feed = feed
        self.rate = rate
        self.size_kb = size_kb
        self.broker_id: Optional[str] = None
        self.published = 0
        self._next_message_id = 1
        self._network = None
        self._timer = None

    @property
    def adv_id(self) -> str:
        return self.advertisement.adv_id

    # ------------------------------------------------------------------
    # Attachment lifecycle (driven by the network)
    # ------------------------------------------------------------------
    def attached(self, network, broker_id: str) -> None:
        """Called by the network when the client lands on a broker."""
        self._network = network
        self.broker_id = broker_id
        network.client_send(self.client_id, broker_id, self.advertisement,
                            CONTROL_MESSAGE_KB)
        self._schedule_next()

    def detached(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.broker_id = None
        self._network = None

    # ------------------------------------------------------------------
    # Publishing loop
    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self._network is None:
            return
        self._timer = self._network.sim.schedule(1.0 / self.rate, self._publish_one)

    def _publish_one(self) -> None:
        if self._network is None or self.broker_id is None:
            return
        try:
            attributes = next(self._feed)
        except StopIteration:
            self._timer = None
            return
        publication = Publication(
            adv_id=self.adv_id,
            message_id=self._next_message_id,
            attributes=attributes,
            publish_time=self._network.sim.now,
            size_kb=self.size_kb,
        )
        self._next_message_id += 1
        self.published += 1
        self._network.client_send(
            self.client_id, self.broker_id, publication, publication.size_kb
        )
        self._schedule_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PublisherClient({self.client_id!r}, adv={self.adv_id!r})"


@dataclass
class DeliveryRecord:
    """One delivered publication as seen by a subscriber."""

    adv_id: str
    message_id: int
    delay: float
    hops: int


class SubscriberClient:
    """A subscriber holding one or more subscriptions."""

    def __init__(self, client_id: str, subscriptions: List[Subscription],
                 keep_history: bool = False):
        self.client_id = client_id
        self.subscriptions = list(subscriptions)
        self.broker_id: Optional[str] = None
        self.delivered = 0
        #: Set by churn drivers: a departed client is not re-attached by
        #: deployment execution until it explicitly rejoins.
        self.departed = False
        self.keep_history = keep_history
        self.history: List[DeliveryRecord] = []
        self._network = None

    def attached(self, network, broker_id: str) -> None:
        self._network = network
        self.broker_id = broker_id
        self.departed = False
        for subscription in self.subscriptions:
            network.client_send(self.client_id, broker_id, subscription,
                                CONTROL_MESSAGE_KB)

    def detached(self) -> None:
        self.broker_id = None
        self._network = None

    def receive(self, publication: Publication, now: float) -> None:
        """Delivery callback from the network."""
        self.delivered += 1
        if self.keep_history:
            self.history.append(
                DeliveryRecord(
                    adv_id=publication.adv_id,
                    message_id=publication.message_id,
                    delay=now - publication.publish_time,
                    hops=publication.hops,
                )
            )

    def unsubscribe(self, sub_id: str) -> None:
        """Retract one subscription; propagates through the overlay."""
        remaining = []
        removed = None
        for subscription in self.subscriptions:
            if subscription.sub_id == sub_id:
                removed = subscription
            else:
                remaining.append(subscription)
        if removed is None:
            raise KeyError(f"no subscription {sub_id!r} on {self.client_id!r}")
        self.subscriptions = remaining
        if self._network is not None and self.broker_id is not None:
            self._network.client_send(
                self.client_id,
                self.broker_id,
                Unsubscription(sub_id=sub_id, subscriber_id=self.client_id),
                CONTROL_MESSAGE_KB,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubscriberClient({self.client_id!r}, "
            f"subscriptions={len(self.subscriptions)})"
        )


class DualClient:
    """A client that both publishes and subscribes (paper §II-A).

    The paper notes its solution "can also adapt ... to systems where
    clients take on both publisher and subscriber roles by separating
    the network connections between the two entities" — which is
    exactly how this class is built: it owns an independent
    :class:`PublisherClient` and :class:`SubscriberClient`, each with
    its own broker attachment, so CROC can place the publishing half
    (via GRAPE) and the subscribing half (via Phase 2) independently.
    """

    def __init__(
        self,
        client_id: str,
        advertisement: Advertisement,
        feed: Iterator[Dict[str, Any]],
        rate: float,
        subscriptions: List[Subscription],
        size_kb: float = 0.5,
        keep_history: bool = False,
    ):
        self.client_id = client_id
        self.publisher = PublisherClient(
            client_id=f"{client_id}:pub",
            advertisement=advertisement,
            feed=feed,
            rate=rate,
            size_kb=size_kb,
        )
        self.subscriber = SubscriberClient(
            client_id=f"{client_id}:sub",
            subscriptions=subscriptions,
            keep_history=keep_history,
        )

    def attach(self, network, publisher_broker: str,
               subscriber_broker: Optional[str] = None) -> None:
        """Attach both halves (possibly to different brokers)."""
        network.attach_publisher(self.publisher, publisher_broker)
        network.attach_subscriber(
            self.subscriber,
            subscriber_broker if subscriber_broker is not None else publisher_broker,
        )

    def register(self, network) -> None:
        """Make both halves known without attaching (deployment-driven)."""
        network.register_publisher(self.publisher)
        network.register_subscriber(self.subscriber)

    @property
    def delivered(self) -> int:
        return self.subscriber.delivered

    @property
    def published(self) -> int:
        return self.publisher.published

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DualClient({self.client_id!r})"
