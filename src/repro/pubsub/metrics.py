"""Measurement instrumentation for the simulated overlay.

Collects, per measurement window: per-broker message counts (in/out)
and output bytes, end-to-end delivery delays, and publication hop
counts.  The experiment runner resets the window after each
reconfiguration so reported numbers describe steady state only.

Two averages of broker message rate are reported, matching the
discussion in DESIGN.md: ``avg_broker_message_rate`` divides total
broker traffic by the *full broker pool* (deallocated brokers count as
idle — this is the paper's headline green-computing metric), while
``avg_active_broker_message_rate`` divides by the brokers actually
allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BrokerCounters:
    """Per-broker, per-window traffic counters."""

    messages_in: int = 0
    messages_out: int = 0
    bytes_out_kb: float = 0.0
    publications_in: int = 0
    publications_out: int = 0
    deliveries: int = 0

    @property
    def messages_total(self) -> int:
        return self.messages_in + self.messages_out


@dataclass
class MetricsSummary:
    """Steady-state measurements over one window."""

    duration: float
    pool_size: int
    active_brokers: int
    total_broker_messages: int
    delivery_count: int
    mean_delivery_delay: float
    mean_hop_count: float
    max_delivery_delay: float
    avg_broker_message_rate: float
    avg_active_broker_message_rate: float
    mean_utilization: float
    max_utilization: float
    per_broker_rates: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        """Flat dict for the report tables."""
        return {
            "active_brokers": self.active_brokers,
            "avg_broker_message_rate": round(self.avg_broker_message_rate, 4),
            "avg_active_broker_message_rate": round(
                self.avg_active_broker_message_rate, 4
            ),
            "mean_delivery_delay_ms": round(self.mean_delivery_delay * 1000.0, 4),
            "mean_hop_count": round(self.mean_hop_count, 4),
            "deliveries": self.delivery_count,
            "mean_utilization": round(self.mean_utilization, 4),
        }


class MetricsCollector:
    """Counters shared by every broker in one network."""

    def __init__(self, sim):
        self._sim = sim
        self._counters: Dict[str, BrokerCounters] = {}
        self._window_start = 0.0
        self._delay_sum = 0.0
        self._delay_max = 0.0
        self._hop_sum = 0
        self._delivery_count = 0

    # ------------------------------------------------------------------
    # Event hooks (called by brokers)
    # ------------------------------------------------------------------
    def counters(self, broker_id: str) -> BrokerCounters:
        counters = self._counters.get(broker_id)
        if counters is None:
            counters = BrokerCounters()
            self._counters[broker_id] = counters
        return counters

    def on_receive(self, broker_id: str, is_publication: bool) -> None:
        counters = self.counters(broker_id)
        counters.messages_in += 1
        if is_publication:
            counters.publications_in += 1

    def on_send(self, broker_id: str, size_kb: float, is_publication: bool,
                to_client: bool = False) -> None:
        counters = self.counters(broker_id)
        counters.messages_out += 1
        counters.bytes_out_kb += size_kb
        if is_publication:
            counters.publications_out += 1
            if to_client:
                counters.deliveries += 1

    def on_delivery(self, delay: float, hops: int) -> None:
        self._delivery_count += 1
        self._delay_sum += delay
        self._hop_sum += hops
        if delay > self._delay_max:
            self._delay_max = delay

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._counters.clear()
        self._window_start = self._sim.now
        self._delay_sum = 0.0
        self._delay_max = 0.0
        self._hop_sum = 0
        self._delivery_count = 0

    @property
    def window_start(self) -> float:
        return self._window_start

    def summary(
        self,
        pool_size: int,
        active_brokers: List[str],
        bandwidth_by_broker: Optional[Dict[str, float]] = None,
    ) -> MetricsSummary:
        """Summarize the current window."""
        duration = max(self._sim.now - self._window_start, 1e-9)
        total_messages = sum(
            counters.messages_total for counters in self._counters.values()
        )
        per_broker_rates = {
            broker_id: counters.messages_total / duration
            for broker_id, counters in self._counters.items()
        }
        active = [broker for broker in active_brokers if broker in self._counters]
        active_rate = (
            sum(per_broker_rates[broker] for broker in active) / len(active)
            if active
            else 0.0
        )
        utilizations: List[float] = []
        if bandwidth_by_broker:
            for broker_id in active_brokers:
                capacity = bandwidth_by_broker.get(broker_id, 0.0)
                if capacity <= 0:
                    continue
                counters = self._counters.get(broker_id)
                used = counters.bytes_out_kb / duration if counters else 0.0
                utilizations.append(min(1.0, used / capacity))
        return MetricsSummary(
            duration=duration,
            pool_size=pool_size,
            active_brokers=len(active_brokers),
            total_broker_messages=total_messages,
            delivery_count=self._delivery_count,
            mean_delivery_delay=(
                self._delay_sum / self._delivery_count if self._delivery_count else 0.0
            ),
            mean_hop_count=(
                self._hop_sum / self._delivery_count if self._delivery_count else 0.0
            ),
            max_delivery_delay=self._delay_max,
            avg_broker_message_rate=(
                total_messages / duration / pool_size if pool_size else 0.0
            ),
            avg_active_broker_message_rate=active_rate,
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            max_utilization=max(utilizations, default=0.0),
            per_broker_rates=per_broker_rates,
        )
