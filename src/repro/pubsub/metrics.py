"""Measurement instrumentation for the simulated overlay.

Collects, per measurement window: per-broker message counts (in/out)
and output bytes, end-to-end delivery delays, and publication hop
counts.  The experiment runner resets the window after each
reconfiguration so reported numbers describe steady state only.

Two averages of broker message rate are reported, matching the
discussion in DESIGN.md: ``avg_broker_message_rate`` divides total
broker traffic by the *full broker pool* (deallocated brokers count as
idle — this is the paper's headline green-computing metric), while
``avg_active_broker_message_rate`` divides by the brokers actually
allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.energy import WindowUsage


@dataclass
class BrokerCounters:
    """Per-broker, per-window traffic counters."""

    messages_in: int = 0
    messages_out: int = 0
    bytes_out_kb: float = 0.0
    publications_in: int = 0
    publications_out: int = 0
    deliveries: int = 0

    @property
    def messages_total(self) -> int:
        return self.messages_in + self.messages_out


@dataclass
class MetricsSummary:
    """Steady-state measurements over one window.

    The availability block (``messages_lost`` … ``rollbacks``) is fed
    by the fault-injection layer (:mod:`repro.pubsub.faults`) and the
    robust CROC gather; without faults every counter is zero and
    ``delivery_rate`` is 1.0.  Loss counters are per-window; the
    control-plane lifecycle counters (crashes, recoveries, gather
    retries, degraded plans, rollbacks) are cumulative because the
    events they count happen *between* measurement windows.
    """

    duration: float
    pool_size: int
    active_brokers: int
    total_broker_messages: int
    delivery_count: int
    mean_delivery_delay: float
    mean_hop_count: float
    max_delivery_delay: float
    avg_broker_message_rate: float
    avg_active_broker_message_rate: float
    mean_utilization: float
    max_utilization: float
    per_broker_rates: Dict[str, float] = field(default_factory=dict)
    messages_lost: int = 0
    publications_lost: int = 0
    broker_crashes: int = 0
    broker_recoveries: int = 0
    gather_retries: int = 0
    degraded_plans: int = 0
    rollbacks: int = 0
    #: Online-reallocation disruption (cumulative, like the other
    #: control-plane counters): subscriptions moved between brokers and
    #: the summed virtual seconds their owners spent detached.
    subscriptions_migrated: int = 0
    migration_gap_s: float = 0.0
    #: Per-broker detail backing the energy model (``energy_usage``):
    #: the allocated broker ids in deployment order, their per-window
    #: output kB / bandwidth utilization, and virtual seconds each
    #: spent crashed *within this window* (clamped at the window edge,
    #: so a broker down across a reset is charged in both windows).
    active_broker_ids: Tuple[str, ...] = ()
    per_broker_bytes_out_kb: Dict[str, float] = field(default_factory=dict)
    per_broker_utilization: Dict[str, float] = field(default_factory=dict)
    per_broker_downtime_s: Dict[str, float] = field(default_factory=dict)

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of publication traffic, vs fault drops.

        ``delivered / (delivered + publications_lost)`` — a lower-bound
        proxy for availability: a publication dropped in transit may
        have fanned out to several subscribers, but each dropped copy
        counts once.  1.0 when nothing was lost.
        """
        total = self.delivery_count + self.publications_lost
        if total <= 0:
            return 1.0
        return self.delivery_count / total

    def as_row(self) -> Dict[str, float]:
        """Flat dict for the report tables."""
        return {
            "active_brokers": self.active_brokers,
            "avg_broker_message_rate": round(self.avg_broker_message_rate, 4),
            "avg_active_broker_message_rate": round(
                self.avg_active_broker_message_rate, 4
            ),
            "mean_delivery_delay_ms": round(self.mean_delivery_delay * 1000.0, 4),
            "mean_hop_count": round(self.mean_hop_count, 4),
            "deliveries": self.delivery_count,
            "mean_utilization": round(self.mean_utilization, 4),
            "delivery_rate": round(self.delivery_rate, 4),
        }

    def fault_row(self) -> Dict[str, float]:
        """The availability counters as a flat dict (fault benches)."""
        return {
            "delivery_rate": round(self.delivery_rate, 4),
            "publications_lost": self.publications_lost,
            "messages_lost": self.messages_lost,
            "broker_crashes": self.broker_crashes,
            "broker_recoveries": self.broker_recoveries,
            "gather_retries": self.gather_retries,
            "degraded_plans": self.degraded_plans,
            "rollbacks": self.rollbacks,
            "broker_downtime_s": round(
                sum(self.per_broker_downtime_s.values()), 4
            ),
        }

    def migration_row(self) -> Dict[str, float]:
        """The online-reallocation disruption counters as a flat dict."""
        return {
            "subscriptions_migrated": self.subscriptions_migrated,
            "migration_gap_s": round(self.migration_gap_s, 4),
            "delivery_rate": round(self.delivery_rate, 4),
        }

    def energy_usage(self) -> WindowUsage:
        """This window's counters projected for the energy model.

        A pure copy of already-measured numbers — building it never
        touches the simulator, so energy accounting stays bit-identical
        on every non-energy output.  Per-broker message counts are
        reconstructed as ``rate * duration`` (the summary stores
        rates); the round trip is deterministic.
        """
        return WindowUsage(
            duration_s=self.duration,
            pool_size=self.pool_size,
            active_brokers=self.active_broker_ids,
            messages={
                broker_id: rate * self.duration
                for broker_id, rate in self.per_broker_rates.items()
            },
            bytes_out_kb=dict(self.per_broker_bytes_out_kb),
            utilization=dict(self.per_broker_utilization),
            downtime_s=dict(self.per_broker_downtime_s),
            deliveries=self.delivery_count,
            mean_delay_s=self.mean_delivery_delay,
            delivery_rate=self.delivery_rate,
            migration_gap_s=self.migration_gap_s,
        )


class MetricsCollector:
    """Counters shared by every broker in one network."""

    def __init__(self, sim):
        self._sim = sim
        self._counters: Dict[str, BrokerCounters] = {}
        self._window_start = 0.0
        self._delay_sum = 0.0
        self._delay_max = 0.0
        self._hop_sum = 0
        self._delivery_count = 0
        # Per-window fault losses.
        self._messages_lost = 0
        self._publications_lost = 0
        # Cumulative control-plane lifecycle counters (reconfiguration
        # happens between windows, so these survive reset_window).
        self._broker_crashes = 0
        self._broker_recoveries = 0
        # Per-window crash downtime: completed intervals accumulate in
        # _downtime_s; _down_since holds the open interval per crashed
        # broker, re-pinned to the window start on reset so a broker
        # down across windows is charged in each.
        self._down_since: Dict[str, float] = {}
        self._downtime_s: Dict[str, float] = {}
        self._gather_retries = 0
        self._degraded_plans = 0
        self._rollbacks = 0
        self._subscriptions_migrated = 0
        self._migration_gap_s = 0.0

    # ------------------------------------------------------------------
    # Event hooks (called by brokers)
    # ------------------------------------------------------------------
    def counters(self, broker_id: str) -> BrokerCounters:
        counters = self._counters.get(broker_id)
        if counters is None:
            counters = BrokerCounters()
            self._counters[broker_id] = counters
        return counters

    def on_receive(self, broker_id: str, is_publication: bool) -> None:
        counters = self.counters(broker_id)
        counters.messages_in += 1
        if is_publication:
            counters.publications_in += 1

    def on_send(self, broker_id: str, size_kb: float, is_publication: bool,
                to_client: bool = False) -> None:
        counters = self.counters(broker_id)
        counters.messages_out += 1
        counters.bytes_out_kb += size_kb
        if is_publication:
            counters.publications_out += 1
            if to_client:
                counters.deliveries += 1

    def on_delivery(self, delay: float, hops: int) -> None:
        self._delivery_count += 1
        self._delay_sum += delay
        self._hop_sum += hops
        if delay > self._delay_max:
            self._delay_max = delay

    # ------------------------------------------------------------------
    # Fault / availability hooks (fault injector and robust gather)
    # ------------------------------------------------------------------
    def on_fault_drop(self, is_publication: bool) -> None:
        """A message was dropped by the fault layer (crash, link, loss)."""
        self._messages_lost += 1
        if is_publication:
            self._publications_lost += 1

    def on_broker_crash(self, broker_id: Optional[str] = None) -> None:
        """A broker crashed now; start its open downtime interval.

        ``self._sim.now`` may legitimately be 0.0 (a crash at t=0), so
        the open interval is tracked by key presence in
        ``_down_since`` — never by truthiness of the timestamp.
        """
        self._broker_crashes += 1
        if broker_id is not None and broker_id not in self._down_since:
            self._down_since[broker_id] = self._sim.now

    def on_broker_recovery(self, broker_id: Optional[str] = None) -> None:
        self._broker_recoveries += 1
        if broker_id is not None and broker_id in self._down_since:
            since = self._down_since.pop(broker_id)
            interval = self._sim.now - max(since, self._window_start)
            if interval > 0.0:
                self._downtime_s[broker_id] = (
                    self._downtime_s.get(broker_id, 0.0) + interval
                )

    def on_gather_retry(self) -> None:
        """A CROC gather attempt timed out and is being retried."""
        self._gather_retries += 1

    def on_degraded_plan(self) -> None:
        """CROC planned from a partial gather (silent/cached brokers)."""
        self._degraded_plans += 1

    def on_rollback(self) -> None:
        """A reconfiguration was aborted or rolled back mid-apply."""
        self._rollbacks += 1

    def on_migration(self, subscriptions: int, gap_seconds: float) -> None:
        """An online step migrated ``subscriptions`` between brokers.

        ``gap_seconds`` is the summed virtual time the affected
        subscribers spent detached (their delivery gap).  Cumulative,
        like the other control-plane lifecycle counters — migrations
        happen between measurement windows.
        """
        self._subscriptions_migrated += subscriptions
        self._migration_gap_s += gap_seconds

    # ------------------------------------------------------------------
    # Read-only views (observability; see :mod:`repro.obs.collect`)
    # ------------------------------------------------------------------
    def messages_total(self, broker_id: str) -> int:
        """In+out messages for ``broker_id`` this window (0 if unseen).

        Unlike :meth:`counters` this never creates an entry, so timeline
        sampling cannot perturb the per-broker table the summary is
        built from.
        """
        counters = self._counters.get(broker_id)
        return counters.messages_total if counters is not None else 0

    def bytes_out_total(self, broker_id: str) -> float:
        """Output kB for ``broker_id`` this window (0.0 if unseen).

        Same never-creates-an-entry contract as :meth:`messages_total`,
        so the online scheduler's load sampling cannot perturb the
        per-broker table the summary is built from.
        """
        counters = self._counters.get(broker_id)
        return counters.bytes_out_kb if counters is not None else 0.0

    @property
    def delivery_count(self) -> int:
        return self._delivery_count

    @property
    def messages_lost(self) -> int:
        return self._messages_lost

    @property
    def publications_lost(self) -> int:
        return self._publications_lost

    @property
    def broker_crashes(self) -> int:
        return self._broker_crashes

    @property
    def broker_recoveries(self) -> int:
        return self._broker_recoveries

    @property
    def gather_retries(self) -> int:
        return self._gather_retries

    @property
    def degraded_plans(self) -> int:
        return self._degraded_plans

    @property
    def rollbacks(self) -> int:
        return self._rollbacks

    @property
    def subscriptions_migrated(self) -> int:
        return self._subscriptions_migrated

    @property
    def migration_gap_s(self) -> float:
        return self._migration_gap_s

    @property
    def broker_downtime_s(self) -> float:
        """Summed per-window crash downtime (completed + open intervals)."""
        total = sum(self._downtime_s.values())
        for since in self._down_since.values():
            open_interval = self._sim.now - max(since, self._window_start)
            if open_interval > 0.0:
                total += open_interval
        return total

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._counters.clear()
        self._window_start = self._sim.now
        self._delay_sum = 0.0
        self._delay_max = 0.0
        self._hop_sum = 0
        self._delivery_count = 0
        self._messages_lost = 0
        self._publications_lost = 0
        # Downtime is per-window: drop completed intervals and re-pin
        # still-down brokers to the new window start, so their open
        # interval is charged within this window only.  (Clearing
        # _down_since here instead would be the t=0-crash bug: a broker
        # that crashed before the first reset would report zero
        # downtime forever.)
        self._downtime_s.clear()
        for broker_id in sorted(self._down_since):
            self._down_since[broker_id] = self._window_start

    @property
    def window_start(self) -> float:
        return self._window_start

    def summary(
        self,
        pool_size: int,
        active_brokers: List[str],
        bandwidth_by_broker: Optional[Dict[str, float]] = None,
    ) -> MetricsSummary:
        """Summarize the current window."""
        duration = max(self._sim.now - self._window_start, 1e-9)
        total_messages = sum(
            counters.messages_total for counters in self._counters.values()
        )
        per_broker_rates = {
            broker_id: counters.messages_total / duration
            for broker_id, counters in self._counters.items()
        }
        active = [broker for broker in active_brokers if broker in self._counters]
        active_rate = (
            sum(per_broker_rates[broker] for broker in active) / len(active)
            if active
            else 0.0
        )
        utilizations: List[float] = []
        per_broker_utilization: Dict[str, float] = {}
        if bandwidth_by_broker:
            for broker_id in active_brokers:
                capacity = bandwidth_by_broker.get(broker_id, 0.0)
                if capacity <= 0:
                    continue
                counters = self._counters.get(broker_id)
                used = counters.bytes_out_kb / duration if counters else 0.0
                utilization = min(1.0, used / capacity)
                utilizations.append(utilization)
                per_broker_utilization[broker_id] = utilization
        per_broker_bytes = {
            broker_id: counters.bytes_out_kb
            for broker_id, counters in self._counters.items()
        }
        # Per-window downtime: completed intervals plus the open one of
        # each still-down broker, clamped to this window.
        per_broker_downtime = dict(self._downtime_s)
        for broker_id, since in self._down_since.items():
            open_interval = self._sim.now - max(since, self._window_start)
            if open_interval > 0.0:
                per_broker_downtime[broker_id] = (
                    per_broker_downtime.get(broker_id, 0.0) + open_interval
                )
        return MetricsSummary(
            duration=duration,
            pool_size=pool_size,
            active_brokers=len(active_brokers),
            total_broker_messages=total_messages,
            delivery_count=self._delivery_count,
            mean_delivery_delay=(
                self._delay_sum / self._delivery_count if self._delivery_count else 0.0
            ),
            mean_hop_count=(
                self._hop_sum / self._delivery_count if self._delivery_count else 0.0
            ),
            max_delivery_delay=self._delay_max,
            avg_broker_message_rate=(
                total_messages / duration / pool_size if pool_size else 0.0
            ),
            avg_active_broker_message_rate=active_rate,
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            max_utilization=max(utilizations, default=0.0),
            per_broker_rates=per_broker_rates,
            messages_lost=self._messages_lost,
            publications_lost=self._publications_lost,
            broker_crashes=self._broker_crashes,
            broker_recoveries=self._broker_recoveries,
            gather_retries=self._gather_retries,
            degraded_plans=self._degraded_plans,
            rollbacks=self._rollbacks,
            subscriptions_migrated=self._subscriptions_migrated,
            migration_gap_s=self._migration_gap_s,
            active_broker_ids=tuple(active_brokers),
            per_broker_bytes_out_kb=per_broker_bytes,
            per_broker_utilization=per_broker_utilization,
            per_broker_downtime_s=per_broker_downtime,
        )
