"""Measurement instrumentation for the simulated overlay.

Collects, per measurement window: per-broker message counts (in/out)
and output bytes, end-to-end delivery delays, and publication hop
counts.  The experiment runner resets the window after each
reconfiguration so reported numbers describe steady state only.

Two averages of broker message rate are reported, matching the
discussion in DESIGN.md: ``avg_broker_message_rate`` divides total
broker traffic by the *full broker pool* (deallocated brokers count as
idle — this is the paper's headline green-computing metric), while
``avg_active_broker_message_rate`` divides by the brokers actually
allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BrokerCounters:
    """Per-broker, per-window traffic counters."""

    messages_in: int = 0
    messages_out: int = 0
    bytes_out_kb: float = 0.0
    publications_in: int = 0
    publications_out: int = 0
    deliveries: int = 0

    @property
    def messages_total(self) -> int:
        return self.messages_in + self.messages_out


@dataclass
class MetricsSummary:
    """Steady-state measurements over one window.

    The availability block (``messages_lost`` … ``rollbacks``) is fed
    by the fault-injection layer (:mod:`repro.pubsub.faults`) and the
    robust CROC gather; without faults every counter is zero and
    ``delivery_rate`` is 1.0.  Loss counters are per-window; the
    control-plane lifecycle counters (crashes, recoveries, gather
    retries, degraded plans, rollbacks) are cumulative because the
    events they count happen *between* measurement windows.
    """

    duration: float
    pool_size: int
    active_brokers: int
    total_broker_messages: int
    delivery_count: int
    mean_delivery_delay: float
    mean_hop_count: float
    max_delivery_delay: float
    avg_broker_message_rate: float
    avg_active_broker_message_rate: float
    mean_utilization: float
    max_utilization: float
    per_broker_rates: Dict[str, float] = field(default_factory=dict)
    messages_lost: int = 0
    publications_lost: int = 0
    broker_crashes: int = 0
    broker_recoveries: int = 0
    gather_retries: int = 0
    degraded_plans: int = 0
    rollbacks: int = 0
    #: Online-reallocation disruption (cumulative, like the other
    #: control-plane counters): subscriptions moved between brokers and
    #: the summed virtual seconds their owners spent detached.
    subscriptions_migrated: int = 0
    migration_gap_s: float = 0.0

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of publication traffic, vs fault drops.

        ``delivered / (delivered + publications_lost)`` — a lower-bound
        proxy for availability: a publication dropped in transit may
        have fanned out to several subscribers, but each dropped copy
        counts once.  1.0 when nothing was lost.
        """
        total = self.delivery_count + self.publications_lost
        if total <= 0:
            return 1.0
        return self.delivery_count / total

    def as_row(self) -> Dict[str, float]:
        """Flat dict for the report tables."""
        return {
            "active_brokers": self.active_brokers,
            "avg_broker_message_rate": round(self.avg_broker_message_rate, 4),
            "avg_active_broker_message_rate": round(
                self.avg_active_broker_message_rate, 4
            ),
            "mean_delivery_delay_ms": round(self.mean_delivery_delay * 1000.0, 4),
            "mean_hop_count": round(self.mean_hop_count, 4),
            "deliveries": self.delivery_count,
            "mean_utilization": round(self.mean_utilization, 4),
            "delivery_rate": round(self.delivery_rate, 4),
        }

    def fault_row(self) -> Dict[str, float]:
        """The availability counters as a flat dict (fault benches)."""
        return {
            "delivery_rate": round(self.delivery_rate, 4),
            "publications_lost": self.publications_lost,
            "messages_lost": self.messages_lost,
            "broker_crashes": self.broker_crashes,
            "broker_recoveries": self.broker_recoveries,
            "gather_retries": self.gather_retries,
            "degraded_plans": self.degraded_plans,
            "rollbacks": self.rollbacks,
        }

    def migration_row(self) -> Dict[str, float]:
        """The online-reallocation disruption counters as a flat dict."""
        return {
            "subscriptions_migrated": self.subscriptions_migrated,
            "migration_gap_s": round(self.migration_gap_s, 4),
            "delivery_rate": round(self.delivery_rate, 4),
        }


class MetricsCollector:
    """Counters shared by every broker in one network."""

    def __init__(self, sim):
        self._sim = sim
        self._counters: Dict[str, BrokerCounters] = {}
        self._window_start = 0.0
        self._delay_sum = 0.0
        self._delay_max = 0.0
        self._hop_sum = 0
        self._delivery_count = 0
        # Per-window fault losses.
        self._messages_lost = 0
        self._publications_lost = 0
        # Cumulative control-plane lifecycle counters (reconfiguration
        # happens between windows, so these survive reset_window).
        self._broker_crashes = 0
        self._broker_recoveries = 0
        self._gather_retries = 0
        self._degraded_plans = 0
        self._rollbacks = 0
        self._subscriptions_migrated = 0
        self._migration_gap_s = 0.0

    # ------------------------------------------------------------------
    # Event hooks (called by brokers)
    # ------------------------------------------------------------------
    def counters(self, broker_id: str) -> BrokerCounters:
        counters = self._counters.get(broker_id)
        if counters is None:
            counters = BrokerCounters()
            self._counters[broker_id] = counters
        return counters

    def on_receive(self, broker_id: str, is_publication: bool) -> None:
        counters = self.counters(broker_id)
        counters.messages_in += 1
        if is_publication:
            counters.publications_in += 1

    def on_send(self, broker_id: str, size_kb: float, is_publication: bool,
                to_client: bool = False) -> None:
        counters = self.counters(broker_id)
        counters.messages_out += 1
        counters.bytes_out_kb += size_kb
        if is_publication:
            counters.publications_out += 1
            if to_client:
                counters.deliveries += 1

    def on_delivery(self, delay: float, hops: int) -> None:
        self._delivery_count += 1
        self._delay_sum += delay
        self._hop_sum += hops
        if delay > self._delay_max:
            self._delay_max = delay

    # ------------------------------------------------------------------
    # Fault / availability hooks (fault injector and robust gather)
    # ------------------------------------------------------------------
    def on_fault_drop(self, is_publication: bool) -> None:
        """A message was dropped by the fault layer (crash, link, loss)."""
        self._messages_lost += 1
        if is_publication:
            self._publications_lost += 1

    def on_broker_crash(self) -> None:
        self._broker_crashes += 1

    def on_broker_recovery(self) -> None:
        self._broker_recoveries += 1

    def on_gather_retry(self) -> None:
        """A CROC gather attempt timed out and is being retried."""
        self._gather_retries += 1

    def on_degraded_plan(self) -> None:
        """CROC planned from a partial gather (silent/cached brokers)."""
        self._degraded_plans += 1

    def on_rollback(self) -> None:
        """A reconfiguration was aborted or rolled back mid-apply."""
        self._rollbacks += 1

    def on_migration(self, subscriptions: int, gap_seconds: float) -> None:
        """An online step migrated ``subscriptions`` between brokers.

        ``gap_seconds`` is the summed virtual time the affected
        subscribers spent detached (their delivery gap).  Cumulative,
        like the other control-plane lifecycle counters — migrations
        happen between measurement windows.
        """
        self._subscriptions_migrated += subscriptions
        self._migration_gap_s += gap_seconds

    # ------------------------------------------------------------------
    # Read-only views (observability; see :mod:`repro.obs.collect`)
    # ------------------------------------------------------------------
    def messages_total(self, broker_id: str) -> int:
        """In+out messages for ``broker_id`` this window (0 if unseen).

        Unlike :meth:`counters` this never creates an entry, so timeline
        sampling cannot perturb the per-broker table the summary is
        built from.
        """
        counters = self._counters.get(broker_id)
        return counters.messages_total if counters is not None else 0

    def bytes_out_total(self, broker_id: str) -> float:
        """Output kB for ``broker_id`` this window (0.0 if unseen).

        Same never-creates-an-entry contract as :meth:`messages_total`,
        so the online scheduler's load sampling cannot perturb the
        per-broker table the summary is built from.
        """
        counters = self._counters.get(broker_id)
        return counters.bytes_out_kb if counters is not None else 0.0

    @property
    def delivery_count(self) -> int:
        return self._delivery_count

    @property
    def messages_lost(self) -> int:
        return self._messages_lost

    @property
    def publications_lost(self) -> int:
        return self._publications_lost

    @property
    def broker_crashes(self) -> int:
        return self._broker_crashes

    @property
    def broker_recoveries(self) -> int:
        return self._broker_recoveries

    @property
    def gather_retries(self) -> int:
        return self._gather_retries

    @property
    def degraded_plans(self) -> int:
        return self._degraded_plans

    @property
    def rollbacks(self) -> int:
        return self._rollbacks

    @property
    def subscriptions_migrated(self) -> int:
        return self._subscriptions_migrated

    @property
    def migration_gap_s(self) -> float:
        return self._migration_gap_s

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._counters.clear()
        self._window_start = self._sim.now
        self._delay_sum = 0.0
        self._delay_max = 0.0
        self._hop_sum = 0
        self._delivery_count = 0
        self._messages_lost = 0
        self._publications_lost = 0

    @property
    def window_start(self) -> float:
        return self._window_start

    def summary(
        self,
        pool_size: int,
        active_brokers: List[str],
        bandwidth_by_broker: Optional[Dict[str, float]] = None,
    ) -> MetricsSummary:
        """Summarize the current window."""
        duration = max(self._sim.now - self._window_start, 1e-9)
        total_messages = sum(
            counters.messages_total for counters in self._counters.values()
        )
        per_broker_rates = {
            broker_id: counters.messages_total / duration
            for broker_id, counters in self._counters.items()
        }
        active = [broker for broker in active_brokers if broker in self._counters]
        active_rate = (
            sum(per_broker_rates[broker] for broker in active) / len(active)
            if active
            else 0.0
        )
        utilizations: List[float] = []
        if bandwidth_by_broker:
            for broker_id in active_brokers:
                capacity = bandwidth_by_broker.get(broker_id, 0.0)
                if capacity <= 0:
                    continue
                counters = self._counters.get(broker_id)
                used = counters.bytes_out_kb / duration if counters else 0.0
                utilizations.append(min(1.0, used / capacity))
        return MetricsSummary(
            duration=duration,
            pool_size=pool_size,
            active_brokers=len(active_brokers),
            total_broker_messages=total_messages,
            delivery_count=self._delivery_count,
            mean_delivery_delay=(
                self._delay_sum / self._delivery_count if self._delivery_count else 0.0
            ),
            mean_hop_count=(
                self._hop_sum / self._delivery_count if self._delivery_count else 0.0
            ),
            max_delivery_delay=self._delay_max,
            avg_broker_message_rate=(
                total_messages / duration / pool_size if pool_size else 0.0
            ),
            avg_active_broker_message_rate=active_rate,
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            max_utilization=max(utilizations, default=0.0),
            per_broker_rates=per_broker_rates,
            messages_lost=self._messages_lost,
            publications_lost=self._publications_lost,
            broker_crashes=self._broker_crashes,
            broker_recoveries=self._broker_recoveries,
            gather_retries=self._gather_retries,
            degraded_plans=self._degraded_plans,
            rollbacks=self._rollbacks,
            subscriptions_migrated=self._subscriptions_migrated,
            migration_gap_s=self._migration_gap_s,
        )
