"""Publication tracing: follow individual messages through the overlay.

Debugging a content-routing overlay usually starts with "where did
publication #118 of YHOO actually go?".  A :class:`MessageTracer`
attached to a network records a structured event for every hop of the
publications it is scoped to — publish, broker receive, forward,
delivery — cheap enough to leave compiled in (brokers skip the hooks
entirely when no tracer is attached).

Example::

    tracer = MessageTracer(adv_ids={"adv-YHOO"})
    network.tracer = tracer
    network.run(5.0)
    print(tracer.render_route("adv-YHOO", 3))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

#: Event kinds in causal order of a publication's life.
PUBLISH = "publish"
RECEIVE = "receive"
FORWARD = "forward"
DELIVER = "deliver"


@dataclass(frozen=True)
class TraceEvent:
    """One step of one publication's journey."""

    time: float
    kind: str  # publish | receive | forward | deliver
    where: str  # broker id (or client id for publish)
    adv_id: str
    message_id: int
    detail: str = ""

    def __str__(self) -> str:
        suffix = f"  {self.detail}" if self.detail else ""
        return (
            f"t={self.time:10.6f}  {self.kind:8s}  {self.where:12s}  "
            f"{self.adv_id}#{self.message_id}{suffix}"
        )


class MessageTracer:
    """Scoped, bounded recorder of publication trace events.

    Parameters
    ----------
    adv_ids:
        Only publications from these advertisements are traced
        (``None`` traces everything).
    message_ids:
        Optional additional filter on message IDs.
    limit:
        Hard cap on stored events (oldest kept); tracing never grows
        without bound.
    """

    def __init__(
        self,
        adv_ids: Optional[Iterable[str]] = None,
        message_ids: Optional[Iterable[int]] = None,
        limit: int = 100_000,
    ):
        self.adv_ids: Optional[Set[str]] = set(adv_ids) if adv_ids else None
        self.message_ids: Optional[Set[int]] = (
            set(message_ids) if message_ids else None
        )
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording (called from the broker/network hot path)
    # ------------------------------------------------------------------
    def wants(self, adv_id: str, message_id: int) -> bool:
        if self.adv_ids is not None and adv_id not in self.adv_ids:
            return False
        if self.message_ids is not None and message_id not in self.message_ids:
            return False
        return True

    def record(self, time: float, kind: str, where: str, adv_id: str,
               message_id: int, detail: str = "") -> None:
        if not self.wants(adv_id, message_id):
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(time, kind, where, adv_id, message_id, detail)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def route(self, adv_id: str, message_id: int) -> List[TraceEvent]:
        """All events of one publication, in time order."""
        return sorted(
            (
                event
                for event in self.events
                if event.adv_id == adv_id and event.message_id == message_id
            ),
            key=lambda event: (event.time, _KIND_ORDER.get(event.kind, 9)),
        )

    def brokers_visited(self, adv_id: str, message_id: int) -> List[str]:
        """Distinct brokers that processed the publication, in order."""
        visited: List[str] = []
        for event in self.route(adv_id, message_id):
            if event.kind == RECEIVE and event.where not in visited:
                visited.append(event.where)
        return visited

    def delivery_count(self, adv_id: str, message_id: int) -> int:
        return sum(
            1
            for event in self.events
            if event.kind == DELIVER
            and event.adv_id == adv_id
            and event.message_id == message_id
        )

    def render_route(self, adv_id: str, message_id: int) -> str:
        """Human-readable journey of one publication."""
        events = self.route(adv_id, message_id)
        if not events:
            return f"(no trace for {adv_id}#{message_id})"
        return "\n".join(str(event) for event in events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


_KIND_ORDER = {PUBLISH: 0, RECEIVE: 1, FORWARD: 2, DELIVER: 3}
