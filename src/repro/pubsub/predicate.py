"""Attribute predicates — the content-based subscription language.

A predicate constrains one attribute, e.g. ``[symbol,=,'YHOO']`` or
``[low,<,25.0]``.  Subscriptions and advertisements are conjunctions of
predicates (see :mod:`repro.pubsub.message`).

Note that the *resource allocation framework never looks at this
language* — it clusters purely on bit vectors.  The language exists so
the simulated brokers can route real publications, which is also what
generates the bit vectors in the first place.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple, Union

Value = Union[str, float, int, bool]


class Operator(enum.Enum):
    """Comparison operators supported by the language."""

    EQ = "="
    NEQ = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PREFIX = "str-prefix"
    SUFFIX = "str-suffix"
    CONTAINS = "str-contains"
    PRESENT = "isPresent"

    @classmethod
    def parse(cls, token: str) -> "Operator":
        for op in cls:
            if op.value == token:
                return op
        aliases = {"=": cls.EQ, "==": cls.EQ, "eq": cls.EQ, "!=": cls.NEQ, "neq": cls.NEQ}
        if token in aliases:
            return aliases[token]
        raise ValueError(f"unknown operator {token!r}")


_NUMERIC_OPS = {Operator.LT, Operator.LE, Operator.GT, Operator.GE}
_STRING_OPS = {Operator.PREFIX, Operator.SUFFIX, Operator.CONTAINS}


@dataclass(frozen=True)
class Predicate:
    """One ``[attribute, operator, value]`` triple."""

    attribute: str
    operator: Operator
    value: Value = True

    def __post_init__(self) -> None:
        if self.operator in _NUMERIC_OPS and isinstance(self.value, str):
            raise ValueError(
                f"operator {self.operator.value} requires a numeric value, "
                f"got {self.value!r}"
            )

    # ------------------------------------------------------------------
    # Evaluation against a concrete attribute value
    # ------------------------------------------------------------------
    def matches(self, value: Any) -> bool:
        """Whether a publication's attribute value satisfies this predicate."""
        op = self.operator
        if op is Operator.PRESENT:
            return True
        if op is Operator.EQ:
            return value == self.value
        if op is Operator.NEQ:
            return value != self.value
        if op in _NUMERIC_OPS:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return False
            if op is Operator.LT:
                return value < self.value
            if op is Operator.LE:
                return value <= self.value
            if op is Operator.GT:
                return value > self.value
            return value >= self.value
        if not isinstance(value, str) or not isinstance(self.value, str):
            return False
        if op is Operator.PREFIX:
            return value.startswith(self.value)
        if op is Operator.SUFFIX:
            return value.endswith(self.value)
        return self.value in value  # CONTAINS

    # ------------------------------------------------------------------
    # Interval view (for satisfiability tests)
    # ------------------------------------------------------------------
    def interval(self) -> Optional[Tuple[float, float, bool, bool]]:
        """(low, high, low_inclusive, high_inclusive) for numeric constraints."""
        op = self.operator
        if op is Operator.EQ and isinstance(self.value, (int, float)) and not isinstance(self.value, bool):
            v = float(self.value)
            return (v, v, True, True)
        if op is Operator.LT:
            return (-math.inf, float(self.value), False, False)
        if op is Operator.LE:
            return (-math.inf, float(self.value), False, True)
        if op is Operator.GT:
            return (float(self.value), math.inf, False, False)
        if op is Operator.GE:
            return (float(self.value), math.inf, True, False)
        return None

    def __str__(self) -> str:
        return f"[{self.attribute},{self.operator.value},{self.value!r}]"


def intersects(first: Predicate, second: Predicate) -> bool:
    """Whether two predicates on the same attribute can both hold.

    Exact for numeric interval constraints and equality; conservative
    (returns ``True``) for string-operator combinations that cannot be
    decided cheaply, which is safe for routing — a false positive only
    forwards a subscription one hop too far, never loses a message.
    """
    if first.attribute != second.attribute:
        raise ValueError("predicates constrain different attributes")
    if first.operator is Operator.PRESENT or second.operator is Operator.PRESENT:
        return True
    # Equality against anything: evaluate directly.
    if first.operator is Operator.EQ:
        return second.matches(first.value)
    if second.operator is Operator.EQ:
        return first.matches(second.value)
    a, b = first.interval(), second.interval()
    if a is not None and b is not None:
        low = max(a[0], b[0])
        high = min(a[1], b[1])
        if low < high:
            return True
        if low > high:
            return False
        # Touching endpoints: both sides must include the point.
        low_inc = a[2] if a[0] >= b[0] else b[2]
        high_inc = a[3] if a[1] <= b[1] else b[3]
        return low_inc and high_inc
    # NEQ against intervals/strings, or string-op pairs: almost always
    # jointly satisfiable; stay conservative.
    return True


def covers(general: Predicate, specific: Predicate) -> bool:
    """Whether every value matching ``specific`` also matches ``general``.

    Conservative (returns ``False``) when undecidable.  Used only by
    tests and diagnostics — routing and allocation never rely on
    language-level covering, per the paper's design.
    """
    if general.attribute != specific.attribute:
        return False
    if general.operator is Operator.PRESENT:
        return True
    if specific.operator is Operator.EQ:
        return general.matches(specific.value)
    a, b = general.interval(), specific.interval()
    if a is not None and b is not None:
        low_ok = a[0] < b[0] or (a[0] == b[0] and (a[2] or not b[2]))
        high_ok = a[1] > b[1] or (a[1] == b[1] and (a[3] or not b[3]))
        return low_ok and high_ok
    if general.operator is specific.operator and general.value == specific.value:
        return True
    if (
        general.operator is Operator.CONTAINS
        and specific.operator in (Operator.PREFIX, Operator.SUFFIX, Operator.CONTAINS)
        and isinstance(general.value, str)
        and isinstance(specific.value, str)
    ):
        return general.value in specific.value
    return False


def parse_predicates(triples: Iterable[Tuple[str, str, Value]]) -> Tuple[Predicate, ...]:
    """Build predicates from ``(attribute, operator_token, value)`` triples.

    Convenience mirroring the paper's ``[class,=,'STOCK']`` notation:

    >>> preds = parse_predicates([("class", "=", "STOCK"), ("low", "<", 20.0)])
    >>> [str(p) for p in preds]
    ["[class,=,'STOCK']", '[low,<,20.0]']
    """
    return tuple(
        Predicate(attribute, Operator.parse(op), value) for attribute, op, value in triples
    )
