"""Execution of fault plans on a live simulated network.

The :class:`FaultInjector` owns the runtime fault state of one
:class:`~repro.pubsub.network.PubSubNetwork`: which brokers are
currently down, which links are cut, and the seeded per-transmission
loss/jitter stream.  The network consults it on every message hop; the
injector never touches messages itself, so with an empty
:class:`~repro.sim.faults.FaultPlan` the data path is bit-identical to
an uninstrumented network.

Fault semantics
---------------
* **Crash** — the broker process dies: its routing state (SRT, known
  subscriptions, pending BIR aggregations, CBC profiles) is wiped, and
  every message addressed to it, queued inside it, or injected by its
  local clients is dropped and counted.  Physical wiring and client
  attachments survive — they belong to the data center, not the
  process.
* **Recover** — the broker returns as a *blank* process: reachable
  again, but with no routing state until the next reconfiguration
  replays control traffic through it.
* **Link down/up** — all broker-to-broker traffic over the link is
  dropped while it is cut.
* **Loss / jitter** — every transmission independently risks a seeded
  drop and receives a seeded extra latency, modelling a congested or
  lossy fabric.

All drops are reported to the network's
:class:`~repro.pubsub.metrics.MetricsCollector`, where they feed the
availability counters (``publications_lost``, ``delivery_rate``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Set

from repro.sim.faults import CRASH, LINK_DOWN, LINK_UP, RECOVER, FaultEvent, FaultPlan
from repro.sim.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pubsub.network import PubSubNetwork


class FaultInjector:
    """Schedules a :class:`FaultPlan` on a network's virtual clock."""

    def __init__(self, network: "PubSubNetwork", plan: FaultPlan, seed: int = 0):
        self._network = network
        self.plan = plan
        self._transit_rng = SeededRng(seed, "faults", "transit")
        self.down_brokers: Set[str] = set()
        self.down_links: Set[FrozenSet[str]] = set()
        self.schedule: List[FaultEvent] = []
        self.crashes = 0
        self.recoveries = 0
        self.drops = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Materialize the plan and schedule every event.

        Called once by :meth:`PubSubNetwork.install_faults`.  Unknown
        broker targets are rejected immediately — a typo in a fault
        plan should fail loudly, not silently inject nothing.
        """
        self.schedule = self.plan.schedule_for(sorted(self._network.brokers))
        sim = self._network.sim
        for event in self.schedule:
            unknown = [b for b in event.target if b not in self._network.brokers]
            if unknown:
                raise ValueError(
                    f"fault plan targets unknown broker(s) {unknown} "
                    f"(event {event.kind} at t={event.time})"
                )
            sim.schedule_at(event.time, lambda e=event: self._apply(e))

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == CRASH:
            self.crash_now(event.target[0])
        elif event.kind == RECOVER:
            self.recover_now(event.target[0])
        elif event.kind == LINK_DOWN:
            self.down_links.add(frozenset(event.target))
        elif event.kind == LINK_UP:
            self.down_links.discard(frozenset(event.target))

    # ------------------------------------------------------------------
    # Direct injection (used by the scheduler and by interactive drivers)
    # ------------------------------------------------------------------
    def crash_now(self, broker_id: str) -> None:
        """Kill a broker process immediately.  Idempotent while down."""
        if broker_id in self.down_brokers:
            return
        broker = self._network.brokers[broker_id]
        # The process dies with all its state; the physical wiring and
        # the clients pointing at this node survive the crash.
        neighbors = set(broker.neighbors)
        clients = set(broker.local_clients)
        broker.reset()
        broker.neighbors.update(neighbors)
        broker.local_clients.update(clients)
        self.down_brokers.add(broker_id)
        self.crashes += 1
        self._network.metrics.on_broker_crash(broker_id)

    def recover_now(self, broker_id: str) -> None:
        """Bring a crashed broker back as a blank process."""
        if broker_id not in self.down_brokers:
            return
        self.down_brokers.discard(broker_id)
        self.recoveries += 1
        self._network.metrics.on_broker_recovery(broker_id)

    # ------------------------------------------------------------------
    # Per-hop queries (called by the network on every transmission)
    # ------------------------------------------------------------------
    def broker_down(self, broker_id: str) -> bool:
        return broker_id in self.down_brokers

    def link_down(self, first: str, second: str) -> bool:
        return bool(self.down_links) and frozenset((first, second)) in self.down_links

    def drop_in_transit(self) -> bool:
        """Seeded loss draw; never touches the RNG when loss is off."""
        if self.plan.loss_rate <= 0.0:
            return False
        dropped = self._transit_rng.random() < self.plan.loss_rate
        if dropped:
            self.drops += 1
        return dropped

    def extra_latency(self) -> float:
        """Seeded jitter draw; never touches the RNG when jitter is off."""
        if self.plan.jitter <= 0.0:
            return 0.0
        return self._transit_rng.uniform(0.0, self.plan.jitter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(down={sorted(self.down_brokers)}, "
            f"links_down={len(self.down_links)}, crashes={self.crashes})"
        )
