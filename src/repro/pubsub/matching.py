"""Content-based matching: publications vs subscriptions vs advertisements."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.pubsub.message import Advertisement, Publication, Subscription
from repro.pubsub.predicate import Operator, Predicate, covers as predicate_covers, intersects

#: Destination kinds for SRT payloads.  Defined here (the bottom of the
#: pub/sub layer) and re-exported by :mod:`repro.pubsub.broker` so the
#: routing table can partition destinations without importing the
#: broker module back.
CLIENT = "client"
BROKER = "broker"

Destination = Tuple[str, str]  # (CLIENT|BROKER, identifier)


def matches(subscription: Subscription, publication: Publication) -> bool:
    """Whether a publication satisfies every predicate of a subscription.

    An attribute missing from the publication fails the predicate — the
    standard conjunctive content-based semantics.
    """
    attributes = publication.attributes
    for predicate in subscription.predicates:
        if predicate.attribute not in attributes:
            return False
        if not predicate.matches(attributes[predicate.attribute]):
            return False
    return True


_MISSING = object()


def _residual_matches(residual: Tuple[Predicate, ...],
                      attributes: Dict[str, Any]) -> bool:
    """Evaluate a bucket entry's non-indexed predicates.

    The bucket hit already proved the indexed equality, so this is
    :func:`matches` restricted to the leftover predicates, taking the
    publication's attribute dict directly.
    """
    for predicate in residual:
        value = attributes.get(predicate.attribute, _MISSING)
        if value is _MISSING:
            return False
        # EQ is the overwhelmingly common residual (the workload's
        # 'class' pin); dispatching it here skips a method call.
        if predicate.operator is Operator.EQ:
            if value != predicate.value:
                return False
        elif not predicate.matches(value):
            return False
    return True


def overlaps(subscription: Subscription, advertisement: Advertisement) -> bool:
    """Whether the advertisement's space can produce matching events.

    Every subscription predicate must name an advertised attribute and
    be jointly satisfiable with all advertisement predicates on it.
    Used to decide which last-hops a subscription is routed toward.
    """
    advertised: Dict[str, List[Predicate]] = defaultdict(list)
    for predicate in advertisement.predicates:
        advertised[predicate.attribute].append(predicate)
    for predicate in subscription.predicates:
        constraints = advertised.get(predicate.attribute)
        if constraints is None:
            return False
        for constraint in constraints:
            if not intersects(predicate, constraint):
                return False
    return True


def subscription_covers(general: Subscription, specific: Subscription) -> bool:
    """Language-level covering: every event matching ``specific`` matches
    ``general``.  Conservative.  The allocation framework deliberately
    does *not* use this — it exists for tests and diagnostics.
    """
    specific_by_attr: Dict[str, List[Predicate]] = defaultdict(list)
    for predicate in specific.predicates:
        specific_by_attr[predicate.attribute].append(predicate)
    for predicate in general.predicates:
        candidates = specific_by_attr.get(predicate.attribute)
        if not candidates:
            return False
        if not any(predicate_covers(predicate, candidate) for candidate in candidates):
            return False
    return True


class MatchingIndex:
    """An index of subscriptions keyed by their equality predicates.

    Matching a publication against all subscriptions at a broker is the
    dominant cost of the simulation, so subscriptions carrying an
    equality predicate (the common case — every stock subscription pins
    ``symbol``) are bucketed by their most selective ``(attribute,
    value)`` pair; the rest live in a linear-scan fallback list.

    Entries carry an opaque payload (the routing destination).

    Two auxiliary structures keep the hot paths cheap:

    * ``_by_sub`` maps each subscription id to its entry keys, so
      :meth:`remove_subscription` touches only that subscription's
      buckets instead of scanning every entry (churn workloads would
      otherwise go quadratic).
    * a *probe cache* maps a publication's attribute-name tuple to the
      subset of names that have any bucket at all.  Publications from
      one publisher present the same name tuple on every hop, so the
      repeat (publisher, broker) case reuses one precomputed probe
      list per routing-table epoch instead of hashing every
      ``(attribute, value)`` pair per message.

    Bucket entries additionally carry the subscription's *residual*
    predicates — everything except the indexed equality, which the
    bucket hit already proves satisfied — so the per-candidate check
    evaluates only what the index could not.
    """

    def __init__(self):
        self._buckets: Dict[
            Tuple[str, Hashable], List[Tuple[Subscription, Any, Tuple[Predicate, ...]]]
        ] = {}
        self._fallback: List[Tuple[Subscription, Any]] = []
        self._keys: Dict[Tuple[str, Any], Optional[Tuple[str, Hashable]]] = {}
        self._by_sub: Dict[str, List[Tuple[str, Any]]] = {}
        #: attribute -> number of bucketed entries pinning it.
        self._bucket_attrs: Dict[str, int] = {}
        #: publication attribute-name tuple -> names worth probing.
        self._probe_cache: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
        #: Probe-cache hit/miss tallies (read by :mod:`repro.obs`).
        self.probe_cache_hits = 0
        self.probe_cache_misses = 0
        self._size = 0

    @staticmethod
    def _index_key(subscription: Subscription) -> Optional[Tuple[str, Hashable]]:
        best: Optional[Tuple[str, Hashable]] = None
        for predicate in subscription.predicates:
            if predicate.operator is Operator.EQ and isinstance(
                predicate.value, Hashable
            ):
                key = (predicate.attribute, predicate.value)
                # Prefer non-'class' attributes: 'class' is shared by the
                # whole workload, so 'symbol' etc. is far more selective.
                if best is None or best[0] == "class":
                    best = key
        return best

    def __len__(self) -> int:
        return self._size

    def add(self, subscription: Subscription, payload: Any) -> None:
        key = self._index_key(subscription)
        entry_key = (subscription.sub_id, payload)
        if entry_key in self._keys:
            return
        self._keys[entry_key] = key
        self._by_sub.setdefault(subscription.sub_id, []).append(entry_key)
        if key is None:
            self._fallback.append((subscription, payload))
        else:
            residual = tuple(
                predicate
                for predicate in subscription.predicates
                if (predicate.attribute, predicate.value) != key
                or predicate.operator is not Operator.EQ
            )
            self._buckets.setdefault(key, []).append((subscription, payload, residual))
            attribute = key[0]
            count = self._bucket_attrs.get(attribute, 0)
            self._bucket_attrs[attribute] = count + 1
            if count == 0:
                self._probe_cache.clear()
        self._size += 1

    def remove_subscription(self, sub_id: str) -> None:
        """Drop every entry of the given subscription.

        O(entries-of-sub) via the ``sub_id -> entry keys`` side index
        (plus the length of each touched bucket), not O(all entries).
        """
        for entry_key in self._by_sub.pop(sub_id, ()):
            key = self._keys.pop(entry_key)
            if key is None:
                self._fallback = [
                    (sub, payload)
                    for sub, payload in self._fallback
                    if sub.sub_id != sub_id
                ]
            elif key in self._buckets:
                self._buckets[key] = [
                    entry for entry in self._buckets[key]
                    if entry[0].sub_id != sub_id
                ]
                if not self._buckets[key]:
                    del self._buckets[key]
                attribute = key[0]
                remaining = self._bucket_attrs[attribute] - 1
                if remaining:
                    self._bucket_attrs[attribute] = remaining
                else:
                    del self._bucket_attrs[attribute]
                    self._probe_cache.clear()
            self._size -= 1

    def _bucket_probes(self, publication: Publication) -> Tuple[str, ...]:
        """The publication's attributes that can hit a bucket, in order.

        Attributes without any bucketed subscription (``price``,
        ``volume``, …) can never produce a bucket hit, so probing them
        is pure dict-lookup waste; the surviving names are cached per
        attribute-name tuple, which is constant per publisher feed.
        """
        names = tuple(publication.attributes)
        probes = self._probe_cache.get(names)
        if probes is None:
            self.probe_cache_misses += 1
            bucket_attrs = self._bucket_attrs
            probes = tuple(name for name in names if name in bucket_attrs)
            self._probe_cache[names] = probes
        else:
            self.probe_cache_hits += 1
        return probes

    def matching_payloads(self, publication: Publication) -> List[Any]:
        """Distinct payloads of subscriptions matching the publication."""
        found: List[Any] = []
        seen: Set[Any] = set()
        attributes = publication.attributes
        for attribute in self._bucket_probes(publication):
            bucket = self._buckets.get((attribute, attributes[attribute]))
            if not bucket:
                continue
            for subscription, payload, residual in bucket:
                if payload not in seen and _residual_matches(residual, attributes):
                    seen.add(payload)
                    found.append(payload)
        for subscription, payload in self._fallback:
            if payload not in seen and matches(subscription, publication):
                seen.add(payload)
                found.append(payload)
        return found

    def matching_entries(
        self, publication: Publication
    ) -> List[Tuple[Subscription, Any]]:
        """All (subscription, payload) pairs matching the publication.

        Unlike :meth:`matching_payloads` this does not de-duplicate:
        local delivery needs every matched subscription individually
        (each is a separate delivery and a separate profile update).
        """
        found: List[Tuple[Subscription, Any]] = []
        seen_subs: Set[str] = set()
        attributes = publication.attributes
        for attribute in self._bucket_probes(publication):
            bucket = self._buckets.get((attribute, attributes[attribute]))
            if not bucket:
                continue
            for subscription, payload, residual in bucket:
                if subscription.sub_id not in seen_subs and _residual_matches(
                    residual, attributes
                ):
                    seen_subs.add(subscription.sub_id)
                    found.append((subscription, payload))
        for subscription, payload in self._fallback:
            if subscription.sub_id not in seen_subs and matches(
                subscription, publication
            ):
                seen_subs.add(subscription.sub_id)
                found.append((subscription, payload))
        return found

    def matching_routes(
        self, publication: Publication, exclude: Optional[Destination] = None
    ) -> Tuple[List[Tuple[Subscription, Destination]], Set[str]]:
        """Partition :meth:`matching_entries` into delivery routes.

        Only meaningful when payloads are ``(kind, identifier)``
        destination tuples (the broker's SRT).  Returns ``(clients,
        brokers)``: the per-subscription client deliveries in match
        order (each is a separate delivery and profile update) and the
        de-duplicated set of next-hop broker ids.  ``exclude`` drops
        the destination the publication arrived from, so a publication
        never bounces back out of the link it came in on.
        """
        clients: List[Tuple[Subscription, Destination]] = []
        brokers: Set[str] = set()
        for subscription, destination in self.matching_entries(publication):
            if destination == exclude:
                continue
            if destination[0] == CLIENT:
                clients.append((subscription, destination))
            else:
                brokers.add(destination[1])
        return clients, brokers

    def entries(self) -> Iterable[Tuple[Subscription, Any]]:
        for bucket in self._buckets.values():
            for subscription, payload, _residual in bucket:
                yield subscription, payload
        yield from self._fallback
