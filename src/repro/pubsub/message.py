"""Message types flowing through the broker overlay.

Publications carry a per-publisher message ID and the publisher's
advertisement ID (paper §III-B: "Each publisher appends a message ID,
which is just an integer counter, as well as its globally unique
advertisement ID into its publication messages"), which is exactly what
lets CBCs maintain bit-vector profiles without understanding the
payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from repro.pubsub.predicate import Predicate

#: Nominal size of control-plane messages in kB (subs, advs, BIR/BIA).
CONTROL_MESSAGE_KB = 0.1


@dataclass(frozen=True)
class Advertisement:
    """A publisher's declaration of the publication space it will use."""

    adv_id: str
    publisher_id: str
    predicates: Tuple[Predicate, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Adv({self.adv_id}: {','.join(map(str, self.predicates))})"


@dataclass(frozen=True)
class Subscription:
    """A conjunction of predicates owned by one subscriber."""

    sub_id: str
    subscriber_id: str
    predicates: Tuple[Predicate, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sub({self.sub_id}: {','.join(map(str, self.predicates))})"


@dataclass(frozen=True)
class Unsubscription:
    """Retract a previously issued subscription."""

    sub_id: str
    subscriber_id: str


@dataclass(frozen=True)
class Publication:
    """One event, stamped with its publisher's identity and counter.

    ``hops`` counts broker-to-broker transfers; it is incremented by
    the overlay as the (immutable) publication is re-wrapped for each
    forward, so concurrent in-flight copies never share mutable state.
    """

    adv_id: str
    message_id: int
    attributes: Dict[str, Any]
    publish_time: float
    size_kb: float
    hops: int = 0

    def hopped(self) -> "Publication":
        """A copy with one more broker hop recorded."""
        return replace(self, hops=self.hops + 1)


# ----------------------------------------------------------------------
# Control plane: CROC's information gathering protocol (paper §III-A)
# ----------------------------------------------------------------------

_bir_ids = itertools.count()


@dataclass(frozen=True)
class BrokerInformationRequest:
    """BIR — flooded through the overlay by CROC."""

    request_id: int = field(default_factory=lambda: next(_bir_ids))


@dataclass
class BrokerInformationAnswer:
    """BIA — one broker's report, possibly aggregating its subtree.

    ``reports`` maps broker_id → :class:`BrokerReport`; brokers merge
    the BIAs received from the neighbors they forwarded the BIR to into
    their own before answering, which reduces protocol overhead (paper
    §III-A).
    """

    request_id: int
    reports: Dict[str, "BrokerReport"]


@dataclass
class BrokerReport:
    """What one broker tells CROC about itself (the BIA payload).

    Mirrors the paper's BIA contents: URL, matching delay function,
    total output bandwidth, local subscriptions with profiles, local
    publishers with profiles.  The concrete types live in
    :mod:`repro.core`; this dataclass just carries them.
    """

    broker_id: str
    url: str
    spec: Any  # repro.core.capacity.BrokerSpec
    subscriptions: list  # list[repro.core.units.SubscriptionRecord]
    publishers: list  # list[repro.core.profiles.PublisherProfile]
    #: The broker's *measured* matching-delay function (OLS fit over its
    #: recent processing samples); None until enough samples accumulate.
    measured_delay: Any = None
