"""Message types flowing through the broker overlay.

Publications carry a per-publisher message ID and the publisher's
advertisement ID (paper §III-B: "Each publisher appends a message ID,
which is just an integer counter, as well as its globally unique
advertisement ID into its publication messages"), which is exactly what
lets CBCs maintain bit-vector profiles without understanding the
payload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Tuple

from repro.core.protocol import (  # noqa: F401 — historical public path
    CONTROL_MESSAGE_KB,
    BrokerInformationAnswer,
    BrokerInformationRequest,
    BrokerReport,
)
from repro.pubsub.predicate import Predicate

__all__ = [
    "Advertisement",
    "BrokerInformationAnswer",
    "BrokerInformationRequest",
    "BrokerReport",
    "CONTROL_MESSAGE_KB",
    "Publication",
    "Subscription",
    "Unsubscription",
]


@dataclass(frozen=True)
class Advertisement:
    """A publisher's declaration of the publication space it will use."""

    adv_id: str
    publisher_id: str
    predicates: Tuple[Predicate, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Adv({self.adv_id}: {','.join(map(str, self.predicates))})"


@dataclass(frozen=True)
class Subscription:
    """A conjunction of predicates owned by one subscriber."""

    sub_id: str
    subscriber_id: str
    predicates: Tuple[Predicate, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sub({self.sub_id}: {','.join(map(str, self.predicates))})"


@dataclass(frozen=True)
class Unsubscription:
    """Retract a previously issued subscription."""

    sub_id: str
    subscriber_id: str


@dataclass(frozen=True)
class Publication:
    """One event, stamped with its publisher's identity and counter.

    ``hops`` counts broker-to-broker transfers; it is incremented by
    the overlay as the (immutable) publication is re-wrapped for each
    forward, so concurrent in-flight copies never share mutable state.
    """

    adv_id: str
    message_id: int
    attributes: Dict[str, Any]
    publish_time: float
    size_kb: float
    hops: int = 0

    def hopped(self) -> "Publication":
        """A copy with one more broker hop recorded."""
        return replace(self, hops=self.hops + 1)


# The control-plane types (BrokerInformationRequest/Answer, BrokerReport,
# CONTROL_MESSAGE_KB) moved to repro.core.protocol so the CROC
# coordinator in core/ does not import upward into pubsub/; they remain
# importable from this module (see the re-export block above).
