"""The content-based broker: routing, matching delay, bandwidth limiter.

Routing follows the filter-based scheme of PADRES/SIENA:

* **Advertisements** flood the overlay; each broker remembers the
  neighbor an advertisement arrived from (its *last hop*).
* **Subscriptions** are routed hop-by-hop along the reverse paths of
  every overlapping advertisement, leaving `(subscription, source)`
  entries in the Subscription Routing Table (SRT) as they travel.
  Arrival order is immaterial: a broker re-forwards known
  subscriptions when a new overlapping advertisement shows up.
* **Publications** are matched at every broker against the SRT and
  forwarded to each distinct matching destination (neighbor broker or
  local client), never back toward the sender.

Two resource models shape the virtual-time behaviour, mirroring the
quantities CROC reasons about:

* a single-server queue whose service time is the broker's *matching
  delay function* (linear in the SRT size), and
* an output-bandwidth limiter: outgoing messages serialize at
  ``size / total_output_bandwidth`` seconds each — the knob the paper
  throttles to create its heterogeneous scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.capacity import BrokerSpec
from repro.pubsub.cbc import CrocBackendComponent
from repro.pubsub.delay_estimation import DelayModelEstimator
from repro.pubsub.matching import (
    BROKER,
    CLIENT,
    Destination,
    MatchingIndex,
    overlaps,
    subscription_covers,
)
from repro.pubsub.message import (
    Advertisement,
    BrokerInformationAnswer,
    BrokerInformationRequest,
    BrokerReport,
    CONTROL_MESSAGE_KB,
    Publication,
    Subscription,
    Unsubscription,
)

# CLIENT / BROKER / Destination live in repro.pubsub.matching (the SRT
# partitions destinations by kind) and are re-exported here, where the
# rest of the codebase has always imported them from.
__all__ = ["BROKER", "CLIENT", "Broker", "Destination"]


@dataclass
class _PendingBir:
    """Aggregation state for one in-flight BIR (paper §III-A).

    ``timer`` is the aggregation deadline event: if a downstream
    subtree never answers (crashed broker, cut link), the broker
    answers with whatever reports it has rather than stalling CROC's
    gather forever.
    """

    requester: Destination
    pending: Set[str]
    reports: Dict[str, BrokerReport]
    timer: Optional[Any] = None


class Broker:
    """One broker process in the simulated overlay."""

    def __init__(self, spec: BrokerSpec, network, profile_capacity: int,
                 covering_enabled: bool = False):
        self.spec = spec
        self.broker_id = spec.broker_id
        self._network = network
        self._sim = network.sim
        self._metrics = network.metrics
        self.cbc = CrocBackendComponent(spec.broker_id, profile_capacity)
        self.covering_enabled = covering_enabled
        self.neighbors: Set[str] = set()
        self.local_clients: Set[str] = set()
        self._advertisements: Dict[str, Tuple[Advertisement, Destination]] = {}
        self._srt = MatchingIndex()
        self._known_subscriptions: Dict[str, Tuple[Subscription, Destination]] = {}
        self._forwarded_subs: Set[Tuple[str, str]] = set()  # (sub_id, neighbor)
        #: neighbor -> {suppressed sub_id -> covering sub_id} (covering only)
        self._suppressed: Dict[str, Dict[str, str]] = {}
        self.delay_estimator = DelayModelEstimator()
        self._cpu_free_at = 0.0
        self._out_free_at = 0.0
        self._ctl_free_at = 0.0
        self._pending_bir: Dict[int, _PendingBir] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_neighbor(self, broker_id: str) -> None:
        self.neighbors.add(broker_id)

    def remove_neighbor(self, broker_id: str) -> None:
        self.neighbors.discard(broker_id)

    def attach_client(self, client_id: str) -> None:
        self.local_clients.add(client_id)

    def detach_client(self, client_id: str) -> None:
        self.local_clients.discard(client_id)

    def reset(self) -> None:
        """Return to a clean state, as the paper re-instantiates brokers."""
        self.neighbors.clear()
        self.local_clients.clear()
        self._advertisements.clear()
        # Carry the probe-cache tallies across the rebuild: they are
        # observability counters for the broker's whole lifetime, not
        # matching state.
        fresh = MatchingIndex()
        fresh.probe_cache_hits = self._srt.probe_cache_hits
        fresh.probe_cache_misses = self._srt.probe_cache_misses
        self._srt = fresh
        self._known_subscriptions.clear()
        self._forwarded_subs.clear()
        self._suppressed.clear()
        self._pending_bir.clear()
        self._cpu_free_at = 0.0
        self._out_free_at = 0.0
        self._ctl_free_at = 0.0
        self.delay_estimator.reset()
        self.cbc.reset()

    @property
    def srt_size(self) -> int:
        return len(self._srt)

    @property
    def probe_cache_hits(self) -> int:
        """Matching probe-cache hits (read by :mod:`repro.obs`)."""
        return self._srt.probe_cache_hits

    @property
    def probe_cache_misses(self) -> int:
        """Matching probe-cache misses (read by :mod:`repro.obs`)."""
        return self._srt.probe_cache_misses

    # ------------------------------------------------------------------
    # Receive path: queue behind the matching CPU
    # ------------------------------------------------------------------
    def receive(self, message: Any, source: Destination) -> None:
        """Accept a message from a neighbor or local client."""
        tracer = self._network.tracer
        if tracer is not None and isinstance(message, Publication):
            tracer.record(self._sim.now, "receive", self.broker_id,
                          message.adv_id, message.message_id,
                          detail=f"from {source[1]}")
        self._metrics.on_receive(self.broker_id, isinstance(message, Publication))
        service = self.spec.delay_function.delay(len(self._srt))
        self.delay_estimator.record(len(self._srt), service)
        start = max(self._sim.now, self._cpu_free_at)
        done = start + service
        self._cpu_free_at = done
        self._sim.schedule_at(done, lambda: self._process(message, source))

    def _process(self, message: Any, source: Destination) -> None:
        if self._network.broker_is_down(self.broker_id):
            # The process died while this message sat in the CPU queue.
            self._metrics.on_fault_drop(isinstance(message, Publication))
            return
        if isinstance(message, Publication):
            self._handle_publication(message, source)
        elif isinstance(message, Subscription):
            self._handle_subscription(message, source)
        elif isinstance(message, Advertisement):
            self._handle_advertisement(message, source)
        elif isinstance(message, Unsubscription):
            self._handle_unsubscription(message)
        elif isinstance(message, BrokerInformationRequest):
            self._handle_bir(message, source)
        elif isinstance(message, BrokerInformationAnswer):
            self._handle_bia(message, source)
        else:  # pragma: no cover - defensive
            raise TypeError(f"broker cannot process {type(message).__name__}")

    # ------------------------------------------------------------------
    # Transmit path: queue behind the output link
    # ------------------------------------------------------------------
    def _transmit(self, destination: Destination, message: Any, size_kb: float) -> None:
        """Serialize onto the output link and hand off to the network.

        Publications share one FIFO output queue (the bandwidth
        limiter); control messages (subscriptions, advertisements,
        BIR/BIA, unsubscriptions) use a prioritized side lane with its
        own budget, so a saturated data plane cannot starve the
        reconfiguration protocol — the standard control/data separation
        of production brokers.
        """
        is_publication = isinstance(message, Publication)
        if is_publication:
            sent = self._serialize_publication(size_kb)
        else:
            bandwidth = self.spec.total_output_bandwidth
            serialization = size_kb / bandwidth if bandwidth > 0 else 0.0
            start = max(self._sim.now, self._ctl_free_at)
            sent = start + serialization
            self._ctl_free_at = sent
        self._metrics.on_send(
            self.broker_id, size_kb, is_publication, to_client=destination[0] == CLIENT
        )
        self._network.deliver(self.broker_id, destination, message, sent)

    def _serialize_publication(self, size_kb: float) -> float:
        """Advance the publication output lane by one message.

        Returns the virtual time serialization completes — the same
        FIFO bandwidth-limiter arithmetic whether the delivery is then
        scheduled per destination or drained by one batched fan-out
        event.
        """
        bandwidth = self.spec.total_output_bandwidth
        serialization = size_kb / bandwidth if bandwidth > 0 else 0.0
        start = max(self._sim.now, self._out_free_at)
        sent = start + serialization
        self._out_free_at = sent
        return sent

    # ------------------------------------------------------------------
    # Publications
    # ------------------------------------------------------------------
    def _handle_publication(self, publication: Publication, source: Destination) -> None:
        if source[0] == CLIENT:
            self.cbc.on_local_publication(publication, self._sim.now)
        clients, forwarded_brokers = self._srt.matching_routes(publication, source)
        if clients:
            local = self.local_clients
            size_kb = publication.size_kb
            if self._network.delivery_batching:
                # Fault-free fan-out: run the same per-subscriber lane
                # arithmetic and send accounting, then hand the whole
                # fan-out to the network as one batched delivery event
                # instead of one event per subscriber.
                sends = []
                on_send = self._metrics.on_send
                cbc_on_delivery = self.cbc.on_delivery
                broker_id = self.broker_id
                # The publication lane arithmetic of
                # _serialize_publication, hoisted: now and the per-copy
                # serialization time are loop constants.
                bandwidth = self.spec.total_output_bandwidth
                serialization = size_kb / bandwidth if bandwidth > 0 else 0.0
                now = self._sim.now
                free_at = self._out_free_at
                for subscription, destination in clients:
                    if destination[1] not in local:
                        continue
                    cbc_on_delivery(subscription.sub_id, publication)
                    start = free_at if free_at > now else now
                    free_at = start + serialization
                    on_send(broker_id, size_kb, True, to_client=True)
                    sends.append((free_at, destination[1]))
                if sends:
                    self._out_free_at = free_at
                    self._network.deliver_fanout(broker_id, publication, sends)
            else:
                for subscription, destination in clients:
                    if destination[1] in local:
                        self.cbc.on_delivery(subscription.sub_id, publication)
                        self._transmit(destination, publication, size_kb)
        tracer = self._network.tracer
        for broker_id in sorted(forwarded_brokers):
            if tracer is not None:
                tracer.record(self._sim.now, "forward", self.broker_id,
                              publication.adv_id, publication.message_id,
                              detail=f"-> {broker_id}")
            self._transmit((BROKER, broker_id), publication.hopped(), publication.size_kb)

    # ------------------------------------------------------------------
    # Advertisements
    # ------------------------------------------------------------------
    def _handle_advertisement(self, advertisement: Advertisement, source: Destination) -> None:
        if advertisement.adv_id in self._advertisements:
            return  # flood dedupe
        self._advertisements[advertisement.adv_id] = (advertisement, source)
        for neighbor in sorted(self.neighbors):
            if source != (BROKER, neighbor):
                self._transmit((BROKER, neighbor), advertisement, CONTROL_MESSAGE_KB)
        # Late advertisement: pull already-known overlapping subscriptions
        # toward it so arrival order does not matter.
        if source[0] == BROKER:
            last_hop = source[1]
            for sub_id, (subscription, sub_source) in self._known_subscriptions.items():
                if sub_source == (BROKER, last_hop):
                    continue
                if overlaps(subscription, advertisement):
                    self._forward_subscription(subscription, last_hop)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def _handle_subscription(self, subscription: Subscription, source: Destination) -> None:
        key = subscription.sub_id
        if key in self._known_subscriptions:
            return
        self._known_subscriptions[key] = (subscription, source)
        self._srt.add(subscription, source)
        if source[0] == CLIENT:
            self.cbc.register_subscription(subscription)
        for adv, adv_source in self._advertisements.values():
            if adv_source[0] != BROKER:
                continue  # advertiser is local: publications start here
            last_hop = adv_source[1]
            if source == (BROKER, last_hop):
                continue
            if overlaps(subscription, adv):
                self._forward_subscription(subscription, last_hop)

    def _forward_subscription(self, subscription: Subscription, neighbor: str) -> None:
        """Send a subscription one hop toward an advertisement, once.

        With covering enabled (SIENA/PADRES-style), the subscription is
        *suppressed* if a previously forwarded subscription already
        covers it on that link: the upstream broker will route every
        matching publication this way regardless, so the narrower
        filter adds no information.  Suppressions are remembered so a
        retraction of the coverer re-issues them (see
        :meth:`_handle_unsubscription`).
        """
        key = subscription.sub_id
        if (key, neighbor) in self._forwarded_subs:
            return
        if self.covering_enabled:
            suppressed_here = self._suppressed.setdefault(neighbor, {})
            if key in suppressed_here:
                return
            for forwarded_id, forwarded_neighbor in self._forwarded_subs:
                if forwarded_neighbor != neighbor:
                    continue
                coverer, _src = self._known_subscriptions.get(
                    forwarded_id, (None, None)
                )
                if coverer is not None and subscription_covers(coverer, subscription):
                    suppressed_here[key] = forwarded_id
                    return
        self._forwarded_subs.add((key, neighbor))
        self._transmit((BROKER, neighbor), subscription, CONTROL_MESSAGE_KB)

    def _handle_unsubscription(self, unsubscription: Unsubscription) -> None:
        """Retract a subscription and propagate along its routed paths.

        The unsubscription follows exactly the neighbors the original
        subscription was forwarded to, so routing state is cleaned up
        along the whole path and nowhere else.
        """
        sub_id = unsubscription.sub_id
        if sub_id not in self._known_subscriptions:
            return
        self._srt.remove_subscription(sub_id)
        self._known_subscriptions.pop(sub_id, None)
        self.cbc.unregister_subscription(sub_id)
        forwarded_to = [
            neighbor
            for (known_id, neighbor) in self._forwarded_subs
            if known_id == sub_id
        ]
        self._forwarded_subs = {
            (known_id, neighbor)
            for (known_id, neighbor) in self._forwarded_subs
            if known_id != sub_id
        }
        for suppressed_here in self._suppressed.values():
            suppressed_here.pop(sub_id, None)
        for neighbor in sorted(forwarded_to):
            self._transmit((BROKER, neighbor), unsubscription, CONTROL_MESSAGE_KB)
        if self.covering_enabled:
            self._release_suppressed(sub_id, forwarded_to)

    def _release_suppressed(self, retracted_id: str, neighbors) -> None:
        """Re-issue subscriptions whose coverer was just retracted."""
        for neighbor in neighbors:
            suppressed_here = self._suppressed.get(neighbor, {})
            orphans = [
                sub_id
                for sub_id, coverer_id in suppressed_here.items()
                if coverer_id == retracted_id
            ]
            for sub_id in orphans:
                del suppressed_here[sub_id]
                entry = self._known_subscriptions.get(sub_id)
                if entry is None:
                    continue
                self._forward_subscription(entry[0], neighbor)

    # ------------------------------------------------------------------
    # CROC information gathering (BIR flood / BIA aggregation)
    # ------------------------------------------------------------------
    def _handle_bir(self, request: BrokerInformationRequest, source: Destination) -> None:
        downstream = {
            neighbor for neighbor in self.neighbors if (BROKER, neighbor) != source
        }
        state = _PendingBir(requester=source, pending=set(downstream), reports={})
        self._pending_bir[request.request_id] = state
        if not downstream:
            self._answer_bir(request.request_id)
            return
        # A crashed downstream subtree would otherwise stall this
        # aggregation forever; answer with a partial set at the deadline.
        state.timer = self._sim.schedule(
            self._network.bir_timeout,
            lambda: self._bir_deadline(request.request_id),
        )
        for neighbor in sorted(downstream):
            self._transmit((BROKER, neighbor), request, CONTROL_MESSAGE_KB)

    def _handle_bia(self, answer: BrokerInformationAnswer, source: Destination) -> None:
        state = self._pending_bir.get(answer.request_id)
        if state is None:
            return
        if source[0] == BROKER:
            state.pending.discard(source[1])
        state.reports.update(answer.reports)
        if not state.pending:
            self._answer_bir(answer.request_id)

    def _bir_deadline(self, request_id: int) -> None:
        """Aggregation timeout: answer with whatever reports arrived."""
        if request_id in self._pending_bir:
            self._answer_bir(request_id)

    def _answer_bir(self, request_id: int) -> None:
        state = self._pending_bir.pop(request_id)
        if state.timer is not None:
            state.timer.cancel()
        reports = dict(state.reports)
        reports[self.broker_id] = self.cbc.report(
            self.spec, self._sim.now,
            measured_delay=self.delay_estimator.fit(),
        )
        answer = BrokerInformationAnswer(request_id=request_id, reports=reports)
        self._transmit(state.requester, answer, CONTROL_MESSAGE_KB)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Broker({self.broker_id!r}, neighbors={len(self.neighbors)}, "
            f"srt={len(self._srt)})"
        )
