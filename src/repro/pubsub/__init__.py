"""Filter-based content publish/subscribe substrate.

A faithful, simulator-hosted re-implementation of the parts of PADRES
the paper relies on: attribute-predicate subscription language,
advertisement flooding, subscription routing along reverse
advertisement paths, per-broker content matching with a linear
matching-delay model, an output-bandwidth limiter, and the CBC
profiling component that feeds CROC's Phase 1.
"""

from __future__ import annotations

from repro.pubsub.client import DualClient, PublisherClient, SubscriberClient
from repro.pubsub.delay_estimation import DelayModelEstimator
from repro.pubsub.faults import FaultInjector
from repro.pubsub.message import Advertisement, Publication, Subscription
from repro.pubsub.predicate import Operator, Predicate
from repro.pubsub.network import PubSubNetwork
from repro.pubsub.tracing import MessageTracer

__all__ = [
    "Advertisement",
    "Publication",
    "Subscription",
    "Operator",
    "Predicate",
    "PubSubNetwork",
    "DualClient",
    "PublisherClient",
    "SubscriberClient",
    "DelayModelEstimator",
    "FaultInjector",
    "MessageTracer",
]
