"""CBC — the CROC Back-end Component embedded in every broker.

The CBC profiles the broker's local subscribers (one bit vector per
publisher per subscription) and its local publishers (measured
publication rate, bandwidth, last message ID), and assembles the
broker's BIA report when CROC floods a BIR (paper §III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.bitvector import DEFAULT_CAPACITY
from repro.core.capacity import BrokerSpec
from repro.core.profiles import PublisherProfile, SubscriptionProfile
from repro.core.units import SubscriptionRecord
from repro.pubsub.message import BrokerReport, Publication, Subscription


@dataclass
class _PublisherStats:
    """Measured behaviour of one locally attached publisher."""

    adv_id: str
    first_seen: float
    message_count: int = 0
    bytes_kb: float = 0.0
    last_message_id: int = 0

    def profile(self, now: float) -> PublisherProfile:
        elapsed = max(now - self.first_seen, 1e-9)
        return PublisherProfile(
            adv_id=self.adv_id,
            publication_rate=self.message_count / elapsed,
            bandwidth=self.bytes_kb / elapsed,
            last_message_id=self.last_message_id,
        )


class CrocBackendComponent:
    """Per-broker profiling and BIA assembly."""

    def __init__(self, broker_id: str, profile_capacity: int = DEFAULT_CAPACITY):
        self.broker_id = broker_id
        self.profile_capacity = profile_capacity
        self._subscriptions: Dict[str, Subscription] = {}
        self._subscriber_of: Dict[str, str] = {}
        self._profiles: Dict[str, SubscriptionProfile] = {}
        self._publishers: Dict[str, _PublisherStats] = {}

    # ------------------------------------------------------------------
    # Profiling hooks (called by the broker)
    # ------------------------------------------------------------------
    def register_subscription(self, subscription: Subscription) -> None:
        self._subscriptions[subscription.sub_id] = subscription
        self._subscriber_of[subscription.sub_id] = subscription.subscriber_id
        self._profiles.setdefault(
            subscription.sub_id, SubscriptionProfile(capacity=self.profile_capacity)
        )

    def unregister_subscription(self, sub_id: str) -> None:
        self._subscriptions.pop(sub_id, None)
        self._subscriber_of.pop(sub_id, None)
        self._profiles.pop(sub_id, None)

    def on_delivery(self, sub_id: str, publication: Publication) -> None:
        """Record a matched publication into the subscription's profile."""
        profile = self._profiles.get(sub_id)
        if profile is not None:
            profile.record(publication.adv_id, publication.message_id)

    def on_local_publication(self, publication: Publication, now: float) -> None:
        """Update the measured profile of a locally attached publisher."""
        stats = self._publishers.get(publication.adv_id)
        if stats is None:
            stats = _PublisherStats(adv_id=publication.adv_id, first_seen=now)
            self._publishers[publication.adv_id] = stats
        stats.message_count += 1
        stats.bytes_kb += publication.size_kb
        if publication.message_id > stats.last_message_id:
            stats.last_message_id = publication.message_id

    def forget_publisher(self, adv_id: str) -> None:
        self._publishers.pop(adv_id, None)

    # ------------------------------------------------------------------
    # BIA assembly
    # ------------------------------------------------------------------
    def report(self, spec: BrokerSpec, now: float,
               measured_delay=None) -> BrokerReport:
        """This broker's contribution to the aggregated BIA.

        ``measured_delay`` is the broker's fitted matching-delay
        function (see :mod:`repro.pubsub.delay_estimation`); the
        configured spec stays authoritative for allocation, and the
        measurement rides along for operators and tests.
        """
        publishers = [stats.profile(now) for stats in self._publishers.values()]
        directory = {profile.adv_id: profile for profile in publishers}
        subscriptions: List[SubscriptionRecord] = []
        for sub_id, profile in self._profiles.items():
            snapshot = profile.copy()
            snapshot.synchronize(directory)
            subscriptions.append(
                SubscriptionRecord(
                    sub_id=sub_id,
                    subscriber_id=self._subscriber_of.get(sub_id, ""),
                    profile=snapshot,
                    home_broker=self.broker_id,
                )
            )
        return BrokerReport(
            broker_id=self.broker_id,
            url=spec.url or self.broker_id,
            spec=spec,
            subscriptions=subscriptions,
            publishers=publishers,
            measured_delay=measured_delay,
        )

    def reset(self) -> None:
        """Forget all profiling state (used at reconfiguration)."""
        self._subscriptions.clear()
        self._subscriber_of.clear()
        self._profiles.clear()
        self._publishers.clear()
