"""Periodic run-timeline sampling against the virtual clock.

A :class:`TimelineSampler` splits ``network.run`` into sample-interval
chunks: ``sim.run(until=...)`` tiles virtual time contiguously and
executes events with timestamps up to and including the boundary, so
chunking preserves the exact event execution order — no sampler event
ever enters the heap, which would shift sequence numbers and change
``sim.pending`` (the gather loop in :mod:`repro.core.croc` conditions
on it).  That is what keeps sampled runs bit-identical to unsampled
ones.

Each sample captures queue depth (pending events), in-flight events
(pending minus cancelled corpses), cumulative events processed, and
per-broker message rates over the elapsed interval.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.recorder import Recorder

#: Default virtual seconds between samples.
DEFAULT_INTERVAL = 1.0


class TimelineSampler:
    """Samples one network's run state into a recorder's timeline."""

    def __init__(self, network, recorder: Recorder,
                 interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval!r}")
        self._network = network
        self._sim = network.sim
        self._recorder = recorder
        self.interval = interval
        self._origin = self._sim.now
        self._ticks = 0  # samples taken; next boundary = origin + (ticks+1)*interval
        self._last_totals: Dict[str, int] = {}
        self._last_t = self._sim.now
        self.sample_now()

    def _next_boundary(self) -> float:
        # Multiplicative stepping avoids cumulative float drift in the
        # boundary sequence (t0 + k*dt, not repeated += dt).
        return self._origin + (self._ticks + 1) * self.interval

    def sample_now(self) -> Dict[str, object]:
        """Record one sample at the current virtual time."""
        sim = self._sim
        network = self._network
        now = sim.now
        elapsed = now - self._last_t
        totals: Dict[str, int] = {}
        rates: Dict[str, float] = {}
        for broker_id in sorted(network.brokers):
            total = network.metrics.messages_total(broker_id)
            totals[broker_id] = total
            delta = total - self._last_totals.get(broker_id, 0)
            rates[broker_id] = delta / elapsed if elapsed > 0 else 0.0
        self._last_totals = totals
        self._last_t = now
        pending = sim.pending
        cancelled = sim.cancelled_pending
        return self._recorder.sample(
            now,
            queue_depth=pending,
            in_flight=pending - cancelled,
            events_processed=sim.events_processed,
            broker_rates=rates,
        )

    def run(self, until: float) -> None:
        """Advance the simulator to ``until``, sampling on the way.

        Drop-in replacement for ``sim.run(until=until)``: the engine is
        driven in chunks ending at each sample boundary, and a sample is
        taken whenever the clock reaches one.
        """
        sim = self._sim
        # Catch up on boundaries the clock already passed (e.g. the
        # coordinator drove the engine directly during a gather): one
        # sample covers the whole gap.
        missed = False
        while self._next_boundary() <= sim.now:
            self._ticks += 1
            missed = True
        if missed:
            self.sample_now()
        while True:
            boundary = self._next_boundary()
            target = until if boundary > until else boundary
            sim.run(until=target)
            if boundary <= until:
                self._ticks += 1
                self.sample_now()
            if target >= until:
                break
