"""Versioned JSONL/JSON export of recorded observations.

One export is a flat list of records.  The first record is a header
carrying the schema version; every other record is a ``counter``,
``span``, or ``sample`` tagged with the cell label it came from, so a
merged multi-cell export (the ``--jobs N`` sweep case) stays one flat
stream that line-oriented tools can grep.

Merging is deterministic: cells are emitted in submission order (the
same order the sweep executor returns results in, serial or parallel),
counters within a cell are sorted by name, and spans/samples keep their
recording order.  ``json.dumps`` renders floats via ``repr``, so finite
float values survive a JSONL round-trip bit-exactly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

#: Bump on any backwards-incompatible record-shape change.  Adding the
#: ``energy`` / ``pareto`` kinds was additive (old readers skip unknown
#: kinds; old exports stay valid), so the version did not bump.
SCHEMA_VERSION = "repro-obs/1"

RECORD_KINDS = ("header", "counter", "span", "sample", "energy", "pareto")

#: The non-negative numeric fields of an ``energy`` record.
ENERGY_NUMBER_FIELDS = (
    "allocated_brokers", "duration_s", "joules", "idle_joules",
    "active_joules", "matching_joules", "transmission_joules",
    "crashed_joules", "downtime_s", "migration_gap_s", "deliveries",
    "joules_per_delivery", "mean_delay_ms",
)


def energy_export(
    cells: Sequence[Tuple[str, Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Flatten ``(label, energy/pareto record dict)`` pairs.

    Same header convention as :func:`merge_observations`; the records
    themselves are built by the energy layer
    (:meth:`repro.core.energy.EnergyReport.export_record`) and the
    Pareto extractor — this helper only frames them.
    """
    records: List[Dict[str, object]] = [{
        "record": "header",
        "schema": SCHEMA_VERSION,
        "cells": [label for label, _ in cells],
    }]
    for _label, record in cells:
        records.append(dict(record))
    return records


def merge_observations(
    cells: Sequence[Tuple[str, Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Flatten ``(label, Recorder.snapshot())`` pairs into one export."""
    records: List[Dict[str, object]] = [{
        "record": "header",
        "schema": SCHEMA_VERSION,
        "cells": [label for label, _ in cells],
    }]
    for label, snapshot in cells:
        counters = snapshot.get("counters", {})
        for name in sorted(counters):
            records.append({
                "record": "counter", "cell": label,
                "name": name, "value": counters[name],
            })
        for span in snapshot.get("spans", ()):
            record: Dict[str, object] = {"record": "span", "cell": label}
            record.update(span)
            records.append(record)
        for sample in snapshot.get("samples", ()):
            record = {"record": "sample", "cell": label}
            record.update(sample)
            records.append(record)
    return records


def merged_counters(records: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Sum counter records across cells (worker totals add linearly)."""
    totals: Dict[str, float] = {}
    for record in records:
        if record.get("record") == "counter":
            name = record["name"]
            totals[name] = totals.get(name, 0) + record["value"]
    return {name: totals[name] for name in sorted(totals)}


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def dumps_jsonl(records: Sequence[Dict[str, object]]) -> str:
    """One compact JSON object per line (floats via ``repr``)."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )


def loads_jsonl(text: str) -> List[Dict[str, object]]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def write_export(path: str, records: Sequence[Dict[str, object]]) -> None:
    """Write ``records`` to ``path`` — JSONL unless it ends in ``.json``."""
    if path.endswith(".json"):
        payload = json.dumps(list(records), sort_keys=True, indent=2) + "\n"
    else:
        payload = dumps_jsonl(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def read_export(path: str) -> List[Dict[str, object]]:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".json"):
        return json.loads(text)
    return loads_jsonl(text)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def _check_number(record: Dict[str, object], key: str, errors: List[str],
                  where: str, minimum: float = 0.0,
                  allow_none: bool = False) -> None:
    value = record.get(key)
    if value is None and allow_none:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        errors.append(f"{where}: {key} is not a number: {value!r}")
    elif value < minimum:
        errors.append(f"{where}: {key} below {minimum}: {value!r}")


def validate_records(records: Sequence[Dict[str, object]]) -> List[str]:
    """Schema check for one export; returns a list of error strings."""
    errors: List[str] = []
    if not records:
        return ["export is empty (missing header)"]
    header = records[0]
    if header.get("record") != "header":
        errors.append(f"record 0: expected a header, got {header.get('record')!r}")
    elif header.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"record 0: unsupported schema {header.get('schema')!r} "
            f"(expected {SCHEMA_VERSION!r})"
        )
    last_sample_t: Dict[str, float] = {}
    for position, record in enumerate(records[1:], start=1):
        where = f"record {position}"
        kind = record.get("record")
        if kind not in RECORD_KINDS:
            errors.append(f"{where}: unknown record kind {kind!r}")
            continue
        if kind == "header":
            errors.append(f"{where}: duplicate header")
            continue
        if not isinstance(record.get("cell"), str):
            errors.append(f"{where}: missing cell label")
            continue
        cell = record["cell"]
        if kind == "counter":
            if not isinstance(record.get("name"), str):
                errors.append(f"{where}: counter without a name")
            _check_number(record, "value", errors, where)
        elif kind == "span":
            if not isinstance(record.get("name"), str):
                errors.append(f"{where}: span without a name")
            _check_number(record, "depth", errors, where)
            start = record.get("t_start")
            end = record.get("t_end")
            _check_number(record, "t_start", errors, where, minimum=float("-inf"))
            _check_number(record, "t_end", errors, where,
                          minimum=float("-inf"), allow_none=True)
            if (isinstance(start, (int, float)) and isinstance(end, (int, float))
                    and end < start):
                errors.append(f"{where}: span ends at {end!r} before {start!r}")
        elif kind == "energy":
            for key in ("scenario", "approach"):
                if not isinstance(record.get(key), str):
                    errors.append(f"{where}: energy without a {key}")
            for key in ENERGY_NUMBER_FIELDS:
                _check_number(record, key, errors, where)
            rate = record.get("delivery_rate")
            _check_number(record, "delivery_rate", errors, where)
            if isinstance(rate, (int, float)) and rate > 1.0:
                errors.append(f"{where}: delivery_rate above 1.0: {rate!r}")
        elif kind == "pareto":
            _check_number(record, "rank", errors, where, minimum=1.0)
            rank = record.get("rank")
            if isinstance(rank, float) and not rank.is_integer():
                errors.append(f"{where}: rank is not an integer: {rank!r}")
        elif kind == "sample":
            _check_number(record, "t", errors, where, minimum=float("-inf"))
            t = record.get("t")
            if isinstance(t, (int, float)):
                previous = last_sample_t.get(cell)
                if previous is not None and t < previous:
                    errors.append(
                        f"{where}: sample at t={t!r} behind t={previous!r} "
                        f"for cell {cell!r}"
                    )
                last_sample_t[cell] = float(t)
    return errors
