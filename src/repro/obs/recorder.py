"""Span/counter/timeline recorder with a zero-overhead disabled path.

The recorder follows the determinism contract pinned by the kernel and
fault subsystems: every value that lands in a *deterministic* output is
derived from the simulator's virtual clock or from integer counters the
simulation increments identically on every run.  Wall-clock time is
measured too (spans carry a ``wall_s`` field, mirroring the
``computation_s`` precedent from the sweep runner) but it is segregated
so exports and tests can drop it with one switch.

When no recorder is attached, the module-level :func:`span` and
:func:`add` helpers reduce to a ``None`` check — instrumented code pays
one attribute load and a branch, which is what keeps the attached/
detached bit-identity contract cheap enough to leave the hooks inline
on hot paths.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


class ObsError(RuntimeError):
    """Raised on recorder misuse (bad nesting, negative deltas, ...)."""


@dataclass
class SpanRecord:
    """One completed (or still-open) phase span.

    ``t_start``/``t_end`` are virtual-clock seconds (deterministic);
    ``wall_s`` is host wall time and is excluded from deterministic
    exports.  ``parent`` is the index of the enclosing span in the
    recorder's span list, or ``None`` for top-level spans.
    """

    name: str
    index: int
    depth: int
    parent: Optional[int]
    t_start: float
    t_end: Optional[float] = None
    wall_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_record(self, include_wall: bool = True) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "index": self.index,
            "depth": self.depth,
            "parent": self.parent,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }
        if include_wall:
            record["wall_s"] = self.wall_s
        if self.attrs:
            record["attrs"] = dict(sorted(self.attrs.items()))
        return record


class Span:
    """Context manager closing one :class:`SpanRecord` on exit."""

    __slots__ = ("_recorder", "_record", "_wall_start")

    def __init__(self, recorder: "Recorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self._record = record
        self._wall_start = time.perf_counter()

    @property
    def record(self) -> SpanRecord:
        return self._record

    def set(self, **attrs: object) -> "Span":
        """Attach deterministic key/value attributes to the span."""
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._close(self._record, time.perf_counter() - self._wall_start)


class _NullSpan:
    """Shared no-op span returned while no recorder is attached."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Recorder:
    """Collects spans, namespaced counters, and timeline samples.

    The virtual clock defaults to a constant ``0.0`` until
    :meth:`use_clock` wires it to a simulator (``lambda: sim.now``), so
    a recorder is usable in unit tests without an engine.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.samples: List[Dict[str, object]] = []
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._stack: List[SpanRecord] = []
        self._last_sample_t: Optional[float] = None

    # -- clock ---------------------------------------------------------
    def use_clock(self, clock: Callable[[], float]) -> None:
        """Point virtual timestamps at ``clock`` (e.g. ``lambda: sim.now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        record = SpanRecord(
            name=name,
            index=len(self.spans),
            depth=len(self._stack),
            parent=self._stack[-1].index if self._stack else None,
            t_start=self._clock(),
            attrs=dict(attrs),
        )
        self.spans.append(record)
        self._stack.append(record)
        return Span(self, record)

    def _close(self, record: SpanRecord, wall_s: float) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise ObsError(
                f"span {record.name!r} closed out of order; open stack is "
                f"{[open_span.name for open_span in self._stack]}"
            )
        self._stack.pop()
        record.t_end = self._clock()
        record.wall_s = wall_s

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    # -- counters ------------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        """Accumulate a non-negative delta into counter ``name``."""
        if value < 0:
            raise ObsError(f"negative delta {value!r} for counter {name!r}")
        self.counters[name] = self.counters.get(name, 0) + value

    # -- timeline samples ----------------------------------------------
    def sample(self, t: float, **fields: object) -> Dict[str, object]:
        """Append a timeline sample at virtual time ``t`` (monotone)."""
        if self._last_sample_t is not None and t < self._last_sample_t:
            raise ObsError(
                f"timeline sample at t={t!r} behind previous "
                f"t={self._last_sample_t!r}"
            )
        self._last_sample_t = t
        record: Dict[str, object] = {"t": t}
        record.update(fields)
        self.samples.append(record)
        return record

    # -- export --------------------------------------------------------
    def snapshot(self, include_wall: bool = True) -> Dict[str, object]:
        """A JSON-ready copy of everything recorded so far.

        With ``include_wall=False`` the result is fully deterministic
        (pure virtual-clock / counter data), which is what the
        bit-identity tests compare.
        """
        if self._stack:
            raise ObsError(
                "snapshot with open spans: "
                f"{[record.name for record in self._stack]}"
            )
        return {
            "spans": [record.as_record(include_wall) for record in self.spans],
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "samples": [dict(record) for record in self.samples],
        }


# ----------------------------------------------------------------------
# Module-level attach point (the zero-overhead switch)
# ----------------------------------------------------------------------

_ACTIVE: Optional[Recorder] = None


def attach(recorder: Recorder) -> Recorder:
    """Make ``recorder`` the process-wide active recorder."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ObsError("a recorder is already attached; detach it first")
    _ACTIVE = recorder
    return recorder


def detach() -> Recorder:
    """Remove and return the active recorder."""
    global _ACTIVE
    if _ACTIVE is None:
        raise ObsError("no recorder attached")
    recorder, _ACTIVE = _ACTIVE, None
    return recorder


def active() -> Optional[Recorder]:
    """The attached recorder, or ``None``."""
    return _ACTIVE


@contextmanager
def attached(recorder: Recorder) -> Iterator[Recorder]:
    """Attach ``recorder`` for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def span(name: str, **attrs: object):
    """Open a span on the active recorder, or a shared no-op span."""
    recorder = _ACTIVE
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


def add(name: str, value: float = 1) -> None:
    """Bump a counter on the active recorder; no-op when detached."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add(name, value)
