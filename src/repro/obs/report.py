"""Terminal summary for an observation export (``repro report obs``).

Renders the flat record stream from :mod:`repro.obs.export` as three
aligned tables — spans aggregated by name, counters summed across
cells, and per-cell timeline digests.  The layout reuses the pipe-table
formatter the figure suite already prints with, and is pinned by a
golden-file test so drift is a deliberate act.

Wall-clock span durations are included only when ``include_wall`` (they
vary run to run); everything else in the summary is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.export import SCHEMA_VERSION, merged_counters, validate_records


def format_rows(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned, pipe-separated text table.

    This is the one table renderer the whole harness prints with: it
    lives here, in the leaf ``obs`` package, so both the observation
    summary below and the figure suite in ``experiments`` (which
    re-exports it from :mod:`repro.experiments.report`) can share it
    without ``obs`` importing upward.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        rendered.append([_cell(row.get(column, "")) for column in columns])
    widths = [
        max(len(line[index]) for line in rendered) for index in range(len(columns))
    ]
    lines = []
    for line_index, line in enumerate(rendered):
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(line))
        )
        if line_index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _format_rows(rows: Sequence[Dict[str, object]]) -> str:
    return format_rows(rows)


def _span_rows(records: Sequence[Dict[str, object]],
               include_wall: bool) -> List[Dict[str, object]]:
    by_name: Dict[str, Dict[str, float]] = {}
    for record in records:
        if record.get("record") != "span":
            continue
        stats = by_name.setdefault(
            str(record["name"]), {"count": 0, "virtual_s": 0.0, "wall_s": 0.0}
        )
        stats["count"] += 1
        start, end = record.get("t_start"), record.get("t_end")
        if isinstance(start, (int, float)) and isinstance(end, (int, float)):
            stats["virtual_s"] += end - start
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)):
            stats["wall_s"] += wall
    rows = []
    for name in sorted(by_name):
        stats = by_name[name]
        row: Dict[str, object] = {
            "span": name,
            "count": int(stats["count"]),
            "virtual_s": stats["virtual_s"],
        }
        if include_wall:
            row["wall_s"] = stats["wall_s"]
        rows.append(row)
    return rows


def _sample_rows(records: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    by_cell: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for record in records:
        if record.get("record") != "sample":
            continue
        cell = str(record.get("cell"))
        if cell not in by_cell:
            by_cell[cell] = {
                "samples": 0, "t_first": float(record["t"]), "t_last": 0.0,
                "max_queue_depth": 0,
            }
            order.append(cell)
        stats = by_cell[cell]
        stats["samples"] += 1
        stats["t_last"] = float(record["t"])
        depth = record.get("queue_depth")
        if isinstance(depth, (int, float)) and depth > stats["max_queue_depth"]:
            stats["max_queue_depth"] = depth
    return [
        {
            "cell": cell,
            "samples": int(by_cell[cell]["samples"]),
            "t_first": by_cell[cell]["t_first"],
            "t_last": by_cell[cell]["t_last"],
            "max_queue_depth": int(by_cell[cell]["max_queue_depth"]),
        }
        for cell in order
    ]


def summarize(records: Sequence[Dict[str, object]],
              include_wall: bool = True) -> str:
    """The ``report obs`` terminal summary for one export."""
    errors = validate_records(records)
    if errors:
        raise ValueError(
            "invalid observation export:\n" + "\n".join(errors)
        )
    header = records[0]
    cells = header.get("cells", [])
    lines = [
        f"obs summary — schema {SCHEMA_VERSION}, {len(cells)} cell(s)",
        "",
        "spans (aggregated by name):",
        _format_rows(_span_rows(records, include_wall)),
        "",
        "counters (summed across cells):",
    ]
    counters = merged_counters(records)
    counter_rows = [
        {"counter": name, "total": value} for name, value in counters.items()
    ]
    lines.append(_format_rows(counter_rows))
    lines.append("")
    lines.append("timelines:")
    lines.append(_format_rows(_sample_rows(records)))
    return "\n".join(lines) + "\n"
