"""Pull existing hot-path counters into one namespaced registry.

The simulation already counts the things the paper's claims hang on —
kernel memo hits, closeness evaluations, heap compactions, matching
probe-cache hits, fault drops — but each lives on its own object with
its own spelling.  The helpers here read those counters (they are all
plain deterministic ints, incremented identically with or without a
recorder) and accumulate them into the active recorder under stable
``namespace.name`` keys.

Every helper is a cheap no-op when no recorder is attached, so call
sites can stay unconditional.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import recorder as _recorder
from repro.obs.recorder import Recorder


def engine_counters(sim) -> Dict[str, float]:
    """Event-loop counters from a :class:`repro.sim.engine.Simulator`."""
    return {
        "engine.events_processed": sim.events_processed,
        "engine.batched_events": sim.batched_events,
        "engine.heap_compactions": sim.heap_compactions,
    }


def network_counters(network) -> Dict[str, float]:
    """Engine, matching, fault, and metrics counters for one network."""
    counters = engine_counters(network.sim)
    probe_hits = 0
    probe_misses = 0
    for broker_id in sorted(network.brokers):
        broker = network.brokers[broker_id]
        probe_hits += broker.probe_cache_hits
        probe_misses += broker.probe_cache_misses
    counters["matching.probe_cache_hits"] = probe_hits
    counters["matching.probe_cache_misses"] = probe_misses
    if network.faults is not None:
        counters["faults.crashes"] = network.faults.crashes
        counters["faults.recoveries"] = network.faults.recoveries
        counters["faults.drops"] = network.faults.drops
    metrics = network.metrics
    counters.update({
        "metrics.deliveries": metrics.delivery_count,
        "metrics.messages_lost": metrics.messages_lost,
        "metrics.publications_lost": metrics.publications_lost,
        "metrics.gather_retries": metrics.gather_retries,
        "metrics.degraded_plans": metrics.degraded_plans,
        "metrics.rollbacks": metrics.rollbacks,
        "metrics.subscriptions_migrated": metrics.subscriptions_migrated,
        "metrics.migration_gap_s": metrics.migration_gap_s,
        "metrics.broker_downtime_s": metrics.broker_downtime_s,
    })
    return counters


def allocator_counters(allocator) -> Dict[str, float]:
    """CRAM clustering / kernel counters for one finished ``allocate``.

    Non-CRAM allocators (no ``last_stats``) contribute nothing — their
    work is visible through their phase spans instead.
    """
    stats = getattr(allocator, "last_stats", None)
    if stats is None:
        return {}
    counters: Dict[str, float] = {
        "cram.iterations": stats.iterations,
        "cram.merges": stats.merges,
        "cram.failures": stats.failures,
        "cram.binpack_runs": stats.binpack_runs,
        "cram.closeness_evaluations": stats.closeness_evaluations,
        "cram.initial_search_evaluations": stats.initial_search_evaluations,
    }
    if stats.kernel_used:
        counters["kernel.fused_evaluations"] = stats.kernel_fused_evaluations
        counters["kernel.memo_hits"] = stats.kernel_memo_hits
        counters["kernel.fallback_evaluations"] = stats.kernel_fallback_evaluations
    return counters


def _accumulate(recorder: Optional[Recorder], counters: Dict[str, float]) -> None:
    if recorder is None:
        return
    for name in sorted(counters):
        recorder.add(name, counters[name])


def add_network(network, recorder: Optional[Recorder] = None) -> None:
    """Accumulate :func:`network_counters` into the (active) recorder."""
    recorder = recorder if recorder is not None else _recorder.active()
    if recorder is None:
        return
    _accumulate(recorder, network_counters(network))


def add_allocator(allocator, recorder: Optional[Recorder] = None) -> None:
    """Accumulate :func:`allocator_counters` into the (active) recorder."""
    recorder = recorder if recorder is not None else _recorder.active()
    if recorder is None:
        return
    _accumulate(recorder, allocator_counters(allocator))
