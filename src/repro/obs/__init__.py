"""Deterministic observability: phase spans, counters, run timelines.

Everything that reaches a deterministic output is driven by the
simulator's virtual clock or by counters the simulation increments
identically on every run; wall-clock time is recorded alongside but
segregated (``include_wall``), mirroring the ``computation_s``
precedent.  With no recorder attached every hook is a no-op and runs
are bit-identical to an uninstrumented build — pinned by
``tests/test_obs_equivalence.py``.
"""

from __future__ import annotations

# Import order matters: ``repro.obs.report`` pulls in the experiments
# package, which imports back into ``repro.obs`` (runner attaches
# recorders and samplers).  Loading the dependency-free submodules
# first keeps that cycle harmless; instrumented modules likewise import
# ``repro.obs.<submodule>`` directly rather than this facade.
from repro.obs.recorder import (
    NULL_SPAN,
    ObsError,
    Recorder,
    Span,
    SpanRecord,
    active,
    add,
    attach,
    attached,
    detach,
    span,
)
from repro.obs.timeline import DEFAULT_INTERVAL, TimelineSampler
from repro.obs.export import (
    SCHEMA_VERSION,
    dumps_jsonl,
    loads_jsonl,
    merge_observations,
    merged_counters,
    read_export,
    validate_records,
    write_export,
)
from repro.obs.collect import add_allocator, add_network
from repro.obs.report import summarize

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_INTERVAL",
    "NULL_SPAN",
    "ObsError",
    "Recorder",
    "Span",
    "SpanRecord",
    "TimelineSampler",
    "active",
    "add",
    "add_allocator",
    "add_network",
    "attach",
    "attached",
    "detach",
    "dumps_jsonl",
    "loads_jsonl",
    "merge_observations",
    "merged_counters",
    "read_export",
    "span",
    "summarize",
    "validate_records",
    "write_export",
]
