"""repro — Green Resource Allocation Algorithms for Publish/Subscribe Systems.

A complete, simulator-hosted reproduction of Cheung & Jacobsen,
ICDCS 2011.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record.

Quickstart::

    from repro import scenarios, ExperimentRunner

    scenario = scenarios.cluster_homogeneous(subscriptions_per_publisher=25)
    runner = ExperimentRunner(scenario, seed=7)
    result = runner.run("cram-ios")
    print(result.summary.as_row())
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro import core, pubsub, sim, workloads
from repro.core import (
    BinPackingAllocator,
    BitVector,
    BrokerSpec,
    CramAllocator,
    Croc,
    Deployment,
    FbfAllocator,
    GrapeRelocator,
    MatchingDelayFunction,
    OverlayBuilder,
    PublisherProfile,
    SubscriptionProfile,
)
from repro.experiments.runner import APPROACHES, ExperimentResult, ExperimentRunner
from repro.workloads import scenarios

__all__ = [
    "core",
    "pubsub",
    "sim",
    "workloads",
    "scenarios",
    "BinPackingAllocator",
    "BitVector",
    "BrokerSpec",
    "CramAllocator",
    "Croc",
    "Deployment",
    "FbfAllocator",
    "GrapeRelocator",
    "MatchingDelayFunction",
    "OverlayBuilder",
    "PublisherProfile",
    "SubscriptionProfile",
    "APPROACHES",
    "ExperimentResult",
    "ExperimentRunner",
    "__version__",
]
