"""repro — Green Resource Allocation Algorithms for Publish/Subscribe Systems.

A complete, simulator-hosted reproduction of Cheung & Jacobsen,
ICDCS 2011.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record.

Quickstart::

    from repro import scenarios, ExperimentRunner

    scenario = scenarios.cluster_homogeneous(subscriptions_per_publisher=25)
    runner = ExperimentRunner(scenario, seed=7)
    result = runner.run("cram-ios")
    print(result.summary.as_row())
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro import core, obs, pubsub, sim, workloads
from repro.core import (
    BinPackingAllocator,
    BitVector,
    BrokerSpec,
    CramAllocator,
    Croc,
    Deployment,
    FbfAllocator,
    GrapeRelocator,
    MatchingDelayFunction,
    OverlayBuilder,
    PublisherProfile,
    ReconfigurationError,
    SubscriptionProfile,
)
from repro.core import allocators
from repro.core.allocators import (
    AllocatorSpec,
    get_allocator,
    register_allocator,
    register_spec,
    registered_allocators,
)
from repro.core.config import RunConfig
from repro.core.energy import EnergyAccountant, EnergyReport, EnergySpec
from repro.core.online import OnlineSpec
from repro.experiments.continuous import (
    ContinuousReconfigurator,
    CycleReport,
    OnlineScheduler,
)
from repro.experiments.runner import (
    APPROACHES,
    ExperimentResult,
    ExperimentRunner,
    available_approaches,
)
from repro.obs import Recorder, TimelineSampler
from repro.pubsub.faults import FaultInjector
from repro.sim.estimator import BrokerLoadEstimator
from repro.sim.faults import FaultEvent, FaultPlan
from repro.workloads import scenarios

#: The stable public surface.  Subpackages stay importable for
#: everything else (``repro.core.cram``, ``repro.pubsub.network``, …);
#: this list is the API we promise not to break between PRs.
__all__ = [
    # Subpackages
    "core",
    "obs",
    "pubsub",
    "sim",
    "workloads",
    "scenarios",
    # Allocation building blocks
    "BinPackingAllocator",
    "BitVector",
    "BrokerSpec",
    "CramAllocator",
    "Croc",
    "Deployment",
    "FbfAllocator",
    "GrapeRelocator",
    "MatchingDelayFunction",
    "OverlayBuilder",
    "PublisherProfile",
    "ReconfigurationError",
    "SubscriptionProfile",
    # Allocator registry
    "allocators",
    "AllocatorSpec",
    "get_allocator",
    "register_allocator",
    "register_spec",
    "registered_allocators",
    # Run configuration and online reallocation
    "RunConfig",
    "OnlineSpec",
    "EnergyAccountant",
    "EnergyReport",
    "EnergySpec",
    "OnlineScheduler",
    "BrokerLoadEstimator",
    # Experiment drivers
    "APPROACHES",
    "available_approaches",
    "ContinuousReconfigurator",
    "CycleReport",
    "ExperimentResult",
    "ExperimentRunner",
    # Fault injection
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    # Observability
    "Recorder",
    "TimelineSampler",
    "__version__",
]
