"""PAIRWISE-K and PAIRWISE-N — derivatives of Riabov et al. (paper §VI).

The pairwise clustering algorithm repeatedly merges the closest pair of
clusters until a *pre-specified* number of clusters K remains — unlike
CRAM it neither respects broker resource constraints nor derives K at
runtime.  The paper extends it in two ways to make it comparable:

* bit vectors replace the original's language-level clustering (which
  actually *helps* pairwise on the stock-quote workload, as the paper
  notes), and
* the broker overlay is built with the AUTOMATIC baseline since
  pairwise itself says nothing about overlays.

``PAIRWISE-K`` sets K to the cluster count computed by CRAM with the
XOR closeness metric (the metric used by Riabov et al.) and assigns
clusters to uniformly random brokers.  ``PAIRWISE-N`` sets K to the
number of brokers and assigns one cluster per broker.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.capacity import AllocationResult, BrokerBin, BrokerSpec
from repro.core.closeness import ClosenessMetric, make_metric
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit
from repro.sim.rng import SeededRng


def pairwise_cluster(
    units: Sequence[AllocationUnit],
    cluster_count: int,
    directory: PublisherDirectory,
    metric: Union[str, ClosenessMetric] = "xor",
) -> List[AllocationUnit]:
    """Merge the closest pair until ``cluster_count`` clusters remain.

    Capacity-oblivious, K fixed a priori — the two properties the paper
    criticizes.  Uses a cached best-partner table so each merge costs
    O(C) metric evaluations instead of O(C²).
    """
    if isinstance(metric, str):
        metric = make_metric(metric)
    clusters: List[AllocationUnit] = list(units)
    if cluster_count < 1:
        raise ValueError("cluster_count must be at least 1")
    best_partner: Dict[int, Tuple[int, float]] = {}

    def compute_partner(index: int) -> None:
        best_j, best_value = -1, -1.0
        mine = clusters[index]
        for j, other in enumerate(clusters):
            if j == index:
                continue
            value = metric(mine.profile, other.profile)
            if value > best_value:
                best_j, best_value = j, value
        best_partner[index] = (best_j, best_value)

    for index in range(len(clusters)):
        if len(clusters) > 1:
            compute_partner(index)

    while len(clusters) > cluster_count and len(clusters) > 1:
        # Pick the globally closest pair from the cache.
        best_i, best_j, best_value = -1, -1, -1.0
        for index, (j, value) in best_partner.items():
            if value > best_value:
                best_i, best_j, best_value = index, j, value
        merged = AllocationUnit.merged([clusters[best_i], clusters[best_j]], directory)
        lo, hi = min(best_i, best_j), max(best_i, best_j)
        clusters[lo] = merged
        clusters.pop(hi)
        # Rebuild the cache around the removed index.  Indices above hi
        # shift down by one; partners pointing at lo or hi are stale.
        stale = set()
        new_cache: Dict[int, Tuple[int, float]] = {}
        for index, (j, value) in best_partner.items():
            if index in (lo, hi):
                continue
            new_index = index - 1 if index > hi else index
            if j in (lo, hi):
                stale.add(new_index)
            else:
                new_cache[new_index] = (j - 1 if j > hi else j, value)
        best_partner = new_cache
        stale.add(lo)
        for index in stale:
            if len(clusters) > 1:
                compute_partner(index)
    return clusters


class PairwiseAllocator:
    """Common machinery of the two pairwise derivatives."""

    def __init__(self, metric: Union[str, ClosenessMetric] = "xor",
                 rng: Optional[SeededRng] = None):
        self.metric = make_metric(metric) if isinstance(metric, str) else metric
        self._rng = rng if rng is not None else SeededRng(0, "pairwise")

    def _force_assign(
        self,
        clusters: Sequence[AllocationUnit],
        targets: Sequence[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        """Place cluster i on target i, *without* feasibility checks.

        Pairwise is capacity-unaware: overload simply happens, and the
        evaluation measures its consequences.
        """
        bins: Dict[str, BrokerBin] = {}
        for cluster, spec in zip(clusters, targets):
            bin_ = bins.get(spec.broker_id)
            if bin_ is None:
                bin_ = BrokerBin(spec, directory)
                bins[spec.broker_id] = bin_
            bin_.add(cluster)
        return AllocationResult(list(bins.values()), success=True)


class PairwiseKAllocator(PairwiseAllocator):
    """PAIRWISE-K: K from CRAM-XOR, clusters on random brokers."""

    name = "pairwise-k"

    def __init__(self, cluster_count: int, metric: Union[str, ClosenessMetric] = "xor",
                 rng: Optional[SeededRng] = None):
        super().__init__(metric, rng)
        if cluster_count < 1:
            raise ValueError("cluster_count must be at least 1")
        self.cluster_count = cluster_count

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        pool = list(pool)
        count = min(self.cluster_count, len(units)) or 1
        clusters = pairwise_cluster(units, count, directory, self.metric)
        targets = [self._rng.choice(pool) for _ in clusters]
        return self._force_assign(clusters, targets, directory)


class PairwiseNAllocator(PairwiseAllocator):
    """PAIRWISE-N: one cluster per broker in the pool."""

    name = "pairwise-n"

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        pool = list(pool)
        count = min(len(pool), len(units)) or 1
        clusters = pairwise_cluster(units, count, directory, self.metric)
        targets = self._rng.shuffled(pool)[: len(clusters)]
        return self._force_assign(clusters, targets, directory)
