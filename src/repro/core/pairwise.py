"""PAIRWISE-K and PAIRWISE-N — derivatives of Riabov et al. (paper §VI).

The pairwise clustering algorithm repeatedly merges the closest pair of
clusters until a *pre-specified* number of clusters K remains — unlike
CRAM it neither respects broker resource constraints nor derives K at
runtime.  The paper extends it in two ways to make it comparable:

* bit vectors replace the original's language-level clustering (which
  actually *helps* pairwise on the stock-quote workload, as the paper
  notes), and
* the broker overlay is built with the AUTOMATIC baseline since
  pairwise itself says nothing about overlays.

``PAIRWISE-K`` sets K to the cluster count computed by CRAM with the
XOR closeness metric (the metric used by Riabov et al.) and assigns
clusters to uniformly random brokers.  ``PAIRWISE-N`` sets K to the
number of brokers and assigns one cluster per broker.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.capacity import AllocationResult, BrokerBin, BrokerSpec
from repro.core.closeness import ClosenessMetric, make_metric
from repro.core.kernel import ClosenessKernel, kernel_enabled
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit
from repro.core.rng import SeededRng


def pairwise_cluster(
    units: Sequence[AllocationUnit],
    cluster_count: int,
    directory: PublisherDirectory,
    metric: Union[str, ClosenessMetric] = "xor",
    use_kernel: Optional[bool] = None,
) -> List[AllocationUnit]:
    """Merge the closest pair until ``cluster_count`` clusters remain.

    Capacity-oblivious, K fixed a priori — the two properties the paper
    criticizes.  Uses a cached best-partner table so each merge costs
    O(C) metric evaluations instead of an O(C²) rescan; the cache is
    maintained so the merge sequence is *identical* to the rescan's
    (``tests/test_pairwise_cache.py`` checks this property).  The fused
    kernel (see :func:`repro.core.kernel.kernel_enabled` for the
    ``use_kernel`` semantics) accelerates the rows without changing any
    value.
    """
    if isinstance(metric, str):
        metric = make_metric(metric)
    clusters: List[AllocationUnit] = list(units)
    if cluster_count < 1:
        raise ValueError("cluster_count must be at least 1")
    kernel: Optional[ClosenessKernel] = None
    if kernel_enabled(use_kernel):
        kernel = ClosenessKernel(directory, [unit.profile for unit in clusters])
    metric.attach_kernel(kernel)
    try:
        return _pairwise_cluster(clusters, cluster_count, directory, metric, kernel)
    finally:
        metric.attach_kernel(None)


def _pairwise_cluster(
    clusters: List[AllocationUnit],
    cluster_count: int,
    directory: PublisherDirectory,
    metric: ClosenessMetric,
    kernel: Optional[ClosenessKernel],
) -> List[AllocationUnit]:
    """The merge loop of :func:`pairwise_cluster` (kernel attached)."""
    best_partner: Dict[int, Tuple[int, float]] = {}

    def compute_partner(index: int) -> None:
        mine = clusters[index]
        indices = [j for j in range(len(clusters)) if j != index]
        row = metric.closeness_row(mine.profile, [clusters[j].profile for j in indices])
        best_j, best_value = -1, -1.0
        for j, value in zip(indices, row):
            if value > best_value:
                best_j, best_value = j, value
        best_partner[index] = (best_j, best_value)

    for index in range(len(clusters)):
        if len(clusters) > 1:
            compute_partner(index)

    while len(clusters) > cluster_count and len(clusters) > 1:
        # Pick the globally closest pair from the cache, scanning rows
        # in ascending index order exactly like a brute-force rescan.
        best_i, best_j, best_value = -1, -1, -1.0
        for index in sorted(best_partner):
            j, value = best_partner[index]
            if value > best_value:
                best_i, best_j, best_value = index, j, value
        merged = AllocationUnit.merged(
            [clusters[best_i], clusters[best_j]], directory, kernel=kernel
        )
        lo, hi = min(best_i, best_j), max(best_i, best_j)
        if kernel is not None:
            kernel.forget(clusters[lo].profile)
            kernel.forget(clusters[hi].profile)
        clusters[lo] = merged
        clusters.pop(hi)
        # Rebuild the cache around the removed index.  Indices above hi
        # shift down by one; partners pointing at lo or hi are stale.
        stale = set()
        new_cache: Dict[int, Tuple[int, float]] = {}
        for index, (j, value) in best_partner.items():
            if index in (lo, hi):
                continue
            new_index = index - 1 if index > hi else index
            if j in (lo, hi):
                stale.add(new_index)
            else:
                new_cache[new_index] = (j - 1 if j > hi else j, value)
        best_partner = new_cache
        stale.add(lo)
        if len(clusters) > 1:
            # A surviving row's cached partner is still its best among
            # the unchanged clusters, but the *merged* cluster may now
            # beat it.  One row against the merged profile keeps every
            # entry identical to what a full rescan would produce (ties
            # go to the lower index, mirroring the strict-`>` scan).
            survivors = [i for i in sorted(best_partner) if i not in stale]
            row = metric.closeness_row(
                merged.profile, [clusters[i].profile for i in survivors]
            )
            for i, value in zip(survivors, row):
                cached_j, cached_value = best_partner[i]
                if value > cached_value or (value == cached_value and lo < cached_j):
                    best_partner[i] = (lo, value)
            for index in sorted(stale):
                compute_partner(index)
    return clusters


class PairwiseAllocator:
    """Common machinery of the two pairwise derivatives."""

    def __init__(self, metric: Union[str, ClosenessMetric] = "xor",
                 rng: Optional[SeededRng] = None,
                 use_kernel: Optional[bool] = None):
        self.metric = make_metric(metric) if isinstance(metric, str) else metric
        self._rng = rng if rng is not None else SeededRng(0, "pairwise")
        self.use_kernel = use_kernel

    def _force_assign(
        self,
        clusters: Sequence[AllocationUnit],
        targets: Sequence[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        """Place cluster i on target i, *without* feasibility checks.

        Pairwise is capacity-unaware: overload simply happens, and the
        evaluation measures its consequences.
        """
        bins: Dict[str, BrokerBin] = {}
        for cluster, spec in zip(clusters, targets):
            bin_ = bins.get(spec.broker_id)
            if bin_ is None:
                bin_ = BrokerBin(spec, directory)
                bins[spec.broker_id] = bin_
            bin_.add(cluster)
        return AllocationResult(list(bins.values()), success=True)


class PairwiseKAllocator(PairwiseAllocator):
    """PAIRWISE-K: K from CRAM-XOR, clusters on random brokers."""

    name = "pairwise-k"

    def __init__(self, cluster_count: int, metric: Union[str, ClosenessMetric] = "xor",
                 rng: Optional[SeededRng] = None,
                 use_kernel: Optional[bool] = None):
        super().__init__(metric, rng, use_kernel)
        if cluster_count < 1:
            raise ValueError("cluster_count must be at least 1")
        self.cluster_count = cluster_count

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        pool = list(pool)
        count = min(self.cluster_count, len(units)) or 1
        clusters = pairwise_cluster(units, count, directory, self.metric,
                                    use_kernel=self.use_kernel)
        targets = [self._rng.choice(pool) for _ in clusters]
        return self._force_assign(clusters, targets, directory)


class PairwiseNAllocator(PairwiseAllocator):
    """PAIRWISE-N: one cluster per broker in the pool."""

    name = "pairwise-n"

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        pool = list(pool)
        count = min(len(pool), len(units)) or 1
        clusters = pairwise_cluster(units, count, directory, self.metric,
                                    use_kernel=self.use_kernel)
        targets = self._rng.shuffled(pool)[: len(clusters)]
        return self._force_assign(clusters, targets, directory)
