"""CROC's control-plane message types (paper §III-A).

The Broker Information Request/Answer protocol is how the coordinator
in :mod:`repro.core.croc` learns about the running overlay, so the
dataclasses live here in ``core`` — the bottom layer of the package
DAG — and :mod:`repro.pubsub.message` re-exports them next to the
data-plane messages the brokers exchange.  Nothing in this module may
import from ``pubsub``: the types carry only core-level payloads
(:class:`~repro.core.capacity.BrokerSpec`, subscription records,
publisher profiles), typed loosely to keep the protocol layer free of
circular imports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

#: Nominal size of control-plane messages in kB (subs, advs, BIR/BIA).
CONTROL_MESSAGE_KB = 0.1

_bir_ids = itertools.count()


@dataclass(frozen=True)
class BrokerInformationRequest:
    """BIR — flooded through the overlay by CROC."""

    request_id: int = field(default_factory=lambda: next(_bir_ids))


@dataclass
class BrokerInformationAnswer:
    """BIA — one broker's report, possibly aggregating its subtree.

    ``reports`` maps broker_id → :class:`BrokerReport`; brokers merge
    the BIAs received from the neighbors they forwarded the BIR to into
    their own before answering, which reduces protocol overhead (paper
    §III-A).
    """

    request_id: int
    reports: Dict[str, "BrokerReport"]


@dataclass
class BrokerReport:
    """What one broker tells CROC about itself (the BIA payload).

    Mirrors the paper's BIA contents: URL, matching delay function,
    total output bandwidth, local subscriptions with profiles, local
    publishers with profiles.  The concrete types live in
    :mod:`repro.core`; this dataclass just carries them.
    """

    broker_id: str
    url: str
    spec: Any  # repro.core.capacity.BrokerSpec
    subscriptions: list  # list[repro.core.units.SubscriptionRecord]
    publishers: list  # list[repro.core.profiles.PublisherProfile]
    #: The broker's *measured* matching-delay function (OLS fit over its
    #: recent processing samples); None until enough samples accumulate.
    measured_delay: Any = None


__all__ = [
    "CONTROL_MESSAGE_KB",
    "BrokerInformationAnswer",
    "BrokerInformationRequest",
    "BrokerReport",
]
