"""Fused bit-plane closeness kernel (CRAM hot path).

Closeness evaluation dominates CRAM's Phase-2 runtime: every naive
evaluation walks a per-publisher dict of
:class:`~repro.core.bitvector.BitVector`, re-aligns each pair of
windows with big-int shifts, and repeats the walk for every metric
component.  After Phase 1 all profiles are synchronized against the
publisher directory (croc/offline both call
``SubscriptionProfile.synchronize``), so the per-publisher windows of
every profile in a pool coincide — which means the whole dict-of-
vectors representation can be flattened once:

* a :class:`BitPlaneLayout` assigns each publisher a fixed bit range
  (a *plane*) inside one contiguous integer;
* packing a profile ORs its per-publisher bits into that integer, so
  any pairwise ``{intersect, union, xor}`` cardinality is a single
  aligned pass of C-speed big-int ops plus ``int.bit_count()`` instead
  of a dict walk;
* fused ``(intersect, union)`` counts are memoized per unordered pair,
  keyed by the packed bits (the profile's content signature under the
  layout), so CRAM's re-validation loop stops recomputing unchanged
  pairs.

The kernel is *exact*: a profile whose vectors do not fit the layout
(mismatched window, unknown publisher) is marked non-packable and every
pair involving it falls back to the naive profile walk, so attaching
the kernel never changes a metric value, an allocation, or an
evaluation counter — only wall-clock time.  The
``REPRO_CLOSENESS_KERNEL`` environment variable (``0``/``off``/
``false``/``no``) or the allocators' ``use_kernel`` flag opts out.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.bitvector import BitVector
from repro.core.closeness import XOR_MAX
from repro.core.columnar import ColumnarStore, columnar_enabled
from repro.core.popcount import popcount
from repro.core.profiles import PublisherDirectory, SubscriptionProfile

#: Environment opt-out: set to 0/off/false/no to force the naive path.
KERNEL_ENV_VAR = "REPRO_CLOSENESS_KERNEL"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})


def kernel_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the kernel opt-out: explicit flag wins, then environment.

    ``override=None`` defers to :data:`KERNEL_ENV_VAR`; the kernel is on
    by default because it is value-exact (see module docstring).
    """
    if override is not None:
        return override
    value = os.environ.get(KERNEL_ENV_VAR, "1").strip().lower()
    return value not in _DISABLED_VALUES


class Plane:
    """One publisher's fixed bit range inside the packed integer."""

    __slots__ = ("adv_id", "offset", "mask", "first_id", "capacity", "span", "window", "rate")

    def __init__(
        self,
        adv_id: str,
        offset: int,
        first_id: int,
        capacity: int,
        window: int,
        rate: float,
    ):
        self.adv_id = adv_id
        self.offset = offset
        self.mask = (1 << capacity) - 1
        self.first_id = first_id
        self.capacity = capacity
        #: ``(first_id, capacity)`` — the exact window a vector must
        #: occupy to be packable onto this plane.
        self.span = (first_id, capacity)
        #: Observed-slot count used by the rate estimate, precomputed
        #: with the same clamp as ``BrokerBin._publisher_window``.
        self.window = window
        #: Publisher publication rate; 0.0 when the publisher is absent
        #: from the directory (the naive path skips those terms, and
        #: adding ``0.0`` reproduces that skip bit-for-bit).
        self.rate = rate


class BitPlaneLayout:
    """Global plane assignment derived from a synchronized pool.

    A publisher is *packable* when every vector observed for it shares
    one ``(first_id, capacity)`` window — the invariant ``synchronize``
    establishes.  Publishers with conflicting windows stay unpacked for
    every profile (so pairwise math never mixes packed and naive bits
    for the same publisher).
    """

    __slots__ = ("planes", "conflicted", "total_bits")

    def __init__(
        self,
        directory: PublisherDirectory,
        profiles: Iterable[SubscriptionProfile],
    ):
        windows: Dict[str, Tuple[int, int]] = {}
        conflicted: Set[str] = set()
        for profile in profiles:
            for adv_id, vector in profile.items():
                key = (vector.first_id, vector.capacity)
                seen = windows.get(adv_id)
                if seen is None:
                    windows[adv_id] = key
                elif seen != key:
                    conflicted.add(adv_id)
        self.planes: Dict[str, Plane] = {}
        offset = 0
        for adv_id in sorted(windows):
            if adv_id in conflicted:
                continue
            first_id, capacity = windows[adv_id]
            publisher = directory.get(adv_id)
            if publisher is None:
                window = capacity
                rate = 0.0
            else:
                window = max(1, min(capacity, publisher.last_message_id - first_id + 1))
                rate = publisher.publication_rate
            self.planes[adv_id] = Plane(adv_id, offset, first_id, capacity, window, rate)
            offset += capacity
        self.conflicted = conflicted
        self.total_bits = offset

    @classmethod
    def from_directory(
        cls, directory: PublisherDirectory, capacity: int
    ) -> "BitPlaneLayout":
        """Layout derived from the publisher directory alone.

        Streaming ingest cannot scan all profiles up front (they are
        produced lazily), but after Phase-1 synchronization every
        vector's window is determined by its publisher:
        ``first_id = max(0, last_message_id - capacity + 1)``.  A
        directory-derived layout therefore matches the scanned layout
        for any synchronized pool sharing ``capacity``.
        """
        layout = cls(directory, ())
        offset = 0
        for adv_id in sorted(directory):
            publisher = directory[adv_id]
            first_id = max(0, publisher.last_message_id - capacity + 1)
            window = max(
                1, min(capacity, publisher.last_message_id - first_id + 1)
            )
            layout.planes[adv_id] = Plane(
                adv_id,
                offset,
                first_id,
                capacity,
                window,
                publisher.publication_rate,
            )
            offset += capacity
        layout.total_bits = offset
        return layout


def pack_profile_bits(
    profile: SubscriptionProfile, layout: BitPlaneLayout
) -> Optional[int]:
    """Pure packed plane bits of ``profile``, or ``None`` if unpackable.

    The standalone projection of :meth:`ClosenessKernel.pack` used by
    streaming ingest: it needs only the bits (for
    :meth:`~repro.core.columnar.ColumnarStore.add_rows`), never a
    :class:`PackedProfile`, so the profile object can be dropped
    immediately after the call.
    """
    bits = 0
    planes = layout.planes
    for adv_id, vector in profile.items():
        plane = planes.get(adv_id)
        if plane is None or (vector.first_id, len(vector)) != plane.span:
            return None
        bits |= vector.raw_bits() << plane.offset
    return bits


class PackedProfile:
    """One profile flattened onto a :class:`BitPlaneLayout`.

    ``exact`` is False when any vector missed its plane window; such
    profiles keep working — every computation touching them routes
    through the naive profile walk.  ``residual`` holds vectors for
    publishers that are unpacked *for everyone* (layout conflicts);
    those combine naively per pair without breaking exactness.
    """

    __slots__ = (
        "profile",
        "bits",
        "residual",
        "planes",
        "exact",
        "pure",
        "key",
        "pcard",
        "rate_memo",
        "row",
    )

    def __init__(
        self,
        profile: SubscriptionProfile,
        bits: int,
        residual: Mapping[str, BitVector],
        planes: Tuple[Plane, ...],
        exact: bool,
    ):
        self.profile = profile
        self.bits = bits
        self.residual = dict(residual)
        #: Planes in the profile's vector-dict order — the rate-path
        #: float sums must add terms in exactly the naive order.
        self.planes = planes
        self.exact = exact
        #: Exact with no residual vectors: eligible for packed bin math.
        self.pure = exact and not residual
        #: Popcount of the packed planes (``|A∪B| = |A|+|B|-|A∩B|``
        #: turns the pairwise union into integer arithmetic).
        self.pcard = popcount(bits)
        #: Columnar-store row index; assigned by the kernel when a
        #: store is attached and the pack is pure, ``None`` otherwise.
        self.row: Optional[int] = None
        #: bin bits -> rate delta.  CRAM's probe runs rebuild the same
        #: bin fill sequences over and over; the delta is a pure
        #: function of (this pack, bin bits), so caching on the pack
        #: itself is exact and dies with the pack (no id-reuse hazard).
        self.rate_memo: Dict[int, float] = {}
        if exact:
            # The memo key must pin down every input of a pairwise
            # count.  For residual vectors that includes the window
            # (first_id, capacity), not just the normalized signature:
            # alignment discards bits below the later window start, so
            # even an *empty* vector's window changes the result.
            residual_sig = tuple(
                sorted(
                    (adv, vec.first_id, vec.capacity, vec.raw_bits())
                    for adv, vec in residual.items()
                )
            )
            self.key: Optional[Tuple[int, Tuple]] = (bits, residual_sig)
        else:
            self.key = None

    def rate_increase(self, bin_bits: int) -> float:
        """Input-rate delta vs a bin's packed union (memoized; exact).

        Terms are added in the profile's vector-dict order with the same
        skip conditions as the naive per-publisher walk, so the float
        result is bit-identical.  Only meaningful for ``pure`` packs.
        """
        memo = self.rate_memo
        value = memo.get(bin_bits)
        if value is None:
            added = self.bits & ~bin_bits
            value = 0.0
            if added:
                for plane in self.planes:
                    delta = (added >> plane.offset) & plane.mask
                    if not delta:
                        continue
                    fraction = delta.bit_count() / plane.window
                    value += min(1.0, fraction) * plane.rate
            memo[bin_bits] = value
        return value


class ClosenessKernel:
    """Packs a pool once, then serves fused pairwise set cardinalities.

    Drop-in acceleration behind :class:`~repro.core.closeness.
    ClosenessMetric` (via ``attach_kernel``), ``BrokerBin`` (packed
    union/rate bookkeeping), ``AllocationUnit.merged`` (packed
    OR-merge), and the poset builder (packed ``covers``).
    """

    def __init__(
        self,
        directory: PublisherDirectory,
        profiles: Iterable[SubscriptionProfile],
        columnar: Optional[bool] = None,
        backend: Optional[str] = None,
    ):
        pool = list(profiles)
        self.directory = directory
        self.layout = BitPlaneLayout(directory, pool)
        #: Columnar row store for pure packs; ``None`` when opted out
        #: via ``columnar=False`` or ``REPRO_COLUMNAR``.  The store only
        #: changes *how* intersections are counted (matrix sweep vs
        #: per-pair big-int AND), never the values or the counters.
        self.store: Optional[ColumnarStore] = (
            ColumnarStore(self.layout.total_bits, backend=backend)
            if columnar_enabled(columnar)
            else None
        )
        self._packs: Dict[int, Tuple[SubscriptionProfile, PackedProfile]] = {}
        self._memo: Dict[Tuple[Tuple[int, Tuple], Tuple[int, Tuple]], Tuple[int, int]] = {}
        self._pair_index: Dict[Tuple[int, Tuple], List[Tuple]] = {}
        self._key_refs: Dict[Tuple[int, Tuple], int] = {}
        # Object-identity pair memo in front of the content memo: the
        # pack cache pins every profile's id with a strong reference and
        # profiles are immutable during a run, so an id pair uniquely
        # identifies a (possibly non-packable) profile pair.  Entries
        # die with :meth:`forget`, before the id can be recycled.
        self._id_memo: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._id_pairs: Dict[int, List[Tuple[int, int]]] = {}
        # Diagnostics consumed by CramStats / the benchmark harness.
        self.fused_evaluations = 0
        self.memo_hits = 0
        self.fallback_evaluations = 0
        for profile in pool:
            self.pack(profile)

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def pack(self, profile: SubscriptionProfile) -> PackedProfile:
        """Flatten ``profile`` onto the layout (cached per object).

        The cache holds a strong reference to the profile, so the
        ``id()`` key cannot be recycled while the entry lives; call
        :meth:`forget` when CRAM retires a profile.
        """
        cached = self._packs.get(id(profile))
        if cached is not None:
            return cached[1]
        layout_planes = self.layout.planes
        bits = 0
        residual: Dict[str, BitVector] = {}
        planes: List[Plane] = []
        exact = True
        for adv_id, vector in profile.items():
            plane = layout_planes.get(adv_id)
            if plane is None:
                if adv_id in self.layout.conflicted:
                    residual[adv_id] = vector
                else:
                    exact = False  # publisher unknown to the layout
                continue
            window = (vector.first_id, len(vector))
            if window != plane.span:
                exact = False
                continue
            bits |= vector.raw_bits() << plane.offset
            planes.append(plane)
        packed = PackedProfile(profile, bits, residual, tuple(planes), exact)
        store = self.store
        if store is not None and packed.pure:
            packed.row = store.add_row(bits)
        self._packs[id(profile)] = (profile, packed)
        if packed.key is not None:
            self._key_refs[packed.key] = self._key_refs.get(packed.key, 0) + 1
        return packed

    def forget(self, profile: SubscriptionProfile) -> None:
        """Invalidate a retired profile (CRAM calls this on merge).

        Drops the pack-cache entry and, once no live profile shares the
        same content key, every memoized pair that mentions it.
        """
        profile_id = id(profile)
        entry = self._packs.pop(profile_id, None)
        if entry is None:
            return
        row = entry[1].row
        if row is not None and self.store is not None:
            self.store.free_row(row)
            entry[1].row = None
        for pair in self._id_pairs.pop(profile_id, ()):
            self._id_memo.pop(pair, None)
        key = entry[1].key
        if key is None:
            return
        remaining = self._key_refs.get(key, 0) - 1
        if remaining > 0:
            self._key_refs[key] = remaining
            return
        self._key_refs.pop(key, None)
        for pair in self._pair_index.pop(key, ()):
            self._memo.pop(pair, None)

    # ------------------------------------------------------------------
    # Fused pairwise counts
    # ------------------------------------------------------------------
    def fused_counts(
        self, first: SubscriptionProfile, second: SubscriptionProfile
    ) -> Tuple[int, int]:
        """``(|∩|, |∪|)`` for a profile pair, memoized when packable."""
        ia = id(first)
        ib = id(second)
        id_pair = (ia, ib) if ia <= ib else (ib, ia)
        hit = self._id_memo.get(id_pair)
        if hit is not None:
            self.memo_hits += 1
            return hit
        packs = self._packs
        entry = packs.get(ia)
        pa = entry[1] if entry is not None else self.pack(first)
        entry = packs.get(ib)
        pb = entry[1] if entry is not None else self.pack(second)
        if not (pa.exact and pb.exact):
            self.fallback_evaluations += 1
            counts = (
                first.intersection_cardinality(second),
                first.union_cardinality(second),
            )
            self._remember_id_pair(id_pair, counts)
            return counts
        ka = pa.key
        kb = pb.key
        assert ka is not None and kb is not None
        pair = (ka, kb) if ka <= kb else (kb, ka)
        hit = self._memo.get(pair)
        if hit is not None:
            self.memo_hits += 1
            self._remember_id_pair(id_pair, hit)
            return hit
        intersect = (pa.bits & pb.bits).bit_count()
        union = pa.pcard + pb.pcard - intersect
        if pa.residual or pb.residual:
            intersect, union = self._residual_counts(pa, pb, intersect, union)
        self.fused_evaluations += 1
        counts = (intersect, union)
        self._memo[pair] = counts
        self._pair_index.setdefault(ka, []).append(pair)
        if kb != ka:
            self._pair_index.setdefault(kb, []).append(pair)
        self._remember_id_pair(id_pair, counts)
        return counts

    def _remember_id_pair(self, id_pair: Tuple[int, int], counts: Tuple[int, int]) -> None:
        """Front the content memo with an identity-keyed entry."""
        self._id_memo[id_pair] = counts
        self._id_pairs.setdefault(id_pair[0], []).append(id_pair)
        if id_pair[1] != id_pair[0]:
            self._id_pairs.setdefault(id_pair[1], []).append(id_pair)

    @staticmethod
    def _residual_counts(
        pa: PackedProfile, pb: PackedProfile, intersect: int, union: int
    ) -> Tuple[int, int]:
        """Add the unpacked publishers' naive pairwise contributions."""
        for adv_id, mine in pa.residual.items():
            theirs = pb.residual.get(adv_id)
            if theirs is None:
                union += mine.cardinality
            else:
                both, either, _xor = mine.fused_cardinalities(theirs)
                intersect += both
                union += either
        for adv_id, theirs in pb.residual.items():
            if adv_id not in pa.residual:
                union += theirs.cardinality
        return intersect, union

    # ------------------------------------------------------------------
    # Closeness metrics (identical arithmetic to repro.core.closeness)
    # ------------------------------------------------------------------
    def closeness(
        self, name: str, first: SubscriptionProfile, second: SubscriptionProfile
    ) -> float:
        """Metric value from fused counts; bit-identical to the naive one."""
        intersect, union = self.fused_counts(first, second)
        if name == "intersect":
            return float(intersect)
        if name == "xor":
            xor = union - intersect
            if xor == 0:
                return XOR_MAX
            return 1.0 / xor
        if name == "ios":
            if intersect == 0:
                return 0.0
            return intersect * intersect / (first.cardinality + second.cardinality)
        if name == "iou":
            if intersect == 0:
                return 0.0
            return intersect * intersect / union
        raise ValueError(f"unknown closeness metric {name!r}")

    def closeness_row(
        self,
        name: str,
        first: SubscriptionProfile,
        others: Sequence[SubscriptionProfile],
    ) -> List[float]:
        """Batched one-vs-all closeness (CRAM partner search, pairwise).

        Equivalent to ``[closeness(name, first, o) for o in others]``
        but with the pair-memo lookup, the pure-pair popcounts, and the
        metric arithmetic inlined into one loop — this is the hot row
        of CRAM's partner searches.  Pairs computed here skip the
        content memo (rows almost never see content-equal re-packs);
        the identity memo still catches every repeat scan.
        """
        if name == "intersect":
            mode = 0
        elif name == "xor":
            mode = 1
        elif name == "ios":
            mode = 2
        elif name == "iou":
            mode = 3
        else:
            raise ValueError(f"unknown closeness metric {name!r}")
        ia = id(first)
        id_memo = self._id_memo
        id_pairs = self._id_pairs
        packs = self._packs
        entry = packs.get(ia)
        pa = entry[1] if entry is not None else self.pack(first)
        if self.store is not None and pa.pure:
            return self._columnar_row(mode, first, pa, others)
        pa_pure = pa.pure
        pa_bits = pa.bits
        pa_pcard = pa.pcard
        fused_counts = self.fused_counts
        first_card = first.cardinality if mode == 2 else 0
        hits = 0
        fused = 0
        row: List[float] = []
        append = row.append
        for other in others:
            ib = id(other)
            id_pair = (ia, ib) if ia <= ib else (ib, ia)
            counts = id_memo.get(id_pair)
            if counts is not None:
                hits += 1
                intersect, union = counts
            else:
                entry = packs.get(ib)
                pb = entry[1] if entry is not None else self.pack(other)
                if pa_pure and pb.pure:
                    intersect = (pa_bits & pb.bits).bit_count()
                    union = pa_pcard + pb.pcard - intersect
                    fused += 1
                    # ``_remember_id_pair`` inlined (hot row): ia != ib
                    # here, so both reverse-index entries are recorded.
                    id_memo[id_pair] = (intersect, union)
                    id_pairs.setdefault(id_pair[0], []).append(id_pair)
                    id_pairs.setdefault(id_pair[1], []).append(id_pair)
                else:
                    intersect, union = fused_counts(first, other)
            if mode == 0:
                append(float(intersect))
            elif mode == 1:
                xor = union - intersect
                append(XOR_MAX if xor == 0 else 1.0 / xor)
            elif intersect == 0:
                append(0.0)
            elif mode == 2:
                append(intersect * intersect / (first_card + other.cardinality))
            else:
                append(intersect * intersect / union)
        self.memo_hits += hits
        self.fused_evaluations += fused
        return row

    def _columnar_row(
        self,
        mode: int,
        first: SubscriptionProfile,
        pa: PackedProfile,
        others: Sequence[SubscriptionProfile],
    ) -> List[float]:
        """Columnar variant of :meth:`closeness_row` for pure anchors.

        Classification (memo hit / pure / fallback) stays the scalar
        loop; every memo-missed *pure* pair is deferred and its
        intersection filled by one :meth:`ColumnarStore.intersections`
        sweep.  Unions come from cached pack popcounts and the metric
        floats are computed pair-by-pair exactly as the scalar path
        does, so values, memo contents, and all three kernel counters
        are bit-identical to the store-off path.
        """
        ia = id(first)
        id_memo = self._id_memo
        id_pairs = self._id_pairs
        packs = self._packs
        store = self.store
        assert store is not None and pa.row is not None
        pa_pcard = pa.pcard
        fused_counts = self.fused_counts
        first_card = first.cardinality if mode == 2 else 0
        hits = 0
        count = len(others)
        inters = [0] * count
        unions = [0] * count
        pend_slots: List[int] = []
        pend_rows: List[int] = []
        pend_cards: List[int] = []
        pend_pairs: List[Tuple[int, int]] = []
        pending_at: Dict[Tuple[int, int], int] = {}
        aliases: List[Tuple[int, int]] = []
        for slot, other in enumerate(others):
            ib = id(other)
            id_pair = (ia, ib) if ia <= ib else (ib, ia)
            counts = id_memo.get(id_pair)
            if counts is not None:
                hits += 1
                inters[slot], unions[slot] = counts
                continue
            entry = packs.get(ib)
            pb = entry[1] if entry is not None else self.pack(other)
            if pb.pure:
                seen = pending_at.get(id_pair)
                if seen is not None:
                    # Duplicate candidate within one row: the scalar
                    # loop's second visit is an id-memo hit.
                    hits += 1
                    aliases.append((slot, seen))
                    continue
                pending_at[id_pair] = len(pend_rows)
                pend_slots.append(slot)
                assert pb.row is not None
                pend_rows.append(pb.row)
                pend_cards.append(pb.pcard)
                pend_pairs.append(id_pair)
            else:
                inters[slot], unions[slot] = fused_counts(first, other)
        if pend_rows:
            batch = store.intersections(pa.row, pend_rows)
            for index, intersect in enumerate(batch):
                union = pa_pcard + pend_cards[index] - intersect
                slot = pend_slots[index]
                inters[slot] = intersect
                unions[slot] = union
                id_pair = pend_pairs[index]
                id_memo[id_pair] = (intersect, union)
                id_pairs.setdefault(id_pair[0], []).append(id_pair)
                id_pairs.setdefault(id_pair[1], []).append(id_pair)
        for slot, index in aliases:
            source = pend_slots[index]
            inters[slot] = inters[source]
            unions[slot] = unions[source]
        self.memo_hits += hits
        self.fused_evaluations += len(pend_rows)
        row: List[float] = []
        append = row.append
        for slot, other in enumerate(others):
            intersect = inters[slot]
            union = unions[slot]
            if mode == 0:
                append(float(intersect))
            elif mode == 1:
                xor = union - intersect
                append(XOR_MAX if xor == 0 else 1.0 / xor)
            elif intersect == 0:
                append(0.0)
            elif mode == 2:
                append(intersect * intersect / (first_card + other.cardinality))
            else:
                append(intersect * intersect / union)
        return row

    # ------------------------------------------------------------------
    # Coverage (poset builder)
    # ------------------------------------------------------------------
    def covers(
        self, first: SubscriptionProfile, second: SubscriptionProfile
    ) -> Optional[bool]:
        """Packed superset test, or ``None`` when a side is unpackable."""
        pa = self.pack(first)
        pb = self.pack(second)
        if not (pa.exact and pb.exact):
            return None
        if pb.bits & ~pa.bits:
            return False
        for adv_id, theirs in pb.residual.items():
            if not theirs:
                continue
            mine = pa.residual.get(adv_id)
            if mine is None or not mine.covers(theirs):
                return False
        return True

    # ------------------------------------------------------------------
    # Packed OR-merge (CRAM clustering)
    # ------------------------------------------------------------------
    def merge_profiles(
        self, profiles: Sequence[SubscriptionProfile]
    ) -> Optional[SubscriptionProfile]:
        """OR-merge via one pass of big-int ORs, or ``None`` to fall back.

        Reproduces ``repro.core.profiles.merge_profiles`` exactly —
        same vector windows, same bits, same first-seen publisher order
        — whenever every member is pure-packed.
        """
        packs = []
        for profile in profiles:
            packed = self.pack(profile)
            if not packed.pure:
                return None
            packs.append(packed)
        bits = 0
        for packed in packs:
            bits |= packed.bits
        layout_planes = self.layout.planes
        merged = SubscriptionProfile(
            capacity=max(profile.capacity for profile in profiles)
        )
        vectors: Dict[str, BitVector] = {}
        for profile in profiles:
            for adv_id in profile.adv_ids():
                if adv_id in vectors:
                    continue
                plane = layout_planes[adv_id]
                vector = BitVector(capacity=plane.capacity, first_id=plane.first_id)
                vector.load_bits((bits >> plane.offset) & plane.mask)
                vectors[adv_id] = vector
        merged.adopt_vectors(vectors)
        return merged
