"""One frozen run configuration for the scattered ``REPRO_*`` toggles.

Before this module, four environment variables steered performance
plumbing from four different modules:

============================  =========================================
``REPRO_CLOSENESS_KERNEL``    fused bit-plane kernel on/off
                              (:mod:`repro.core.kernel`)
``REPRO_COLUMNAR``            columnar row store on/off
                              (:mod:`repro.core.columnar`)
``REPRO_COLUMNAR_BACKEND``    ``auto`` / ``numpy`` / ``python``
``REPRO_SHARD_JOBS``          shard-task worker count
                              (:mod:`repro.experiments.parallel`)
============================  =========================================

A :class:`RunConfig` consolidates them into one frozen, picklable
record that the runner, the sweeps, and the spawn-pool cells all
thread explicitly, plus the :class:`~repro.core.online.OnlineSpec`
steering online incremental reallocation.

Precedence (single order, everywhere)
-------------------------------------
1. an explicit non-``None`` ``RunConfig`` field set in code or via CLI;
2. the corresponding ``REPRO_*`` environment variable;
3. the built-in default (kernel on, columnar on, backend ``auto``,
   shard jobs serial, online reallocation off).

Fields left ``None`` mean "defer to 2–3" — the modules owning each
toggle already implement that fallback, so a default-constructed
``RunConfig()`` changes nothing (pinned by the equivalence suites).
:meth:`RunConfig.resolved` pins the environment lookups eagerly for
callers that need a self-contained record (e.g. before shipping work
to processes that must not re-read a mutated environment).

Every field here only ever *selects code paths and knobs* that are
value-exact by construction; no configuration value flows into
reported metrics, so determinism contracts are unaffected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.core.columnar import columnar_enabled, resolve_backend
from repro.core.energy import EnergySpec
from repro.core.kernel import kernel_enabled
from repro.core.online import OnlineSpec

#: Worker count for intra-run shard allocation; ``<= 1`` keeps shards
#: serial in-process, ``0`` means one per CPU.  Defined here (the
#: lowest layer that documents it) and re-exported by
#: :mod:`repro.experiments.parallel`, which owns the pool.
SHARD_JOBS_ENV_VAR = "REPRO_SHARD_JOBS"

#: Event-queue implementation for the simulation engine.  Defined here
#: (the lowest layer that documents it) and consumed by
#: :func:`repro.sim.engine.make_simulator`, which owns the engines.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Valid engine names: ``heap`` is the reference binary heap,
#: ``calendar`` the bucketed calendar queue (bit-identical order).
ENGINE_CHOICES = ("heap", "calendar")


def engine_from_env(default: str = "heap") -> str:
    """Parse :data:`ENGINE_ENV_VAR` (malformed/unknown → default)."""
    raw = os.environ.get(ENGINE_ENV_VAR, default).strip().lower()
    if raw not in ENGINE_CHOICES:
        return default
    return raw


def resolve_engine(choice: Optional[str]) -> str:
    """Engine name under the standard explicit > env > default order.

    An explicit unknown name is a hard error (a typo in code or on the
    CLI must fail loudly); only the environment variable degrades
    silently to the default.
    """
    if choice is None:
        return engine_from_env()
    name = choice.strip().lower()
    if name not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {choice!r}; expected one of {ENGINE_CHOICES}"
        )
    return name


#: Environment toggle for batched fault-free client delivery: one
#: engine event drains a whole publication fan-out instead of one event
#: per subscriber.  On by default; any of ``0/false/off/no`` disables.
DELIVERY_BATCH_ENV_VAR = "REPRO_DELIVERY_BATCH"

_FALSY = frozenset(("0", "false", "off", "no"))


def delivery_batch_from_env(default: bool = True) -> bool:
    """Parse :data:`DELIVERY_BATCH_ENV_VAR` (unset → default)."""
    raw = os.environ.get(DELIVERY_BATCH_ENV_VAR)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def shard_jobs_from_env(default: int = 1) -> int:
    """Parse :data:`SHARD_JOBS_ENV_VAR` (malformed/negative → default)."""
    raw = os.environ.get(SHARD_JOBS_ENV_VAR, str(default)).strip()
    try:
        value = int(raw)
    except ValueError:
        return default
    if value < 0:
        return default
    return value


@dataclass(frozen=True)
class RunConfig:
    """Explicit run-wide configuration (``None`` = defer to env/default).

    Parameters
    ----------
    use_kernel / use_columnar:
        Tri-state switches for the closeness kernel and its columnar
        store — both value-exact accelerations.
    columnar_backend:
        ``auto`` / ``numpy`` / ``python``; forcing ``numpy`` without a
        usable numpy is a hard error (no silent degradation).
    shard_jobs:
        Worker count for sharded Phase-2 allocation; ``0`` = one per
        CPU, ``1`` = serial.
    online:
        An :class:`~repro.core.online.OnlineSpec` enabling online
        incremental reallocation between full CROC cycles; ``None``
        leaves the classic full-cycle-only schedule.
    engine:
        Event-queue structure for the simulation engine (``heap`` /
        ``calendar``, see :mod:`repro.sim.engine`); both execute the
        identical event order, so this is a pure speed knob.
    """

    use_kernel: Optional[bool] = None
    use_columnar: Optional[bool] = None
    columnar_backend: Optional[str] = None
    shard_jobs: Optional[int] = None
    online: Optional[OnlineSpec] = None
    #: Simulation-engine queue structure: ``heap`` (reference) or
    #: ``calendar`` (bucketed calendar queue, bit-identical order).
    engine: Optional[str] = None
    #: An :class:`~repro.core.energy.EnergySpec` attaching post-hoc
    #: energy accounting to each measurement; ``None`` = off.  Pure
    #: arithmetic over already-measured counters — never a behavioral
    #: knob (pinned by the energy equivalence suite).
    energy: Optional[EnergySpec] = None

    def __post_init__(self) -> None:
        if self.engine is not None:
            object.__setattr__(self, "engine", resolve_engine(self.engine))
        if self.columnar_backend is not None:
            name = self.columnar_backend.strip().lower()
            if name not in ("auto", "numpy", "python"):
                raise ValueError(
                    f"unknown columnar backend {self.columnar_backend!r}; "
                    "expected auto, numpy, or python"
                )
            object.__setattr__(self, "columnar_backend", name)
        if self.shard_jobs is not None and self.shard_jobs < 0:
            raise ValueError(
                f"shard_jobs must be >= 0, got {self.shard_jobs}"
            )

    def resolved(self) -> "RunConfig":
        """Pin every deferred field against the current environment.

        The result has no ``None`` performance fields (``online`` stays
        as-is — there is no environment default for it), so it answers
        identically no matter what the environment does afterwards.
        """
        return replace(
            self,
            use_kernel=kernel_enabled(self.use_kernel),
            use_columnar=columnar_enabled(self.use_columnar),
            columnar_backend=resolve_backend(self.columnar_backend),
            shard_jobs=(
                self.shard_jobs
                if self.shard_jobs is not None
                else shard_jobs_from_env()
            ),
            engine=resolve_engine(self.engine),
        )

    def allocator_knobs(self) -> Dict[str, Any]:
        """The knob subset allocator builders understand.

        Fed to :func:`repro.core.allocators.get` alongside the
        runner-owned knobs (``rng``, ``failure_budget``); builders pick
        what they support and ignore the rest.
        """
        return {
            "use_kernel": self.use_kernel,
            "use_columnar": self.use_columnar,
            "columnar_backend": self.columnar_backend,
            "online": self.online,
            "energy": self.energy,
        }
