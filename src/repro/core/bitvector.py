"""Bounded, sliding-window bit vectors (paper Section III-B).

A bit vector records which publications from one publisher a
subscription has received.  Each publisher stamps its messages with a
monotonically increasing integer message ID; bit *i* of the vector
corresponds to message ``first_id + i``.  The vector has a bounded
capacity (the paper's default is 1,280 bits): when a publication ID
falls past the end of the window, the window slides forward just enough
to record it in the last bit, discarding the oldest observations.

The paper's worked example is preserved here as a doctest:

>>> bv = BitVector(capacity=10, first_id=100)
>>> bv.set(119)
True
>>> bv.first_id
110
>>> bv.test(119)
True

Bit vectors are the only workload representation the allocation
framework sees, which is what makes the approach independent of the
publish/subscribe language and the workload distribution.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.popcount import fused_counts, popcount

DEFAULT_CAPACITY = 1280


class BitVector:
    """A fixed-capacity window of publication-receipt bits.

    Parameters
    ----------
    capacity:
        Number of bits retained.  Larger vectors estimate subscription
        load more accurately but take longer to fill (paper §III-B).
    first_id:
        Message ID corresponding to bit index 0.
    """

    __slots__ = ("_capacity", "_first_id", "_bits", "_card")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, first_id: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if first_id < 0:
            raise ValueError(f"first_id must be non-negative, got {first_id}")
        self._capacity = capacity
        self._first_id = first_id
        self._bits = 0
        self._card: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_ids(
        cls, ids: Iterable[int], capacity: int = DEFAULT_CAPACITY, first_id: int = 0
    ) -> "BitVector":
        """Build a vector with the given publication IDs set.

        IDs older than the final window are silently dropped, exactly as
        they would be if they had been observed in order.
        """
        vector = cls(capacity=capacity, first_id=first_id)
        for pub_id in sorted(ids):
            vector.set(pub_id)
        return vector

    def copy(self) -> "BitVector":
        clone = BitVector(self._capacity, self._first_id)
        clone._bits = self._bits
        clone._card = self._card
        return clone

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def first_id(self) -> int:
        """Message ID of bit index 0 (the paper's per-vector counter)."""
        return self._first_id

    @property
    def end_id(self) -> int:
        """One past the last message ID representable in the window."""
        return self._first_id + self._capacity

    @property
    def cardinality(self) -> int:
        """Number of set bits, i.e. publications received in-window."""
        if self._card is None:
            self._card = popcount(self._bits)
        return self._card

    def __len__(self) -> int:
        return self._capacity

    def __bool__(self) -> bool:
        return self._bits != 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set(self, pub_id: int) -> bool:
        """Record receipt of publication ``pub_id``.

        Returns ``True`` if the bit was recorded, ``False`` if the ID
        predates the window (stale duplicate or very old retransmit).
        Sliding follows the paper: shift just enough that the new ID
        lands on the final bit, and advance ``first_id`` by the shift.
        """
        if pub_id < self._first_id:
            return False
        offset = pub_id - self._first_id
        if offset >= self._capacity:
            shift = offset - self._capacity + 1
            self._advance(shift)
            offset = self._capacity - 1
        self._bits |= 1 << offset
        self._card = None
        return True

    def synchronize(self, last_message_id: int) -> None:
        """Slide the window so it ends at ``last_message_id``.

        The paper synchronizes the counters of all bit vectors that
        correspond to the same publisher using the publisher profile's
        last-sent message ID, so vectors from different subscriptions
        are directly comparable bit-for-bit.
        """
        target_first = last_message_id - self._capacity + 1
        if target_first > self._first_id:
            self._advance(target_first - self._first_id)

    def _advance(self, shift: int) -> None:
        """Slide the window forward by ``shift`` message IDs."""
        if shift >= self._capacity:
            self._bits = 0
        else:
            self._bits >>= shift
        self._card = None
        self._first_id += shift

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def test(self, pub_id: int) -> bool:
        """Whether publication ``pub_id`` is recorded as received."""
        offset = pub_id - self._first_id
        if offset < 0 or offset >= self._capacity:
            return False
        return bool(self._bits >> offset & 1)

    def set_ids(self) -> Iterator[int]:
        """Iterate over the message IDs whose bits are set, ascending."""
        bits = self._bits
        base = self._first_id
        index = 0
        while bits:
            if bits & 1:
                yield base + index
            bits >>= 1
            index += 1

    def to_list(self) -> List[int]:
        return list(self.set_ids())

    def density(self) -> float:
        """Fraction of the capacity window that is set."""
        return self.cardinality / self._capacity

    def raw_bits(self) -> int:
        """The window's bit pattern as an int (bit i ↔ ``first_id + i``).

        Exposed for the fused bit-plane kernel, which ORs aligned
        vectors into one contiguous integer.
        """
        return self._bits

    def load_bits(self, bits: int) -> None:
        """Overwrite the bit pattern in place (kernel reconstruction).

        ``bits`` must fit the capacity window; callers are expected to
        have masked it already.
        """
        self._bits = bits
        self._card = None

    # ------------------------------------------------------------------
    # Aligned binary operations
    # ------------------------------------------------------------------
    def _aligned_with(self, other: "BitVector") -> Tuple[int, int, int, int]:
        """Project both vectors onto their common window.

        Returns ``(first_id, capacity, self_bits, other_bits)`` where
        bits below the later window start are discarded (they are not
        comparable: one side has no observation for them).
        """
        first = max(self._first_id, other._first_id)
        end = max(self.end_id, other.end_id)
        capacity = max(end - first, 1)
        mine = self._bits >> (first - self._first_id)
        theirs = other._bits >> (first - other._first_id)
        return first, capacity, mine, theirs

    def _combine(self, other: "BitVector", op) -> "BitVector":
        first, capacity, mine, theirs = self._aligned_with(other)
        result = BitVector(capacity=capacity, first_id=first)
        result._bits = op(mine, theirs)
        return result

    def union(self, other: "BitVector") -> "BitVector":
        """OR of the two vectors over their common window.

        This is the paper's clustering operation (Figure 1): the profile
        of a merged subscription is the OR of the member profiles.
        """
        return self._combine(other, lambda a, b: a | b)

    def intersection(self, other: "BitVector") -> "BitVector":
        return self._combine(other, lambda a, b: a & b)

    def symmetric_difference(self, other: "BitVector") -> "BitVector":
        return self._combine(other, lambda a, b: a ^ b)

    def intersection_cardinality(self, other: "BitVector") -> int:
        _f, _c, mine, theirs = self._aligned_with(other)
        return popcount(mine & theirs)

    def union_cardinality(self, other: "BitVector") -> int:
        _f, _c, mine, theirs = self._aligned_with(other)
        return popcount(mine | theirs)

    def xor_cardinality(self, other: "BitVector") -> int:
        _f, _c, mine, theirs = self._aligned_with(other)
        return popcount(mine ^ theirs)

    def fused_cardinalities(self, other: "BitVector") -> Tuple[int, int, int]:
        """``(|∩|, |∪|, |⊕|)`` from a single window alignment.

        One ``_aligned_with`` pass feeds the shared
        :func:`repro.core.popcount.fused_counts` helper, so callers that
        need several counts (the XOR closeness metric, the fused
        kernel's fallback path) pay the big-int shifts only once.
        """
        _f, _c, mine, theirs = self._aligned_with(other)
        return fused_counts(mine, theirs)

    def covers(self, other: "BitVector") -> bool:
        """Whether every bit set in ``other`` is also set here."""
        _f, _c, mine, theirs = self._aligned_with(other)
        return theirs & ~mine == 0

    def is_disjoint(self, other: "BitVector") -> bool:
        return self.intersection_cardinality(other) == 0

    # ------------------------------------------------------------------
    # Equality / hashing
    # ------------------------------------------------------------------
    def same_bits(self, other: "BitVector") -> bool:
        """Set-equality over the common window (ignores capacity)."""
        _f, _c, mine, theirs = self._aligned_with(other)
        return mine == theirs

    def signature(self) -> Tuple[int, int]:
        """Hashable identity of the observed bit pattern.

        Normalized so vectors that record the same publication set hash
        equally even if their windows started at different IDs.  Used to
        group equal subscriptions into GIFs (CRAM optimization 1).
        """
        bits = self._bits
        if bits:
            trailing = (bits & -bits).bit_length() - 1
            return (self._first_id + trailing, bits >> trailing)
        return (0, 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitVector(capacity={self._capacity}, first_id={self._first_id}, "
            f"cardinality={self.cardinality})"
        )
