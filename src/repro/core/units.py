"""Allocation units: what Phase 2 actually places onto brokers.

An :class:`AllocationUnit` is a set of subscriptions that must live on
the same broker.  Initially every subscription is its own unit; CRAM
merges units into clusters; Phase 3 wraps each allocated broker into a
*pseudo*-unit (``kind == 'broker'``) whose bandwidth requirement is the
single inter-broker stream feeding that child broker.

Unit semantics (DESIGN.md §5):

* profile — OR of the member profiles (Figure 1 of the paper);
* delivery bandwidth — **sum** of member delivery bandwidths for
  subscription units (every subscriber still receives its own copy),
  but the **union-stream** bandwidth for broker pseudo-units (one copy
  per tree edge);
* input requirement — the union rate, derived from the profile by the
  broker bin, which is what makes clustering profitable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only (kernel imports nothing here)
    from repro.core.kernel import ClosenessKernel, PackedProfile

# Canonical import point for the float tolerance helpers mandated by
# reprolint's float-equality rule (implementation lives one layer down
# in repro.core.floats to stay import-cycle-free).
from repro.core.floats import (
    EPSILON,
    approx_eq,
    approx_ge,
    approx_le,
    approx_zero,
)
from repro.core.profiles import (
    PublisherDirectory,
    SubscriptionProfile,
    merge_profiles,
)

__all__ = [
    "EPSILON",
    "approx_eq",
    "approx_ge",
    "approx_le",
    "approx_zero",
    "SubscriptionRecord",
    "AllocationUnit",
    "units_from_records",
]

_unit_ids = itertools.count()


@dataclass(frozen=True)
class SubscriptionRecord:
    """One concrete subscription as reported in a BIA message.

    Attributes
    ----------
    sub_id:
        Globally unique subscription identifier.
    subscriber_id:
        The client owning the subscription (used when migrating).
    profile:
        The bit-vector profile collected by the subscriber's CBC.
    home_broker:
        Broker the subscriber was attached to when profiled.
    """

    sub_id: str
    subscriber_id: str
    profile: SubscriptionProfile
    home_broker: Optional[str] = None


class AllocationUnit:
    """An atomically-placed set of subscriptions (or a child broker)."""

    __slots__ = (
        "unit_id",
        "members",
        "profile",
        "delivery_bandwidth",
        "delivery_rate",
        "subscription_count",
        "kind",
        "child_broker_ids",
        "pack_hint",
        "binpack_key",
    )

    def __init__(
        self,
        members: Sequence[SubscriptionRecord],
        profile: SubscriptionProfile,
        delivery_bandwidth: float,
        delivery_rate: float,
        subscription_count: int,
        kind: str = "subscription",
        child_broker_ids: Tuple[str, ...] = (),
    ):
        self.unit_id = next(_unit_ids)
        self.members: Tuple[SubscriptionRecord, ...] = tuple(members)
        self.profile = profile
        self.delivery_bandwidth = delivery_bandwidth
        self.delivery_rate = delivery_rate
        self.subscription_count = subscription_count
        self.kind = kind
        self.child_broker_ids = tuple(child_broker_ids)
        #: ``(kernel, PackedProfile)`` cached by the broker bins so the
        #: many feasibility probes of one CRAM run skip the kernel's
        #: pack-cache lookup; invalid the moment a different kernel
        #: (i.e. a different allocation run) shows up.
        self.pack_hint: Optional[Tuple["ClosenessKernel", "PackedProfile"]] = None
        #: Precomputed first-fit-decreasing sort key.  ``delivery_bandwidth``
        #: is fixed at construction, and BIN PACKING re-sorts the pool on
        #: every CRAM probe — thousands of sorts per run, so the key is
        #: built once instead of inside a sort lambda.
        self.binpack_key: Tuple[float, int] = (-delivery_bandwidth, self.unit_id)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_subscription(
        cls, record: SubscriptionRecord, directory: PublisherDirectory
    ) -> "AllocationUnit":
        """A singleton unit for one subscription."""
        return cls(
            members=(record,),
            profile=record.profile,
            delivery_bandwidth=record.profile.estimated_bandwidth(directory),
            delivery_rate=record.profile.estimated_rate(directory),
            subscription_count=1,
        )

    @classmethod
    def for_child_broker(
        cls,
        broker_id: str,
        served_units: Iterable["AllocationUnit"],
        directory: PublisherDirectory,
    ) -> "AllocationUnit":
        """Phase-3 pseudo-unit standing in for an allocated broker.

        The profile is the OR of everything the child broker serves;
        the bandwidth requirement is the *union stream* (one copy of
        each needed publication flows down the tree edge), not the sum
        of the child's subscriber deliveries.
        """
        profile = merge_profiles(unit.profile for unit in served_units)
        return cls(
            members=(),
            profile=profile,
            delivery_bandwidth=profile.estimated_bandwidth(directory),
            delivery_rate=profile.estimated_rate(directory),
            subscription_count=1,
            kind="broker",
            child_broker_ids=(broker_id,),
        )

    @classmethod
    def merged(
        cls,
        units: Sequence["AllocationUnit"],
        directory: PublisherDirectory,
        kernel: Optional["ClosenessKernel"] = None,
    ) -> "AllocationUnit":
        """Cluster several units into one (CRAM's OR-merge).

        Works for subscription units (Phase 2 clustering) and for
        broker pseudo-units (Phase 3 re-invokes the allocator on the
        previous layer's brokers, so CRAM may co-locate several child
        streams on one parent).  Mixing kinds is a bug.

        Either way the merged bandwidth is the *sum* of the members':
        each subscriber still receives its own copy, and each child
        broker still gets its own downlink stream.

        With a fused ``kernel`` the profile OR-merge happens on packed
        bits (one big-int pass) whenever every member profile packs
        exactly; the result is bit-identical to the naive merge.
        """
        if not units:
            raise ValueError("cannot merge zero units")
        kinds = {unit.kind for unit in units}
        if len(kinds) != 1:
            raise ValueError(f"cannot merge units of mixed kinds {sorted(kinds)}")
        if len(units) == 1:
            return units[0]
        profile = None
        if kernel is not None:
            profile = kernel.merge_profiles([unit.profile for unit in units])
        if profile is None:
            profile = merge_profiles(unit.profile for unit in units)
        members = tuple(itertools.chain.from_iterable(unit.members for unit in units))
        children = tuple(
            itertools.chain.from_iterable(unit.child_broker_ids for unit in units)
        )
        return cls(
            members=members,
            profile=profile,
            delivery_bandwidth=sum(unit.delivery_bandwidth for unit in units),
            delivery_rate=sum(unit.delivery_rate for unit in units),
            subscription_count=sum(unit.subscription_count for unit in units),
            kind=units[0].kind,
            child_broker_ids=children,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def member_ids(self) -> Tuple[str, ...]:
        return tuple(record.sub_id for record in self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "broker":
            return f"AllocationUnit(children={self.child_broker_ids!r}, bw={self.delivery_bandwidth:.3f})"
        return (
            f"AllocationUnit(id={self.unit_id}, subs={self.subscription_count}, "
            f"bw={self.delivery_bandwidth:.3f})"
        )


def units_from_records(
    records: Iterable[SubscriptionRecord], directory: PublisherDirectory
) -> List[AllocationUnit]:
    """One singleton unit per subscription record."""
    return [AllocationUnit.for_subscription(record, directory) for record in records]
