"""Seed management for reproducible experiments.

Every stochastic decision in the reproduction (workload generation,
random client placement, FBF's random subscription order, AUTOMATIC's
random overlay) draws from a :class:`SeededRng` derived from a single
experiment master seed, so two runs with the same configuration produce
identical topologies, workloads, and therefore identical measurements.

This module is the *only* place allowed to touch the stdlib RNG
(enforced by reprolint's ``unmanaged-random`` rule).  It lives in
``core`` — the bottom layer of the package DAG — so the allocator
baselines can draw randomness without importing upward into ``sim``;
:mod:`repro.sim.rng` re-exports the same names as the historical
public path.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, *names: str) -> int:
    """Derive a stable child seed from a master seed and a name path.

    Uses SHA-256 so unrelated name paths produce statistically
    independent streams, and the mapping is stable across Python
    versions and processes (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeededRng:
    """A named, seeded random stream.

    Thin wrapper over :class:`random.Random` that adds a few helpers
    used throughout the experiment harness and records its provenance
    for debugging.
    """

    def __init__(self, master_seed: int, *names: str):
        self.master_seed = master_seed
        self.names = names
        self._random = random.Random(derive_seed(master_seed, *names))

    def child(self, *names: str) -> "SeededRng":
        """Derive an independent sub-stream."""
        return SeededRng(self.master_seed, *self.names, *names)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Inclusive on both ends, like :meth:`random.Random.randint`."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        return self._random.sample(population, k)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list, leaving the input untouched."""
        result = list(items)
        self._random.shuffle(result)
        return result

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "/".join(self.names) or "<root>"
        return f"SeededRng(seed={self.master_seed}, path={path})"
