"""BIN PACKING subscription allocation (paper §IV-B).

Identical to FBF except that subscriptions are sorted in descending
order of bandwidth requirement before placement — classic first-fit
decreasing.  Complexity O(S log S).  The paper observes that BIN
PACKING consistently allocates one fewer broker than FBF, in line with
the theory of first-fit-decreasing bin packing; our benchmark harness
checks the same ordering.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.capacity import AllocationResult, BrokerSpec
from repro.core.fbf import first_fit
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit


def decreasing_bandwidth(units: Sequence[AllocationUnit]) -> List[AllocationUnit]:
    """Units sorted by descending bandwidth requirement.

    Ties break on unit ID so runs are deterministic.
    """
    return sorted(units, key=lambda unit: (-unit.delivery_bandwidth, unit.unit_id))


class BinPackingAllocator:
    """First-fit decreasing over descending-capacity brokers."""

    name = "binpacking"

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        return first_fit(decreasing_bandwidth(units), pool, directory)
