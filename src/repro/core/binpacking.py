"""BIN PACKING subscription allocation (paper §IV-B).

Identical to FBF except that subscriptions are sorted in descending
order of bandwidth requirement before placement — classic first-fit
decreasing.  Complexity O(S log S).  The paper observes that BIN
PACKING consistently allocates one fewer broker than FBF, in line with
the theory of first-fit-decreasing bin packing; our benchmark harness
checks the same ordering.
"""

from __future__ import annotations

import operator
from typing import Iterable, List, Optional, Sequence

from repro.core.capacity import AllocationResult, BrokerSpec
from repro.core.fbf import first_fit
from repro.core.kernel import ClosenessKernel
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit
from repro.obs import recorder as obs


def decreasing_bandwidth(units: Sequence[AllocationUnit]) -> List[AllocationUnit]:
    """Units sorted by descending bandwidth requirement.

    Ties break on unit ID so runs are deterministic.  The key is
    precomputed on the unit (``binpack_key``): CRAM re-sorts the pool
    on every probe-merge, and an attrgetter over a ready tuple beats a
    per-element lambda by a wide margin at that call volume.
    """
    return sorted(units, key=operator.attrgetter("binpack_key"))


class BinPackingAllocator:
    """First-fit decreasing over descending-capacity brokers.

    ``kernel`` is carried as allocator state (the ``allocate`` signature
    is fixed); CRAM sets it so every probe-merge binpacking pass runs on
    packed broker bins.
    """

    name = "binpacking"

    def __init__(self) -> None:
        self.kernel: Optional[ClosenessKernel] = None

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        with obs.span("binpacking.first_fit", units=len(units)):
            return first_fit(decreasing_bandwidth(units), pool, directory, kernel=self.kernel)
