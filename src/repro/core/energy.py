"""Deterministic per-broker energy model over the virtual clock.

The paper's green metric is *allocated broker count*; this module makes
the claim dimensional.  A frozen :class:`EnergySpec` prices each broker
with an energy-proportional model (idle floor plus a utilization-scaled
active band, per-message matching cost, per-kB transmission cost — the
shape used by the messaging-system energy study in PAPERS.md), and
:func:`account_window` folds one measurement window's counters into a
:class:`EnergyReport`.  :class:`EnergyAccountant` integrates windows
over the virtual clock for the continuous-operation loop.

Everything here is pure arithmetic over an already-measured
:class:`WindowUsage` snapshot — the model never touches the simulator,
so attaching it is bit-identical on every non-energy output by
construction (pinned by ``tests/test_energy_equivalence.py``).

Float comparisons route through :mod:`repro.core.floats` — the
``api-contract`` reprolint pass enforces this for every ``*energy*`` /
``*watts*`` function returning a float.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.floats import approx_zero

#: Defaults loosely follow the enterprise-broker measurements cited in
#: PAPERS.md (arXiv 2506.10693): a substantial idle floor with a
#: roughly linear utilization band on top, plus small per-unit matching
#: and transmission costs.
DEFAULT_IDLE_WATTS = 60.0
DEFAULT_ACTIVE_WATTS = 90.0
DEFAULT_MATCHING_JOULES = 0.05
DEFAULT_TRANSMISSION_JOULES_PER_KB = 0.02
DEFAULT_CRASHED_WATTS = 0.0

#: ``EnergySpec.from_spec`` key -> field mapping (CLI surface).
_SPEC_KEYS = {
    "idle": "idle_watts",
    "active": "active_watts",
    "match": "matching_joules",
    "tx": "transmission_joules_per_kb",
    "crashed": "crashed_watts",
}


@dataclass(frozen=True)
class EnergySpec:
    """Config-driven broker power model (all knobs are per broker).

    ``idle_watts`` is drawn for every allocated, non-crashed broker for
    the whole window; ``active_watts`` is the *extra* draw at 100%
    output-bandwidth utilization, scaled linearly; ``matching_joules``
    prices each routed broker message; ``transmission_joules_per_kb``
    prices output bytes; ``crashed_watts`` is drawn while a broker is
    down (0 models fail-stop power-off).
    """

    idle_watts: float = DEFAULT_IDLE_WATTS
    active_watts: float = DEFAULT_ACTIVE_WATTS
    matching_joules: float = DEFAULT_MATCHING_JOULES
    transmission_joules_per_kb: float = DEFAULT_TRANSMISSION_JOULES_PER_KB
    crashed_watts: float = DEFAULT_CRASHED_WATTS

    def __post_init__(self) -> None:
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"EnergySpec.{spec_field.name} must be a non-negative "
                    f"number, got {value!r}"
                )

    @staticmethod
    def from_spec(text: str) -> Optional["EnergySpec"]:
        """Parse a CLI spec string, e.g. ``'idle=60,active=90,tx=0.02'``.

        ``'none'`` disables the model (returns ``None``); ``''`` and
        ``'default'`` select the default spec.
        """
        cleaned = text.strip().lower()
        if cleaned == "none":
            return None
        if cleaned in ("", "default"):
            return EnergySpec()
        values: Dict[str, float] = {}
        for part in cleaned.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"unknown energy spec key {key!r}; known keys: "
                    f"{', '.join(sorted(_SPEC_KEYS))}"
                )
            try:
                values[_SPEC_KEYS[key]] = float(raw.strip())
            except ValueError:
                raise ValueError(
                    f"energy spec key {key!r} needs a number, got {raw!r}"
                ) from None
        return EnergySpec(**values)


@dataclass(frozen=True)
class WindowUsage:
    """One measurement window's counters, as the energy model sees them.

    Produced by :meth:`repro.pubsub.metrics.MetricsSummary.energy_usage`
    — a pure projection of already-collected metrics, never a live view
    of the simulator.  Per-broker maps may omit brokers (treated as 0).
    """

    duration_s: float
    pool_size: int
    active_brokers: Tuple[str, ...]
    messages: Mapping[str, float]
    bytes_out_kb: Mapping[str, float]
    utilization: Mapping[str, float]
    downtime_s: Mapping[str, float]
    deliveries: int = 0
    mean_delay_s: float = 0.0
    delivery_rate: float = 1.0
    migration_gap_s: float = 0.0


@dataclass(frozen=True)
class BrokerEnergy:
    """One broker's itemized joules over one window."""

    broker_id: str
    idle_joules: float
    active_joules: float
    matching_joules: float
    transmission_joules: float
    crashed_joules: float
    downtime_s: float

    @property
    def joules(self) -> float:
        return (
            self.idle_joules
            + self.active_joules
            + self.matching_joules
            + self.transmission_joules
            + self.crashed_joules
        )


@dataclass(frozen=True)
class EnergyReport:
    """Itemized energy for one window (or one accumulated run)."""

    spec: EnergySpec
    duration_s: float
    pool_size: int
    brokers: Tuple[BrokerEnergy, ...]
    deliveries: int = 0
    mean_delay_s: float = 0.0
    delivery_rate: float = 1.0
    migration_gap_s: float = 0.0

    @property
    def allocated_brokers(self) -> int:
        return len(self.brokers)

    @property
    def joules(self) -> float:
        return sum(broker.joules for broker in self.brokers)

    @property
    def idle_joules(self) -> float:
        return sum(broker.idle_joules for broker in self.brokers)

    @property
    def active_joules(self) -> float:
        return sum(broker.active_joules for broker in self.brokers)

    @property
    def matching_joules(self) -> float:
        return sum(broker.matching_joules for broker in self.brokers)

    @property
    def transmission_joules(self) -> float:
        return sum(broker.transmission_joules for broker in self.brokers)

    @property
    def crashed_joules(self) -> float:
        return sum(broker.crashed_joules for broker in self.brokers)

    @property
    def downtime_s(self) -> float:
        return sum(broker.downtime_s for broker in self.brokers)

    @property
    def joules_per_delivery(self) -> float:
        """Joules per delivered publication; 0.0 when nothing delivered.

        Never negative: all spec knobs and counters are non-negative.
        """
        if self.deliveries <= 0:
            return 0.0
        return self.joules / self.deliveries

    @property
    def mean_watts(self) -> float:
        if approx_zero(self.duration_s):
            return 0.0
        return self.joules / self.duration_s

    def as_row(self) -> Dict[str, float]:
        """Flat dict for the report tables."""
        return {
            "allocated_brokers": self.allocated_brokers,
            "joules": round(self.joules, 4),
            "joules_per_delivery": round(self.joules_per_delivery, 6),
            "mean_watts": round(self.mean_watts, 4),
            "downtime_s": round(self.downtime_s, 4),
        }

    def export_record(
        self, cell: str, scenario: str, approach: str
    ) -> Dict[str, object]:
        """An ``energy`` record for the repro-obs JSONL export."""
        return {
            "record": "energy",
            "cell": cell,
            "scenario": scenario,
            "approach": approach,
            "allocated_brokers": self.allocated_brokers,
            "duration_s": round(self.duration_s, 6),
            "joules": round(self.joules, 6),
            "idle_joules": round(self.idle_joules, 6),
            "active_joules": round(self.active_joules, 6),
            "matching_joules": round(self.matching_joules, 6),
            "transmission_joules": round(self.transmission_joules, 6),
            "crashed_joules": round(self.crashed_joules, 6),
            "downtime_s": round(self.downtime_s, 6),
            "migration_gap_s": round(self.migration_gap_s, 6),
            "deliveries": self.deliveries,
            "joules_per_delivery": round(self.joules_per_delivery, 9),
            "mean_delay_ms": round(self.mean_delay_s * 1000.0, 6),
            "delivery_rate": round(self.delivery_rate, 6),
        }


def account_window(spec: EnergySpec, usage: WindowUsage) -> EnergyReport:
    """Price one measurement window under ``spec``.

    Per allocated broker ``b`` with uptime ``up_b = duration - down_b``
    and output-bandwidth utilization ``util_b``::

        E_b = idle_watts * up_b
            + active_watts * util_b * up_b
            + matching_joules * messages_b
            + tx_joules_per_kb * bytes_out_kb_b
            + crashed_watts * down_b

    Deallocated pool brokers are powered off (zero joules) — the
    paper's green claim priced in joules.  Pure arithmetic: the
    per-broker iteration follows the deployment-ordered
    ``usage.active_brokers`` tuple, so output order is deterministic.
    """
    brokers: List[BrokerEnergy] = []
    for broker_id in usage.active_brokers:
        down = min(max(usage.downtime_s.get(broker_id, 0.0), 0.0),
                   usage.duration_s)
        up = usage.duration_s - down
        util = min(max(usage.utilization.get(broker_id, 0.0), 0.0), 1.0)
        brokers.append(
            BrokerEnergy(
                broker_id=broker_id,
                idle_joules=spec.idle_watts * up,
                active_joules=spec.active_watts * util * up,
                matching_joules=(
                    spec.matching_joules * usage.messages.get(broker_id, 0.0)
                ),
                transmission_joules=(
                    spec.transmission_joules_per_kb
                    * usage.bytes_out_kb.get(broker_id, 0.0)
                ),
                crashed_joules=spec.crashed_watts * down,
                downtime_s=down,
            )
        )
    return EnergyReport(
        spec=spec,
        duration_s=usage.duration_s,
        pool_size=usage.pool_size,
        brokers=tuple(brokers),
        deliveries=usage.deliveries,
        mean_delay_s=usage.mean_delay_s,
        delivery_rate=usage.delivery_rate,
        migration_gap_s=usage.migration_gap_s,
    )


class EnergyAccountant:
    """Integrates :class:`EnergyReport` windows over the virtual clock.

    The continuous-operation loop feeds one :class:`WindowUsage` per
    cycle; fault-crashed intervals arrive via per-broker downtime and
    online-migration gaps via ``migration_gap_s`` (detached subscribers
    lose deliveries, which raises joules per delivery — brokers keep
    drawing power through a migration).
    """

    def __init__(self, spec: EnergySpec):
        self._spec = spec
        self._windows: List[EnergyReport] = []

    @property
    def spec(self) -> EnergySpec:
        return self._spec

    @property
    def windows(self) -> Tuple[EnergyReport, ...]:
        return tuple(self._windows)

    def observe(self, usage: WindowUsage) -> EnergyReport:
        """Account one window and fold it into the running totals."""
        report = account_window(self._spec, usage)
        self._windows.append(report)
        return report

    def total_joules(self) -> float:
        return sum(report.joules for report in self._windows)

    def total_duration_s(self) -> float:
        return sum(report.duration_s for report in self._windows)

    def total_deliveries(self) -> int:
        return sum(report.deliveries for report in self._windows)

    def joules_per_delivery(self) -> float:
        """Run-level joules per delivered publication (0.0 when none)."""
        deliveries = self.total_deliveries()
        if deliveries <= 0:
            return 0.0
        return self.total_joules() / deliveries

    def mean_watts(self) -> float:
        duration = self.total_duration_s()
        if approx_zero(duration):
            return 0.0
        return self.total_joules() / duration


def combined_report(reports: Sequence[EnergyReport]) -> Optional[EnergyReport]:
    """Concatenate window reports into one run-level report.

    Broker entries are kept per window (the same broker may appear once
    per window); scalar fields accumulate.  ``None`` for an empty run.
    """
    if not reports:
        return None
    brokers: List[BrokerEnergy] = []
    for report in reports:
        brokers.extend(report.brokers)
    total_deliveries = sum(report.deliveries for report in reports)
    total_duration = sum(report.duration_s for report in reports)
    weighted_delay = sum(
        report.mean_delay_s * report.deliveries for report in reports
    )
    weighted_rate = sum(
        report.delivery_rate * report.duration_s for report in reports
    )
    return EnergyReport(
        spec=reports[0].spec,
        duration_s=total_duration,
        pool_size=max(report.pool_size for report in reports),
        brokers=tuple(brokers),
        deliveries=total_deliveries,
        mean_delay_s=(
            weighted_delay / total_deliveries if total_deliveries else 0.0
        ),
        delivery_rate=(
            weighted_rate / total_duration if not approx_zero(total_duration)
            else 1.0
        ),
        migration_gap_s=sum(report.migration_gap_s for report in reports),
    )
