"""Relationship identification between subscription profiles.

The paper identifies the relationship among subscriptions *from their
bit vectors* rather than from the subscription language (the algorithm
itself lives in the paper's online appendix; this module reconstructs
it from cardinalities, which is the unique set-theoretic definition).

Five relationships are possible between two profiles ``A`` and ``B``:

==========  =====================================================
EQUAL       A and B received exactly the same publications
SUPERSET    A received everything B did, plus more
SUBSET      B received everything A did, plus more
INTERSECT   they share some publications but neither covers the other
EMPTY       they share no publications
==========  =====================================================

These drive both the poset construction (CRAM optimization 2) and the
per-relationship clustering rules of CRAM optimization 1.
"""

from __future__ import annotations

import enum

from repro.core.profiles import SubscriptionProfile


class Relation(enum.Enum):
    """Set relationship between two subscription profiles."""

    EQUAL = "equal"
    SUPERSET = "superset"
    SUBSET = "subset"
    INTERSECT = "intersect"
    EMPTY = "empty"

    def inverse(self) -> "Relation":
        """The relation seen from the other operand's point of view."""
        if self is Relation.SUPERSET:
            return Relation.SUBSET
        if self is Relation.SUBSET:
            return Relation.SUPERSET
        return self


def relationship(first: SubscriptionProfile, second: SubscriptionProfile) -> Relation:
    """Classify the relationship between two profiles.

    Computed purely from bit-vector cardinalities over the profiles'
    common observation windows, so it is independent of the
    publish/subscribe language (topic, content, XPath, graph ...).
    """
    intersect = first.intersection_cardinality(second)
    if intersect == 0:
        return Relation.EMPTY
    card_first = first.cardinality
    card_second = second.cardinality
    if intersect == card_first and intersect == card_second:
        return Relation.EQUAL
    if intersect == card_second:
        return Relation.SUPERSET
    if intersect == card_first:
        return Relation.SUBSET
    return Relation.INTERSECT
