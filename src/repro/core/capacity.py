"""Broker capacity model and the allocation feasibility test.

Paper Section IV-A defines when a broker can accept a subscription:

    "A broker is deemed to have enough capacity to handle a subscription
    only if by accepting this subscription, its remaining available
    output bandwidth is greater than 0 and its incoming publication
    rate is less than or equal to its maximum matching rate.  The
    maximum matching rate is calculated by taking the inverse of the
    matching delay computed using the matching delay function supplied
    in the BIA message."

A :class:`BrokerBin` tracks both constraints incrementally: the used
output bandwidth is the sum of the delivery bandwidths of the allocated
units, and the incoming publication rate is the rate of the per-
publisher **union** of the allocated profiles — a broker receives each
needed publication once, no matter how many of its subscriptions want
it.  The union is what rewards co-locating similar subscriptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bitvector import BitVector
from repro.core.kernel import ClosenessKernel
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit, approx_le


@dataclass(frozen=True)
class MatchingDelayFunction:
    """Linear model of per-message matching delay (seconds).

    ``delay(n) = base + per_subscription * n`` where ``n`` is the number
    of subscriptions in the broker's routing table.  Brokers measure and
    report this in their BIA message.
    """

    base: float = 0.0001
    per_subscription: float = 1.0e-7

    def delay(self, subscription_count: int) -> float:
        return self.base + self.per_subscription * subscription_count

    def max_matching_rate(self, subscription_count: int) -> float:
        """Messages per second the broker can match, given ``n`` subs."""
        delay = self.delay(subscription_count)
        if delay <= 0:
            return math.inf
        return 1.0 / delay


@dataclass(frozen=True)
class BrokerSpec:
    """Static description of one broker, as reported in its BIA.

    ``total_output_bandwidth`` is in kB/s.  Brokers sort by it because,
    per the paper's experience with PADRES, the bottleneck of a broker
    is the forwarding of messages (network I/O), not the processing.
    """

    broker_id: str
    total_output_bandwidth: float
    delay_function: MatchingDelayFunction = field(default_factory=MatchingDelayFunction)
    url: str = ""

    @property
    def capacity_key(self) -> Tuple[float, str]:
        """Deterministic 'most resourceful first' sort key."""
        return (-self.total_output_bandwidth, self.broker_id)


class BrokerBin:
    """A broker being filled during an allocation run."""

    __slots__ = (
        "spec",
        "_directory",
        "units",
        "used_bandwidth",
        "subscription_count",
        "input_rate",
        "_adv_vectors",
        "_adv_cardinality",
        "_kernel",
        "_packed_mode",
        "_packed_bits",
    )

    def __init__(
        self,
        spec: BrokerSpec,
        directory: PublisherDirectory,
        kernel: Optional[ClosenessKernel] = None,
    ):
        self.spec = spec
        self._directory = directory
        self.units: List[AllocationUnit] = []
        self.used_bandwidth = 0.0
        self.subscription_count = 0
        self.input_rate = 0.0
        self._adv_vectors: Dict[str, BitVector] = {}
        self._adv_cardinality: Dict[str, int] = {}
        # With a fused kernel the per-publisher union is one packed
        # integer; the bin demotes itself to the naive dict-of-vectors
        # path the moment a unit arrives that the kernel cannot pack.
        self._kernel = kernel
        self._packed_mode = kernel is not None
        self._packed_bits = 0

    @classmethod
    def from_packed_state(
        cls,
        spec: BrokerSpec,
        directory: PublisherDirectory,
        kernel: ClosenessKernel,
        units: List[AllocationUnit],
        used_bandwidth: float,
        subscription_count: int,
        input_rate: float,
        packed_bits: int,
    ) -> "BrokerBin":
        """Materialize a bin from the flat packed first-fit loop's state.

        The result is indistinguishable from a bin filled one
        :meth:`add` at a time with the same kernel.
        """
        bin_ = cls(spec, directory, kernel=kernel)
        bin_.units = units
        bin_.used_bandwidth = used_bandwidth
        bin_.subscription_count = subscription_count
        bin_.input_rate = input_rate
        bin_._packed_bits = packed_bits
        return bin_

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def remaining_bandwidth(self) -> float:
        return self.spec.total_output_bandwidth - self.used_bandwidth

    @property
    def utilization(self) -> float:
        """Output-bandwidth utilization in [0, 1]."""
        if self.spec.total_output_bandwidth <= 0:
            return 1.0 if self.used_bandwidth > 0 else 0.0
        return min(1.0, self.used_bandwidth / self.spec.total_output_bandwidth)

    def is_empty(self) -> bool:
        return not self.units

    def _publisher_window(self, adv_id: str, vector: BitVector) -> int:
        publisher = self._directory.get(adv_id)
        if publisher is None:
            return vector.capacity
        window = publisher.last_message_id - vector.first_id + 1
        return max(1, min(vector.capacity, window))

    def _rate_increase(self, unit: AllocationUnit) -> float:
        """Input-rate delta if ``unit`` joined this broker.

        Only the publications *not already flowing* to the broker add
        input load — the per-publisher union captures that.
        """
        if self._packed_mode:
            # Packed fast path — the single hottest call of a CRAM
            # run's thousands of binpack probes.  The packed form is
            # cached on the unit itself (keyed by kernel identity); a
            # unit that cannot pack purely demotes the bin to the naive
            # union path for good, since mixing packed and naive union
            # state would break the exact-equivalence guarantee.
            kernel = self._kernel
            hint = unit.pack_hint
            if hint is not None and hint[0] is kernel:
                packed = hint[1]
            else:
                packed = kernel.pack(unit.profile)  # type: ignore[union-attr]
                unit.pack_hint = (kernel, packed)  # type: ignore[assignment]
            if packed.pure:
                bin_bits = self._packed_bits
                value = packed.rate_memo.get(bin_bits)
                if value is None:
                    value = packed.rate_increase(bin_bits)
                return value
            self._demote()
        increase = 0.0
        for adv_id, vector in unit.profile.items():
            if not vector:
                continue
            publisher = self._directory.get(adv_id)
            if publisher is None:
                continue
            current = self._adv_vectors.get(adv_id)
            if current is None:
                new_cardinality = vector.cardinality
                old_cardinality = 0
            else:
                new_cardinality = current.union_cardinality(vector)
                old_cardinality = self._adv_cardinality[adv_id]
            if new_cardinality == old_cardinality:
                continue
            window = self._publisher_window(adv_id, vector)
            fraction = (new_cardinality - old_cardinality) / window
            increase += min(1.0, fraction) * publisher.publication_rate
        return increase

    # ------------------------------------------------------------------
    # Fused-kernel fast path
    # ------------------------------------------------------------------
    def _demote(self) -> None:
        """Materialize the naive per-publisher union from packed bits.

        Called once, when a unit that the kernel cannot pack reaches a
        packed bin; afterwards the bin behaves exactly like one built
        without a kernel.
        """
        assert self._kernel is not None
        bits = self._packed_bits
        for adv_id, plane in self._kernel.layout.planes.items():
            plane_bits = (bits >> plane.offset) & plane.mask
            if not plane_bits:
                continue
            vector = BitVector(capacity=plane.capacity, first_id=plane.first_id)
            vector.load_bits(plane_bits)
            self._adv_vectors[adv_id] = vector
            self._adv_cardinality[adv_id] = vector.cardinality
        self._packed_mode = False
        self._packed_bits = 0

    # ------------------------------------------------------------------
    # Feasibility and mutation
    # ------------------------------------------------------------------
    def can_accept(self, unit: AllocationUnit) -> bool:
        """The paper's two-part feasibility test."""
        if not approx_le(
            self.used_bandwidth + unit.delivery_bandwidth,
            self.spec.total_output_bandwidth,
        ):
            return False
        subscription_count = self.subscription_count + unit.subscription_count
        # Inlined ``delay_function.max_matching_rate`` (same arithmetic,
        # same floats): the two-call chain showed up in CRAM profiles.
        function = self.spec.delay_function
        delay = function.base + function.per_subscription * subscription_count
        max_rate = math.inf if delay <= 0 else 1.0 / delay
        return approx_le(self.input_rate + self._rate_increase(unit), max_rate)

    def add(self, unit: AllocationUnit) -> None:
        """Place ``unit`` on this broker (caller checked feasibility)."""
        self.input_rate += self._rate_increase(unit)
        self._absorb(unit)

    def _absorb(self, unit: AllocationUnit) -> None:
        """Fold ``unit`` into the per-publisher union and bookkeeping."""
        absorbed = False
        if self._packed_mode:
            # ``_rate_increase`` just ran: the hint is fresh and the
            # bin stayed packed only if the unit's profile packs purely.
            hint = unit.pack_hint
            assert hint is not None and hint[0] is self._kernel
            packed = hint[1]
            if packed.pure:
                self._packed_bits |= packed.bits
                absorbed = True
            else:  # pragma: no cover - _rate_increase demotes first
                self._demote()
        if not absorbed:
            for adv_id, vector in unit.profile.items():
                if not vector:
                    continue
                current = self._adv_vectors.get(adv_id)
                if current is None:
                    merged = vector.copy()
                else:
                    merged = current.union(vector)
                self._adv_vectors[adv_id] = merged
                self._adv_cardinality[adv_id] = merged.cardinality
        self.units.append(unit)
        self.used_bandwidth += unit.delivery_bandwidth
        self.subscription_count += unit.subscription_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BrokerBin({self.spec.broker_id!r}, units={len(self.units)}, "
            f"bw={self.used_bandwidth:.2f}/{self.spec.total_output_bandwidth:.2f}, "
            f"in={self.input_rate:.2f} msg/s)"
        )


class AllocationResult:
    """Outcome of one allocation run (Phase 2 or one Phase-3 layer)."""

    def __init__(
        self,
        bins: Sequence[BrokerBin],
        success: bool,
        failed_unit: Optional[AllocationUnit] = None,
    ):
        self.bins = [bin_ for bin_ in bins if not bin_.is_empty()]
        self.success = success
        self.failed_unit = failed_unit

    @property
    def broker_count(self) -> int:
        """Number of brokers actually allocated (non-empty bins)."""
        return len(self.bins)

    @property
    def broker_ids(self) -> List[str]:
        return [bin_.spec.broker_id for bin_ in self.bins]

    def assignment(self) -> Dict[str, List[AllocationUnit]]:
        """broker_id → allocated units."""
        return {bin_.spec.broker_id: list(bin_.units) for bin_ in self.bins}

    def subscription_placement(self) -> Dict[str, str]:
        """sub_id → broker_id for every member subscription."""
        placement: Dict[str, str] = {}
        for bin_ in self.bins:
            for unit in bin_.units:
                for record in unit.members:
                    placement[record.sub_id] = bin_.spec.broker_id
        return placement

    def total_subscriptions(self) -> int:
        return sum(bin_.subscription_count for bin_ in self.bins)

    def mean_utilization(self) -> float:
        if not self.bins:
            return 0.0
        return sum(bin_.utilization for bin_ in self.bins) / len(self.bins)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.success else "FAILED"
        return f"AllocationResult({status}, brokers={self.broker_count})"


def sorted_broker_pool(pool: Iterable[BrokerSpec]) -> List[BrokerSpec]:
    """Brokers in descending order of resource capacity (paper §IV-A)."""
    return sorted(pool, key=lambda spec: spec.capacity_key)
