"""CRAM: Clustering with Resource Awareness and Minimization (paper §IV-C).

CRAM starts from a plain BIN PACKING allocation and then repeatedly
clusters the pair of subscriptions (GIFs) with the highest non-zero
closeness, re-validating the allocation after every merge and undoing
merges that make the pool unallocatable.  Unlike the pairwise algorithm
of Riabov et al., the number of clusters is *not* chosen a priori — it
falls out of the subscriptions' interests and the brokers' resource
constraints.

The three optimizations from the paper are all implemented and can be
toggled independently for ablation studies:

1. **GIF grouping** (``enable_gif_grouping``) — subscriptions with equal
   bit vectors collapse into one Group of Identical Filters.
2. **Search pruning** (``enable_pruning``) — the poset-driven
   closest-partner search skips empty-relationship subtrees and stops
   once closeness starts to decrease.  Disabled, or under the
   non-prunable XOR metric, the search degrades to an exhaustive scan.
3. **One-to-many clustering** (``enable_one_to_many``) — for candidate
   pairs with an intersect relationship, first try clustering each GIF
   with a greedy-set-cover selection of its covered GIFs (Figure 3).

Per-relationship clustering rules (paper §IV-C.1):

* *equal* (a GIF paired with itself): binary-search the largest
  allocatable cluster of the GIF's own units, lightest first;
* *intersect*: cluster the lightest unit from each GIF (after trying
  optimization 3);
* *superset/subset*: cluster the lightest unit of the covering GIF with
  a binary-searched prefix of the covered GIF's units sorted by
  ascending bandwidth.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.binpacking import BinPackingAllocator
from repro.core.capacity import AllocationResult, BrokerSpec
from repro.core.closeness import ClosenessMetric, make_metric
from repro.core.gif import Gif, build_gifs
from repro.core.kernel import ClosenessKernel, kernel_enabled
from repro.core.poset import Poset
from repro.core.profiles import (
    PublisherDirectory,
    PublisherProfile,
    SubscriptionProfile,
)
from repro.core.relations import Relation, relationship
from repro.core.units import AllocationUnit, SubscriptionRecord, units_from_records
from repro.obs import recorder as obs

#: Marker used in the partner table for "GIF paired with itself".
SELF_PAIR = "self"


@dataclass
class CramStats:
    """Diagnostics of one CRAM run (consumed by the benchmark harness)."""

    subscriptions: int = 0
    initial_units: int = 0
    initial_gifs: int = 0
    final_units: int = 0
    iterations: int = 0
    merges: int = 0
    failures: int = 0
    closeness_evaluations: int = 0
    initial_search_evaluations: int = 0
    binpack_runs: int = 0
    # Fused-kernel diagnostics (all zero when the kernel is disabled).
    kernel_used: bool = False
    kernel_fused_evaluations: int = 0
    kernel_memo_hits: int = 0
    kernel_fallback_evaluations: int = 0
    # Sharded Phase-2 diagnostics (zero for monolithic runs).
    shard_count: int = 0
    shard_fallbacks: int = 0

    @property
    def gif_reduction(self) -> float:
        """Fraction of the pool removed by GIF grouping (paper: ≤61%)."""
        if self.initial_units == 0:
            return 0.0
        return 1.0 - self.initial_gifs / self.initial_units


@dataclass
class _PartnerEntry:
    partner: Union[Gif, str, None]  # Gif, SELF_PAIR, or None
    value: float


class CramAllocator:
    """The CRAM subscription allocation algorithm.

    Parameters
    ----------
    metric:
        Closeness metric name (``intersect``, ``xor``, ``ios``, ``iou``)
        or a ready :class:`~repro.core.closeness.ClosenessMetric`.
    enable_gif_grouping / enable_pruning / enable_one_to_many:
        Toggle the paper's three optimizations (ablation knobs).
    failure_budget:
        Optional cap on the number of *failed* clustering attempts
        before giving up (the paper runs to exhaustion; the budget keeps
        XOR — which cannot prune empty relations — bounded in the
        benchmark harness).
    use_kernel:
        Tri-state opt-out of the fused bit-plane kernel
        (:mod:`repro.core.kernel`): ``True``/``False`` force it on/off,
        ``None`` (default) defers to the ``REPRO_CLOSENESS_KERNEL``
        environment variable.  The kernel is value-exact, so this knob
        only changes speed — it exists for benchmarking and as an
        escape hatch.
    """

    def __init__(
        self,
        metric: Union[str, ClosenessMetric] = "ios",
        enable_gif_grouping: bool = True,
        enable_pruning: bool = True,
        enable_one_to_many: bool = True,
        failure_budget: Optional[int] = None,
        max_iterations: Optional[int] = None,
        use_kernel: Optional[bool] = None,
        use_columnar: Optional[bool] = None,
        columnar_backend: Optional[str] = None,
    ):
        if isinstance(metric, str):
            metric = make_metric(metric)
        self.metric = metric
        self.enable_gif_grouping = enable_gif_grouping
        self.enable_pruning = enable_pruning
        self.enable_one_to_many = enable_one_to_many
        self.failure_budget = failure_budget
        self.max_iterations = max_iterations
        self.use_kernel = use_kernel
        #: Tri-state opt-out of the columnar row store inside the
        #: kernel (``REPRO_COLUMNAR`` when ``None``).  Like
        #: ``use_kernel`` this is value-exact — speed only.
        self.use_columnar = use_columnar
        #: Columnar backend request (``REPRO_COLUMNAR_BACKEND`` when
        #: ``None``); both backends are bit-identical by contract.
        self.columnar_backend = columnar_backend
        self.name = f"cram-{metric.name}"
        self.last_stats = CramStats()
        self._binpack = BinPackingAllocator()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        """Allocate, clustering as aggressively as resources allow."""
        pool = list(pool)
        stats = CramStats(
            subscriptions=sum(unit.subscription_count for unit in units),
            initial_units=len(units),
        )
        self.last_stats = stats
        self.metric.reset_counter()

        kernel: Optional[ClosenessKernel] = None
        if kernel_enabled(self.use_kernel):
            kernel = ClosenessKernel(
                directory,
                [unit.profile for unit in units],
                columnar=self.use_columnar,
                backend=self.columnar_backend,
            )
            stats.kernel_used = True
        self.metric.attach_kernel(kernel)
        self._binpack.kernel = kernel
        try:
            with obs.span("cram.clustering", metric=self.metric.name,
                          units=len(units), kernel=stats.kernel_used):
                return self._clustering_run(units, pool, directory, stats, kernel)
        finally:
            if kernel is not None:
                stats.kernel_fused_evaluations = kernel.fused_evaluations
                stats.kernel_memo_hits = kernel.memo_hits
                stats.kernel_fallback_evaluations = kernel.fallback_evaluations
            self.metric.attach_kernel(None)
            self._binpack.kernel = None

    def _clustering_run(
        self,
        units: Sequence[AllocationUnit],
        pool: List[BrokerSpec],
        directory: PublisherDirectory,
        stats: CramStats,
        kernel: Optional[ClosenessKernel],
    ) -> AllocationResult:
        """The paper's clustering loop (kernel already attached)."""
        base = self._binpack.allocate(units, pool, directory)
        stats.binpack_runs += 1
        if not base.success:
            # Paper: if the unclustered allocation fails, terminate.
            return base
        best = base

        state = _CramState(
            units=units,
            pool=pool,
            directory=directory,
            metric=self.metric,
            enable_gif_grouping=self.enable_gif_grouping,
            enable_pruning=self.enable_pruning,
            stats=stats,
            kernel=kernel,
        )
        stats.initial_gifs = len(state.gifs)
        state.refresh_partners()
        stats.initial_search_evaluations = self.metric.evaluations

        failures = 0
        while True:
            if self.max_iterations is not None and stats.iterations >= self.max_iterations:
                break
            if self.failure_budget is not None and failures >= self.failure_budget:
                break
            pair = state.best_pair()
            if pair is None:
                break
            stats.iterations += 1
            gif, partner, value = pair
            outcome = self._attempt(state, gif, partner, value)
            if outcome is None:
                state.blacklist(gif, partner)
                failures += 1
                stats.failures += 1
            else:
                stats.merges += 1
                # The paper records each successful scheme; since the
                # objective is broker minimization we keep the latest
                # scheme that does not *increase* the broker count (the
                # very first recorded scheme is BIN PACKING's, so CRAM
                # never returns more brokers than BIN PACKING).  Later
                # schemes win ties: more clustering, less in-network
                # traffic for the same broker count.
                if outcome.broker_count <= best.broker_count:
                    best = outcome
        stats.final_units = state.unit_count()
        stats.closeness_evaluations = self.metric.evaluations
        return best

    # ------------------------------------------------------------------
    # Clustering attempts
    # ------------------------------------------------------------------
    def _attempt(
        self,
        state: "_CramState",
        gif: Gif,
        partner: Union[Gif, str],
        pair_value: float,
    ) -> Optional[AllocationResult]:
        """Build and validate one cluster; commit on success."""
        if partner == SELF_PAIR:
            return self._attempt_self(state, gif)
        relation = relationship(gif.profile, partner.profile)
        if relation is Relation.SUPERSET:
            return self._attempt_covering(state, coverer=gif, covered=partner)
        if relation is Relation.SUBSET:
            return self._attempt_covering(state, coverer=partner, covered=gif)
        # INTERSECT — or EMPTY, which only the XOR metric lets through.
        if relation is Relation.INTERSECT and self.enable_one_to_many:
            for parent in (gif, partner):
                result = self._attempt_one_to_many(state, parent, pair_value)
                if result is not None:
                    return result
        return state.try_merge([gif.lightest_unit(), partner.lightest_unit()],
                               sources=[gif, partner])

    def _attempt_self(self, state: "_CramState", gif: Gif) -> Optional[AllocationResult]:
        """Equal relationship: largest allocatable within-GIF cluster."""
        ordered = gif.units_ascending_bandwidth()
        if len(ordered) < 2:
            return None
        best_result: Optional[AllocationResult] = None
        best_k = 0
        low, high = 2, len(ordered)
        while low <= high:
            mid = (low + high) // 2
            result = state.probe_merge(ordered[:mid], sources=[gif])
            if result is not None:
                best_result, best_k = result, mid
                low = mid + 1
            else:
                high = mid - 1
        if best_result is None:
            return None
        return state.commit_merge(ordered[:best_k], sources=[gif], result=best_result)

    def _attempt_covering(
        self, state: "_CramState", coverer: Gif, covered: Gif
    ) -> Optional[AllocationResult]:
        """Superset/subset: coverer's lightest unit + k covered units."""
        anchor = coverer.lightest_unit()
        ordered = covered.units_ascending_bandwidth()
        best_result: Optional[AllocationResult] = None
        best_k = 0
        low, high = 1, len(ordered)
        while low <= high:
            mid = (low + high) // 2
            result = state.probe_merge([anchor] + ordered[:mid], sources=[coverer, covered])
            if result is not None:
                best_result, best_k = result, mid
                low = mid + 1
            else:
                high = mid - 1
        if best_result is None:
            return None
        return state.commit_merge(
            [anchor] + ordered[:best_k], sources=[coverer, covered], result=best_result
        )

    def _attempt_one_to_many(
        self, state: "_CramState", parent: Gif, pair_value: float
    ) -> Optional[AllocationResult]:
        """Optimization 3: cluster ``parent`` with a covered GIF set.

        The Covered GIF Set is chosen greedily (set-cover style) to
        maximize bit coverage while keeping the cluster's load within
        the load requirement of the original candidate pair; the CGS is
        valid only if its closeness with the parent beats the original
        pair's closeness and the allocation still succeeds.
        """
        covered = [g for g in state.poset.covered_gifs(parent) if not g.is_empty()]
        if not covered:
            return None
        anchor = parent.lightest_unit()
        load_bound = anchor.delivery_bandwidth + pair_value_load_bound(parent, pair_value)
        cgs: List[Gif] = []
        cgs_profile: Optional[SubscriptionProfile] = None
        total_load = anchor.delivery_bandwidth
        remaining = list(covered)
        while remaining:
            def gain(candidate: Gif) -> int:
                if cgs_profile is None:
                    return candidate.profile.cardinality
                return (
                    cgs_profile.union_cardinality(candidate.profile)
                    - cgs_profile.cardinality
                )

            remaining.sort(key=lambda g: (-gain(g), g.gif_id))
            chosen = remaining[0]
            if gain(chosen) <= 0:
                break
            chosen_unit = chosen.lightest_unit()
            if total_load + chosen_unit.delivery_bandwidth > load_bound:
                break
            cgs.append(chosen)
            total_load += chosen_unit.delivery_bandwidth
            cgs_profile = (
                chosen.profile.copy()
                if cgs_profile is None
                else cgs_profile.union(chosen.profile)
            )
            remaining.pop(0)
        if not cgs or cgs_profile is None:
            return None
        cgs_value = self.metric(cgs_profile, parent.profile)
        if state.kernel is not None:
            state.kernel.forget(cgs_profile)  # ephemeral, like probe merges
        if cgs_value <= pair_value:
            return None
        merge_units = [anchor] + [g.lightest_unit() for g in cgs]
        return state.try_merge(merge_units, sources=[parent] + cgs)


def pair_value_load_bound(parent: Gif, pair_value: float) -> float:
    """Load allowance contributed by the original pair's other side.

    The paper bounds the CGS-parent cluster by "the load requirements of
    the original GIF pair"; the parent's own lightest unit is counted by
    the caller, so this returns the partner-side allowance.  We use the
    parent's lightest-unit bandwidth again as a symmetric stand-in when
    the partner's identity is not threaded through (the bound only
    stops the greedy loop early; validity is still checked by the
    closeness comparison and the allocation test).
    """
    return parent.lightest_unit().delivery_bandwidth


class _CramState:
    """Mutable state of one CRAM run: GIFs, poset, partner cache."""

    def __init__(
        self,
        units: Sequence[AllocationUnit],
        pool: Sequence[BrokerSpec],
        directory: PublisherDirectory,
        metric: ClosenessMetric,
        enable_gif_grouping: bool,
        enable_pruning: bool,
        stats: CramStats,
        kernel: Optional[ClosenessKernel] = None,
    ):
        self.pool = list(pool)
        self.directory = directory
        self.metric = metric
        self.enable_pruning = enable_pruning
        self.stats = stats
        self.kernel = kernel
        self._binpack = BinPackingAllocator()
        self._binpack.kernel = kernel
        if enable_gif_grouping:
            self.gifs: List[Gif] = build_gifs(units)
        else:
            self.gifs = [Gif(unit.profile, [unit]) for unit in units]
        self.poset = Poset(kernel=kernel)
        for gif in self.gifs:
            self.poset.insert(gif)
        self._by_signature: Dict[Tuple, Gif] = {
            gif.profile.signature(): gif for gif in self.gifs
        }
        self._entries: Dict[int, _PartnerEntry] = {}
        self._dirty: Set[int] = set()
        self._blacklist: Set[frozenset] = set()
        self._gif_by_id: Dict[int, Gif] = {gif.gif_id: gif for gif in self.gifs}

    # ------------------------------------------------------------------
    # Partner cache
    # ------------------------------------------------------------------
    def refresh_partners(self) -> None:
        for gif in self.gifs:
            self._entries[gif.gif_id] = self._compute_entry(gif)

    def _compute_entry(self, gif: Gif) -> _PartnerEntry:
        best = _PartnerEntry(None, 0.0)
        if gif.unit_count >= 2 and frozenset((gif.gif_id, gif.gif_id)) not in self._blacklist:
            value = self.metric(gif.profile, gif.profile)
            if value > 0:
                best = _PartnerEntry(SELF_PAIR, value)

        def symmetric_update(candidate: Gif, value: float) -> None:
            if value <= 0:
                return
            blacklist = self._blacklist
            if blacklist and frozenset((gif.gif_id, candidate.gif_id)) in blacklist:
                return
            entry = self._entries.get(candidate.gif_id)
            if entry is not None and value > entry.value:
                self._entries[candidate.gif_id] = _PartnerEntry(gif, value)

        if self.enable_pruning and self.metric.prunable:
            partner, value = self.poset.closest_partner(
                gif, self.metric, self._blacklist, on_candidate=symmetric_update
            )
        else:
            # Non-prunable (XOR) or pruning disabled: the poset cannot
            # skip anything, so scan the GIF list directly — same
            # candidates in the same order, same evaluation count, but
            # one flat loop instead of per-candidate callback hops.
            partner, value = self._exhaustive_partner(gif)
        if partner is not None and value > best.value:
            best = _PartnerEntry(partner, value)
        return best

    def _exhaustive_partner(self, gif: Gif) -> Tuple[Optional[Gif], float]:
        """Exhaustive partner scan with the symmetric update inlined.

        The scan is one batched ``closeness_row`` call — same values
        and evaluation count as per-candidate metric calls, but the
        kernel (when attached) serves the whole row from packed bits
        and its pair memo.  The loop body folds in exactly what
        ``symmetric_update`` + the best-candidate test do.
        """
        best_gif: Optional[Gif] = None
        best_value = 0.0
        gif_id = gif.gif_id
        entries = self._entries
        blacklist = self._blacklist
        others = [other for other in self.gifs if other.gif_id != gif_id]
        row = self.metric.closeness_row(gif.profile, [other.profile for other in others])
        for other, value in zip(others, row):
            if value <= 0:
                continue
            if blacklist and frozenset((gif_id, other.gif_id)) in blacklist:
                continue
            entry = entries.get(other.gif_id)
            if entry is not None and value > entry.value:
                entries[other.gif_id] = _PartnerEntry(gif, value)
            if value > best_value or (
                value == best_value
                and best_gif is not None
                and other.gif_id < best_gif.gif_id
            ):
                best_gif = other
                best_value = value
        return best_gif, best_value

    def best_pair(self) -> Optional[Tuple[Gif, Union[Gif, str], float]]:
        """The pair with the highest non-zero closeness, or ``None``."""
        while self._dirty:
            gif_id = self._dirty.pop()
            gif = self._gif_by_id.get(gif_id)
            if gif is None or gif.is_empty():
                continue
            self._entries[gif_id] = self._compute_entry(gif)
        best: Optional[Tuple[Gif, Union[Gif, str], float]] = None
        for gif_id, entry in self._entries.items():
            if entry.partner is None or entry.value <= 0:
                continue
            gif = self._gif_by_id.get(gif_id)
            if gif is None or gif.is_empty():
                continue
            if isinstance(entry.partner, Gif) and entry.partner.is_empty():
                self._dirty.add(gif_id)
                continue
            if best is None or entry.value > best[2] or (
                entry.value == best[2] and gif.gif_id < best[0].gif_id
            ):
                best = (gif, entry.partner, entry.value)
        if best is None and self._dirty:
            return self.best_pair()
        return best

    def blacklist(self, gif: Gif, partner: Union[Gif, str]) -> None:
        if partner == SELF_PAIR:
            key = frozenset((gif.gif_id, gif.gif_id))
        else:
            key = frozenset((gif.gif_id, partner.gif_id))
            self._dirty.add(partner.gif_id)
        self._blacklist.add(key)
        self._dirty.add(gif.gif_id)

    # ------------------------------------------------------------------
    # Pool bookkeeping
    # ------------------------------------------------------------------
    def all_units(self) -> List[AllocationUnit]:
        # Empty GIFs contribute nothing to the inner loop, so no
        # ``is_empty`` filter — this runs once per binpack probe.
        return [unit for gif in self.gifs for unit in gif.units]

    def unit_count(self) -> int:
        return sum(gif.unit_count for gif in self.gifs)

    def probe_merge(
        self, merge_units: Sequence[AllocationUnit], sources: Sequence[Gif]
    ) -> Optional[AllocationResult]:
        """Test-allocate the pool with ``merge_units`` fused; no commit."""
        merged = AllocationUnit.merged(list(merge_units), self.directory, kernel=self.kernel)
        doomed = {unit.unit_id for unit in merge_units}
        pool_units = [
            unit for unit in self.all_units() if unit.unit_id not in doomed
        ]
        pool_units.append(merged)
        result = self._binpack.allocate(pool_units, self.pool, self.directory)
        self.stats.binpack_runs += 1
        if self.kernel is not None:
            # The probe's merged profile is ephemeral (a commit builds a
            # fresh one); drop its pack entry so probes don't accumulate.
            self.kernel.forget(merged.profile)
        if not result.success:
            return None
        return result

    def try_merge(
        self, merge_units: Sequence[AllocationUnit], sources: Sequence[Gif]
    ) -> Optional[AllocationResult]:
        """Probe and, on success, commit in one step."""
        result = self.probe_merge(merge_units, sources)
        if result is None:
            return None
        return self.commit_merge(merge_units, sources, result)

    def commit_merge(
        self,
        merge_units: Sequence[AllocationUnit],
        sources: Sequence[Gif],
        result: AllocationResult,
    ) -> AllocationResult:
        """Apply a validated merge to the GIF pool and poset."""
        merged = AllocationUnit.merged(list(merge_units), self.directory, kernel=self.kernel)
        for gif in sources:
            gif.remove_units(merge_units)
            self._dirty.add(gif.gif_id)
        signature = merged.profile.signature()
        home = self._by_signature.get(signature)
        if home is not None and not (home.is_empty() and home not in self.poset):
            home.add_unit(merged)
            self._dirty.add(home.gif_id)
        else:
            home = Gif(merged.profile, [merged])
            self.gifs.append(home)
            self.poset.insert(home)
            self._by_signature[signature] = home
            self._gif_by_id[home.gif_id] = home
            self._dirty.add(home.gif_id)
        for gif in sources:
            if gif.is_empty() and gif.gif_id != home.gif_id:
                self._retire(gif)
        return result

    def _retire(self, gif: Gif) -> None:
        """Remove an emptied GIF from every index."""
        if self.kernel is not None:
            self.kernel.forget(gif.profile)
        if gif in self.poset:
            self.poset.remove(gif)
        self._entries.pop(gif.gif_id, None)
        self._gif_by_id.pop(gif.gif_id, None)
        signature = gif.profile.signature()
        if self._by_signature.get(signature) is gif:
            del self._by_signature[signature]
        self.gifs = [g for g in self.gifs if g.gif_id != gif.gif_id]
        for gif_id, entry in list(self._entries.items()):
            if isinstance(entry.partner, Gif) and entry.partner.gif_id == gif.gif_id:
                self._dirty.add(gif_id)


# ----------------------------------------------------------------------
# Sharded Phase 2 (paper §IV-D's recursion applied *inside* Phase 2)
# ----------------------------------------------------------------------
#
# The partner search is quadratic in the GIF count, so splitting a pool
# into S shards cuts the dominant cost by ~S even on one core.  Shards
# are allocated independently (each by a fresh monolithic CRAM run,
# possibly on the spawn pool — see ``install_shard_runner``), and every
# shard-local broker bin comes back as one *pseudo-subscription* merged
# from its members; a final CRAM pass over the pseudo-units then plays
# the role Phase 3 plays for brokers, recursively clustering the
# shard results onto the real pool.
#
# Determinism: the shard partition is a pure function of the unit list
# (GIF groups, first-occurrence order, greedy lightest-shard placement),
# shard results are consumed strictly in submission order (the
# ``index`` check below makes a runner that reorders — e.g. by
# iterating a dict of futures — an immediate error), and each shard's
# bin contents are returned as record positions, so the merge rebuilds
# pseudo-units in one deterministic order regardless of worker timing.


@dataclass(frozen=True)
class ShardTask:
    """One shard's allocation job, shippable to a spawn-pool worker.

    Records (not units) cross the process boundary: workers rebuild
    units with :func:`~repro.core.units.units_from_records`, so the
    fresh ``unit_id`` sequence in the worker is order-isomorphic to the
    parent's — every comparison CRAM performs on unit IDs is relative,
    never absolute.
    """

    index: int
    records: Tuple[SubscriptionRecord, ...]
    pool: Tuple[BrokerSpec, ...]
    directory: Dict[str, PublisherProfile]
    metric: str
    enable_gif_grouping: bool = True
    enable_pruning: bool = True
    enable_one_to_many: bool = True
    failure_budget: Optional[int] = None
    max_iterations: Optional[int] = None
    use_kernel: Optional[bool] = None
    use_columnar: Optional[bool] = None
    columnar_backend: Optional[str] = None


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's result: per-bin record positions into the task.

    ``groups`` lists, for every non-empty broker bin of the shard's
    allocation, the positions (into ``task.records``) of the records it
    holds, in bin fill order.  Positions — not objects — so the parent
    maps them back onto *its* units without any pickling identity
    games.
    """

    index: int
    success: bool
    groups: Tuple[Tuple[int, ...], ...] = ()
    stats: CramStats = field(default_factory=CramStats)


@contextmanager
def _recorder_silenced() -> Iterator[None]:
    """Detach any active obs recorder for the duration of a block.

    Shard allocations run without observability no matter where they
    execute: a spawned worker has no recorder, so the serial in-process
    runner must not record either — otherwise serial and pooled runs
    would disagree on the obs surface, breaking bit-identity.
    """
    previous = obs.active()
    if previous is not None:
        obs.detach()
    try:
        yield
    finally:
        if previous is not None:
            obs.attach(previous)


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Allocate one shard with a fresh monolithic CRAM run.

    Module-level by design: spawn-pool workers pickle this function by
    reference, importing only ``repro.core.cram``.
    """
    allocator = CramAllocator(
        metric=task.metric,
        enable_gif_grouping=task.enable_gif_grouping,
        enable_pruning=task.enable_pruning,
        enable_one_to_many=task.enable_one_to_many,
        failure_budget=task.failure_budget,
        max_iterations=task.max_iterations,
        use_kernel=task.use_kernel,
        use_columnar=task.use_columnar,
        columnar_backend=task.columnar_backend,
    )
    units = units_from_records(task.records, task.directory)
    with _recorder_silenced():
        result = allocator.allocate(units, list(task.pool), task.directory)
    if not result.success:
        return ShardOutcome(task.index, False, (), allocator.last_stats)
    position = {
        record.sub_id: offset for offset, record in enumerate(task.records)
    }
    groups = tuple(
        tuple(
            position[record.sub_id]
            for unit in broker_bin.units
            for record in unit.members
        )
        for broker_bin in result.bins
        if broker_bin.units
    )
    return ShardOutcome(task.index, True, groups, allocator.last_stats)


#: A shard runner maps submitted tasks to outcomes **in list order**.
ShardRunner = Callable[[Sequence[ShardTask]], List[ShardOutcome]]


def run_shards_serial(tasks: Sequence[ShardTask]) -> List[ShardOutcome]:
    """The default runner: in-process, one task at a time, list order."""
    return [run_shard_task(task) for task in tasks]


_shard_runner: ShardRunner = run_shards_serial


def install_shard_runner(runner: Optional[ShardRunner]) -> None:
    """Swap the process-wide shard runner (``None`` restores serial).

    ``repro.experiments.parallel`` installs its spawn-pool runner here
    at import time; core itself never imports upward.
    """
    global _shard_runner
    _shard_runner = runner if runner is not None else run_shards_serial


def plan_shards(
    units: Sequence[AllocationUnit], shards: int
) -> Optional[List[List[AllocationUnit]]]:
    """Deterministic GIF-whole partition of a subscription pool.

    Units with equal profile signatures (one GIF) always land in the
    same shard, so GIF grouping inside each shard sees exactly the
    groups it would see monolithically.  Groups are taken in
    first-occurrence order and placed greedily on the lightest shard by
    summed delivery bandwidth (ties: lowest shard index) — a pure
    function of the unit list.

    Returns ``None`` when the pool is not shardable: fewer than two
    usable shards, or any unit that is not a singleton subscription
    (Phase-3 pseudo-unit pools keep the monolithic path).
    """
    if shards <= 1 or len(units) < 2 * shards:
        return None
    for unit in units:
        if unit.kind != "subscription" or len(unit.members) != 1:
            return None
    groups: Dict[Tuple, List[AllocationUnit]] = {}
    order: List[Tuple] = []
    for unit in units:
        signature = unit.profile.signature()
        bucket = groups.get(signature)
        if bucket is None:
            groups[signature] = [unit]
            order.append(signature)
        else:
            bucket.append(unit)
    if len(order) < shards:
        return None
    loads = [0.0] * shards
    buckets: List[List[AllocationUnit]] = [[] for _ in range(shards)]
    for signature in order:
        members = groups[signature]
        weight = sum(unit.delivery_bandwidth for unit in members)
        lightest = min(range(shards), key=lambda s: (loads[s], s))
        buckets[lightest].extend(members)
        loads[lightest] += weight
    if any(not bucket for bucket in buckets):
        return None
    return buckets


def merge_shard_outcomes(
    outcomes: Sequence[ShardOutcome],
    shard_units: Sequence[Sequence[AllocationUnit]],
    directory: PublisherDirectory,
) -> Optional[List[AllocationUnit]]:
    """Fold shard results into pseudo-subscriptions, submission order.

    Consumes ``outcomes`` strictly as the submission-order list
    (never a dict/set view): outcome *i* belongs to shard *i*.  Each
    shard-local broker bin becomes one pseudo-subscription via
    :meth:`AllocationUnit.merged` — the same profile-union Phase 3
    applies to whole brokers.  Returns ``None`` (monolithic fallback)
    if any shard failed.
    """
    pseudo: List[AllocationUnit] = []
    for expected, (outcome, members) in enumerate(zip(outcomes, shard_units)):
        if outcome.index != expected:
            raise ValueError(
                "shard runner returned outcomes out of submission order: "
                f"expected shard {expected}, got {outcome.index}"
            )
        if not outcome.success:
            return None
        for group in outcome.groups:
            pseudo.append(
                AllocationUnit.merged(
                    [members[offset] for offset in group], directory
                )
            )
    return pseudo


class ShardedCramAllocator:
    """CRAM with intra-run sharded Phase 2.

    Partitions the pool with :func:`plan_shards`, allocates each shard
    through the installed :data:`ShardRunner` (serial by default, the
    spawn pool when ``repro.experiments.parallel`` is imported), merges
    per-bin results as pseudo-subscriptions, and runs one final CRAM
    pass over the pseudo-units — the paper's Phase-3 recursion applied
    inside Phase 2.  Falls back to a single monolithic run whenever the
    pool is unshardable or any shard (or the final pass) fails, so the
    sharded allocator never succeeds less often than plain CRAM.

    The shard count is fixed (default 4) and independent of how many
    workers execute the tasks — results are invariant to ``--jobs``.
    """

    def __init__(
        self,
        metric: Union[str, ClosenessMetric] = "ios",
        shards: int = 4,
        enable_gif_grouping: bool = True,
        enable_pruning: bool = True,
        enable_one_to_many: bool = True,
        failure_budget: Optional[int] = None,
        max_iterations: Optional[int] = None,
        use_kernel: Optional[bool] = None,
        use_columnar: Optional[bool] = None,
        columnar_backend: Optional[str] = None,
        runner: Optional[ShardRunner] = None,
    ):
        if isinstance(metric, ClosenessMetric):
            metric = metric.name
        self.metric = metric
        self.shards = max(1, int(shards))
        self.enable_gif_grouping = enable_gif_grouping
        self.enable_pruning = enable_pruning
        self.enable_one_to_many = enable_one_to_many
        self.failure_budget = failure_budget
        self.max_iterations = max_iterations
        self.use_kernel = use_kernel
        self.use_columnar = use_columnar
        self.columnar_backend = columnar_backend
        self.runner = runner
        self.name = f"cram-{metric}-sharded"
        self.last_stats = CramStats()

    def _make_allocator(self) -> CramAllocator:
        return CramAllocator(
            metric=self.metric,
            enable_gif_grouping=self.enable_gif_grouping,
            enable_pruning=self.enable_pruning,
            enable_one_to_many=self.enable_one_to_many,
            failure_budget=self.failure_budget,
            max_iterations=self.max_iterations,
            use_kernel=self.use_kernel,
            use_columnar=self.use_columnar,
            columnar_backend=self.columnar_backend,
        )

    def _monolithic(
        self,
        units: List[AllocationUnit],
        pool: List[BrokerSpec],
        directory: PublisherDirectory,
        after_sharding: bool,
    ) -> AllocationResult:
        allocator = self._make_allocator()
        result = allocator.allocate(units, pool, directory)
        self.last_stats = replace(
            allocator.last_stats,
            shard_count=0,
            shard_fallbacks=1 if after_sharding else 0,
        )
        return result

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        """Shard, allocate, merge, recurse — or fall back monolithic."""
        units = list(units)
        pool = list(pool)
        buckets = plan_shards(units, self.shards)
        if buckets is None:
            return self._monolithic(units, pool, directory, after_sharding=False)
        tasks = [
            ShardTask(
                index=index,
                records=tuple(unit.members[0] for unit in bucket),
                pool=tuple(pool),
                directory=dict(directory),
                metric=self.metric,
                enable_gif_grouping=self.enable_gif_grouping,
                enable_pruning=self.enable_pruning,
                enable_one_to_many=self.enable_one_to_many,
                failure_budget=self.failure_budget,
                max_iterations=self.max_iterations,
                use_kernel=self.use_kernel,
                use_columnar=self.use_columnar,
                columnar_backend=self.columnar_backend,
            )
            for index, bucket in enumerate(buckets)
        ]
        runner = self.runner if self.runner is not None else _shard_runner
        with obs.span("cram.sharding", shards=len(buckets), units=len(units)):
            outcomes = list(runner(tasks))
        pseudo = merge_shard_outcomes(outcomes, buckets, directory)
        if pseudo is None:
            return self._monolithic(units, pool, directory, after_sharding=True)
        final = self._make_allocator()
        result = final.allocate(pseudo, pool, directory)
        if not result.success:
            return self._monolithic(units, pool, directory, after_sharding=True)
        self.last_stats = self._aggregate_stats(
            units, buckets, outcomes, final.last_stats
        )
        return result

    @staticmethod
    def _aggregate_stats(
        units: Sequence[AllocationUnit],
        buckets: Sequence[Sequence[AllocationUnit]],
        outcomes: Sequence[ShardOutcome],
        final_stats: CramStats,
    ) -> CramStats:
        stats = CramStats(
            subscriptions=sum(unit.subscription_count for unit in units),
            initial_units=len(units),
            shard_count=len(buckets),
        )
        for part in [outcome.stats for outcome in outcomes] + [final_stats]:
            stats.initial_gifs += part.initial_gifs
            stats.iterations += part.iterations
            stats.merges += part.merges
            stats.failures += part.failures
            stats.closeness_evaluations += part.closeness_evaluations
            stats.initial_search_evaluations += part.initial_search_evaluations
            stats.binpack_runs += part.binpack_runs
            stats.kernel_used = stats.kernel_used or part.kernel_used
            stats.kernel_fused_evaluations += part.kernel_fused_evaluations
            stats.kernel_memo_hits += part.kernel_memo_hits
            stats.kernel_fallback_evaluations += part.kernel_fallback_evaluations
        stats.final_units = final_stats.final_units
        return stats
